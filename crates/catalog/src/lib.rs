//! Catalog: table/index registry plus per-column statistics.
//!
//! The statistics feed the optimizer's cardinality estimation, which in turn
//! is an input feature of several OU-models (paper §3 "Assumptions and
//! Limitations" — MB2's features include optimizer cardinality estimates,
//! and §8.5 studies robustness to noise in them).

pub mod stats;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use mb2_common::{DbError, DbResult, Schema};
use mb2_index::Index;
use mb2_storage::{SlotId, Table, TableId, Ts};

pub use stats::{ColumnStats, TableStats};

/// A table plus its secondary indexes and statistics.
pub struct TableEntry {
    pub table: Arc<Table>,
    indexes: RwLock<Vec<Arc<Index<SlotId>>>>,
    stats: RwLock<TableStats>,
}

impl TableEntry {
    pub fn indexes(&self) -> Vec<Arc<Index<SlotId>>> {
        self.indexes.read().clone()
    }

    /// Find an index whose key prefix matches the given column positions.
    pub fn index_on(&self, columns: &[usize]) -> Option<Arc<Index<SlotId>>> {
        self.indexes
            .read()
            .iter()
            .find(|idx| {
                idx.key_columns.len() <= columns.len()
                    && idx.key_columns.iter().zip(columns).all(|(a, b)| a == b)
                    || idx.key_columns == columns
            })
            .cloned()
    }

    pub fn index_named(&self, name: &str) -> Option<Arc<Index<SlotId>>> {
        self.indexes
            .read()
            .iter()
            .find(|idx| idx.name == name)
            .cloned()
    }

    pub fn stats(&self) -> TableStats {
        self.stats.read().clone()
    }

    pub fn set_stats(&self, stats: TableStats) {
        *self.stats.write() = stats;
    }

    /// Recompute statistics with a full scan at `read_ts` (ANALYZE).
    pub fn analyze(&self, read_ts: Ts) {
        let stats = TableStats::compute(&self.table, read_ts);
        *self.stats.write() = stats;
    }

    pub fn add_index(&self, index: Arc<Index<SlotId>>) -> DbResult<()> {
        let mut indexes = self.indexes.write();
        if indexes.iter().any(|i| i.name == index.name) {
            return Err(DbError::Catalog(format!(
                "index '{}' already exists",
                index.name
            )));
        }
        indexes.push(index);
        Ok(())
    }

    pub fn drop_index(&self, name: &str) -> DbResult<Arc<Index<SlotId>>> {
        let mut indexes = self.indexes.write();
        let pos = indexes
            .iter()
            .position(|i| i.name == name)
            .ok_or_else(|| DbError::Catalog(format!("unknown index '{name}'")))?;
        Ok(indexes.remove(pos))
    }
}

/// The database catalog.
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<TableEntry>>>,
    by_id: RwLock<HashMap<TableId, Arc<TableEntry>>>,
    next_table_id: AtomicU32,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog {
            tables: RwLock::new(HashMap::new()),
            by_id: RwLock::new(HashMap::new()),
            next_table_id: AtomicU32::new(1),
        }
    }

    /// Create a single-shard table; fails if the name is taken.
    pub fn create_table(&self, name: &str, schema: Schema) -> DbResult<Arc<TableEntry>> {
        self.create_table_with_shards(name, schema, 1)
    }

    /// Create a table partitioned into `shard_count` hash shards (clamped
    /// to at least 1). Slot assignment and scan order do not depend on the
    /// shard count, so the choice only affects concurrency, never results.
    pub fn create_table_with_shards(
        &self,
        name: &str,
        schema: Schema,
        shard_count: usize,
    ) -> DbResult<Arc<TableEntry>> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(DbError::Catalog(format!("table '{name}' already exists")));
        }
        let id = TableId(self.next_table_id.fetch_add(1, Ordering::AcqRel));
        let n_cols = schema.len();
        let entry = Arc::new(TableEntry {
            table: Arc::new(Table::with_shards(id, key.clone(), schema, shard_count)),
            indexes: RwLock::new(Vec::new()),
            stats: RwLock::new(TableStats::empty(n_cols)),
        });
        tables.insert(key, entry.clone());
        self.by_id.write().insert(id, entry.clone());
        Ok(entry)
    }

    pub fn drop_table(&self, name: &str) -> DbResult<()> {
        let key = name.to_ascii_lowercase();
        let entry = self
            .tables
            .write()
            .remove(&key)
            .ok_or_else(|| DbError::Catalog(format!("unknown table '{name}'")))?;
        self.by_id.write().remove(&entry.table.id);
        Ok(())
    }

    pub fn get(&self, name: &str) -> DbResult<Arc<TableEntry>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| DbError::Catalog(format!("unknown table '{name}'")))
    }

    pub fn get_by_id(&self, id: TableId) -> Option<Arc<TableEntry>> {
        self.by_id.read().get(&id).cloned()
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::{Column, DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Varchar),
        ])
    }

    #[test]
    fn create_get_drop() {
        let cat = Catalog::new();
        cat.create_table("Users", schema()).unwrap();
        assert!(cat.get("users").is_ok());
        assert!(cat.get("USERS").is_ok());
        assert!(cat.create_table("users", schema()).is_err());
        cat.drop_table("users").unwrap();
        assert!(cat.get("users").is_err());
    }

    #[test]
    fn lookup_by_id() {
        let cat = Catalog::new();
        let entry = cat.create_table("t", schema()).unwrap();
        let id = entry.table.id;
        assert!(cat.get_by_id(id).is_some());
        cat.drop_table("t").unwrap();
        assert!(cat.get_by_id(id).is_none());
    }

    #[test]
    fn index_management() {
        let cat = Catalog::new();
        let entry = cat.create_table("t", schema()).unwrap();
        entry
            .add_index(Arc::new(Index::new("t_pk", vec![0])))
            .unwrap();
        assert!(entry
            .add_index(Arc::new(Index::new("t_pk", vec![0])))
            .is_err());
        assert!(entry.index_on(&[0]).is_some());
        assert!(entry.index_on(&[1]).is_none());
        assert!(entry.index_named("t_pk").is_some());
        entry.drop_index("t_pk").unwrap();
        assert!(entry.index_named("t_pk").is_none());
        assert!(entry.drop_index("t_pk").is_err());
    }

    #[test]
    fn prefix_index_match() {
        let cat = Catalog::new();
        let entry = cat.create_table("t", schema()).unwrap();
        entry
            .add_index(Arc::new(Index::new("t_idx", vec![0, 1])))
            .unwrap();
        // Exact match and prefix-compatible lookups resolve.
        assert!(entry.index_on(&[0, 1]).is_some());
    }

    #[test]
    fn analyze_populates_stats() {
        let cat = Catalog::new();
        let entry = cat.create_table("t", schema()).unwrap();
        for i in 0..100 {
            let slot = entry
                .table
                .insert(
                    vec![Value::Int(i % 10), Value::Varchar(format!("n{i}"))],
                    Ts::txn(1),
                )
                .unwrap();
            entry.table.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        }
        entry.analyze(Ts(5));
        let stats = entry.stats();
        assert_eq!(stats.row_count, 100);
        assert_eq!(stats.columns[0].distinct, 10);
        assert_eq!(stats.columns[1].distinct, 100);
    }

    #[test]
    fn sharded_create_clamps_and_records_count() {
        let cat = Catalog::new();
        let entry = cat.create_table_with_shards("t3", schema(), 3).unwrap();
        assert_eq!(entry.table.shard_count(), 3);
        let entry0 = cat.create_table_with_shards("t0", schema(), 0).unwrap();
        assert_eq!(entry0.table.shard_count(), 1);
        // The plain constructor stays single-shard.
        let flat = cat.create_table("flat", schema()).unwrap();
        assert_eq!(flat.table.shard_count(), 1);
    }

    #[test]
    fn table_names_sorted() {
        let cat = Catalog::new();
        cat.create_table("zeta", schema()).unwrap();
        cat.create_table("alpha", schema()).unwrap();
        assert_eq!(
            cat.table_names(),
            vec!["alpha".to_string(), "zeta".to_string()]
        );
    }
}
