//! GC-vs-parallel-scan stress: an aggressive background garbage collector
//! (1ms interval) pruning version chains underneath 8-way morsel-parallel
//! scans while writers churn, with snapshot invariants checked on every
//! read. Regression cover for lifecycle races between GC, the exec pool,
//! and MVCC readers.
//!
//! Runs at shard counts 1, 3, and 8: the sharded variants size the table
//! to span every shard (shard units are 512 slots), so the random balance
//! transfers routinely cross shards — covering the sharded commit lock
//! (stamp-then-publish under a striped footprint) and per-shard GC passes
//! under concurrent snapshots. The invariants are identical at every shard
//! count: sharding is a concurrency layout, never an observable.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mb2_common::Value;
use mb2_engine::{Database, DatabaseConfig};

const INITIAL_BALANCE: i64 = 100;

/// Deterministic xorshift — keeps the "randomized queries" reproducible.
fn next(rng: &mut u64) -> u64 {
    let mut x = *rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng = x;
    x
}

/// Seed override for CI stress runs: `MB2_TEST_SEED=n` perturbs every
/// thread's RNG stream.
fn seed_offset() -> u64 {
    std::env::var("MB2_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn build_db(shard_count: usize, accounts: i64) -> Arc<Database> {
    let mut cfg = DatabaseConfig {
        gc_interval: Some(Duration::from_millis(1)),
        ..DatabaseConfig::default()
    };
    cfg.knobs.parallelism = 8;
    cfg.knobs.shard_count = shard_count;
    let db = Arc::new(Database::new(cfg).expect("database"));
    db.execute("CREATE TABLE acct (id INT, bal INT)").unwrap();
    let mut i = 0i64;
    while i < accounts {
        let end = (i + 256).min(accounts);
        let rows: Vec<String> = (i..end)
            .map(|id| format!("({id}, {INITIAL_BALANCE})"))
            .collect();
        db.execute(&format!("INSERT INTO acct VALUES {}", rows.join(", ")))
            .unwrap();
        i = end;
    }
    db
}

fn stress(shard_count: usize, accounts: i64, run_for: Duration) {
    let db = build_db(shard_count, accounts);
    {
        let table = &db.catalog().get("acct").unwrap().table;
        assert_eq!(table.shard_count(), shard_count);
        if shard_count > 1 {
            // The table must actually span every shard, or the cross-shard
            // commit coverage is vacuous.
            for s in table.shard_stats() {
                assert!(s.live_tuples > 0, "shard {} empty: {s:?}", s.shard);
            }
        }
    }
    let stop = Arc::new(AtomicBool::new(false));

    // Writers: balance transfers between random accounts (cross-shard with
    // high probability on sharded tables). Each commit creates garbage
    // versions for the 1ms GC to prune; aborts exercise the undo path.
    // Total balance and row count are invariant.
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut rng = 0x9e3779b97f4a7c15u64.wrapping_mul(w + 1) ^ seed_offset();
                let mut commits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let a = (next(&mut rng) % accounts as u64) as i64;
                    let b = (next(&mut rng) % accounts as u64) as i64;
                    let amt = (next(&mut rng) % 7) as i64 + 1;
                    let mut session = db.session();
                    let result = session
                        .execute("BEGIN")
                        .and_then(|_| {
                            session.execute(&format!(
                                "UPDATE acct SET bal = bal - {amt} WHERE id = {a}"
                            ))
                        })
                        .and_then(|_| {
                            session.execute(&format!(
                                "UPDATE acct SET bal = bal + {amt} WHERE id = {b}"
                            ))
                        })
                        .and_then(|_| session.execute("COMMIT"));
                    match result {
                        Ok(_) => commits += 1,
                        Err(_) => {
                            // Write-write conflict: roll back and retry.
                            if session.in_transaction() {
                                let _ = session.execute("ROLLBACK");
                            }
                        }
                    }
                }
                commits
            })
        })
        .collect();

    // Readers: randomized parallel scans whose snapshot invariants must
    // hold on every single read, no matter what GC pruned mid-scan. On a
    // sharded table a torn cross-shard commit would surface here as a
    // drifted SUM.
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut rng = 0xdeadbeefcafef00du64.wrapping_mul(r + 1) ^ seed_offset();
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match next(&mut rng) % 3 {
                        0 => {
                            let res = db.execute("SELECT SUM(bal) FROM acct").unwrap();
                            assert_eq!(
                                res.rows,
                                vec![vec![Value::Int(accounts * INITIAL_BALANCE)]],
                                "snapshot total drifted"
                            );
                        }
                        1 => {
                            let res = db.execute("SELECT COUNT(*) FROM acct").unwrap();
                            assert_eq!(res.rows, vec![vec![Value::Int(accounts)]]);
                        }
                        _ => {
                            let id = (next(&mut rng) % accounts as u64) as i64;
                            let res = db
                                .execute(&format!(
                                    "SELECT id, bal FROM acct WHERE id >= {id} ORDER BY id"
                                ))
                                .unwrap();
                            assert_eq!(res.rows.len(), (accounts - id) as usize);
                        }
                    }
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    // Streaming-vs-materialized identity inside one snapshot, checked
    // while the churn is live: both paths of the same session transaction
    // must agree row-for-row.
    let identity = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut checks = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let mut session = db.session();
                session.execute("BEGIN").unwrap();
                let materialized = session
                    .execute("SELECT id, bal FROM acct ORDER BY id")
                    .unwrap()
                    .rows;
                let mut streamed: Vec<Vec<Value>> = Vec::new();
                session
                    .execute_streaming("SELECT id, bal FROM acct ORDER BY id", None, &mut |b| {
                        streamed.extend(b.rows.iter().map(|r| r.as_ref().clone()));
                        Ok(())
                    })
                    .unwrap();
                session.execute("COMMIT").unwrap();
                assert_eq!(
                    materialized, streamed,
                    "streaming diverged from materialized"
                );
                checks += 1;
            }
            checks
        })
    };

    let deadline = Instant::now() + run_for;
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::Relaxed);

    let commits: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
    let reads: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    let checks = identity.join().unwrap();
    assert!(commits > 0, "writers never committed");
    assert!(reads > 0, "readers never read");
    assert!(checks > 0, "identity checker never ran");

    // Quiesced, the invariant must hold exactly, and GC must have pruned
    // without corrupting the live versions.
    let total = db.execute("SELECT SUM(bal) FROM acct").unwrap();
    assert_eq!(
        total.rows,
        vec![vec![Value::Int(accounts * INITIAL_BALANCE)]]
    );
    if shard_count > 1 {
        // Per-shard GC ran against every shard of the churned table.
        let table = &db.catalog().get("acct").unwrap().table;
        assert!(
            table.shard_stats().iter().any(|s| s.last_gc_watermark > 0),
            "background GC never swept the shards"
        );
    }
    db.shutdown();
}

#[test]
fn aggressive_gc_under_parallel_scans_preserves_snapshots() {
    stress(1, 64, Duration::from_millis(600));
}

/// 3 shards, 3.5 shard units of rows: every shard populated, transfers
/// cross shards constantly.
#[test]
fn aggressive_gc_under_parallel_scans_preserves_snapshots_3_shards() {
    stress(3, 1792, Duration::from_millis(500));
}

/// 8 shards, 9 shard units of rows (> 8 × 512), so all eight shards hold
/// data and the commit-lock footprint regularly spans several stripes.
#[test]
fn aggressive_gc_under_parallel_scans_preserves_snapshots_8_shards() {
    stress(8, 4608, Duration::from_millis(500));
}
