//! Recursive-descent parser for the supported SQL subset.

use mb2_common::{DataType, DbError, DbResult, Value};

use crate::ast::{ColumnDef, Expr, OrderItem, Select, SelectItem, Statement, TableRef};
use crate::expr::{AggFunc, BinOp, UnOp};
use crate::lexer::{tokenize, Symbol, Token};

/// Parse one SQL statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> DbResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(Symbol::Semicolon);
    if !p.at_end() {
        return Err(DbError::Parse(format!(
            "trailing tokens after statement: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> DbResult<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| DbError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    /// Consume a keyword (case-insensitive); error if absent.
    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        match self.next()? {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(DbError::Parse(format!("expected {kw}, found {other:?}"))),
        }
    }

    /// Consume a keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_symbol(&mut self, sym: Symbol) -> DbResult<()> {
        match self.next()? {
            Token::Symbol(s) if s == sym => Ok(()),
            other => Err(DbError::Parse(format!("expected {sym:?}, found {other:?}"))),
        }
    }

    fn eat_symbol(&mut self, sym: Symbol) -> bool {
        if let Some(Token::Symbol(s)) = self.peek() {
            if *s == sym {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> DbResult<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(DbError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn integer(&mut self) -> DbResult<i64> {
        match self.next()? {
            Token::Int(v) => Ok(v),
            other => Err(DbError::Parse(format!("expected integer, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> DbResult<Statement> {
        let head = match self.peek() {
            Some(Token::Ident(s)) => s.to_ascii_uppercase(),
            other => {
                return Err(DbError::Parse(format!(
                    "expected statement, found {other:?}"
                )))
            }
        };
        match head.as_str() {
            "CREATE" => self.create(),
            "DROP" => self.drop(),
            "INSERT" => self.insert(),
            "SELECT" => Ok(Statement::Select(self.select()?)),
            "UPDATE" => self.update(),
            "DELETE" => self.delete(),
            "ANALYZE" => {
                self.pos += 1;
                Ok(Statement::Analyze {
                    table: self.ident()?,
                })
            }
            "BEGIN" | "START" => {
                self.pos += 1;
                self.eat_kw("TRANSACTION");
                Ok(Statement::Begin)
            }
            "COMMIT" => {
                self.pos += 1;
                Ok(Statement::Commit)
            }
            "ROLLBACK" | "ABORT" => {
                self.pos += 1;
                Ok(Statement::Rollback)
            }
            other => Err(DbError::Parse(format!("unsupported statement '{other}'"))),
        }
    }

    fn create(&mut self) -> DbResult<Statement> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            let name = self.ident()?;
            self.expect_symbol(Symbol::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col_name = self.ident()?;
                let ty_name = self.ident()?;
                let ty = DataType::parse_sql(&ty_name)?;
                let mut varchar_len = None;
                if self.eat_symbol(Symbol::LParen) {
                    varchar_len = Some(self.integer()? as usize);
                    self.expect_symbol(Symbol::RParen)?;
                }
                // Ignore column constraints we don't enforce.
                while self.eat_kw("PRIMARY") || self.eat_kw("NOT") || self.eat_kw("UNIQUE") {
                    self.eat_kw("KEY");
                    self.eat_kw("NULL");
                }
                columns.push(ColumnDef {
                    name: col_name,
                    ty,
                    varchar_len,
                });
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            Ok(Statement::CreateTable { name, columns })
        } else if self.eat_kw("INDEX") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            self.expect_symbol(Symbol::LParen)?;
            let mut columns = vec![self.ident()?];
            while self.eat_symbol(Symbol::Comma) {
                columns.push(self.ident()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            let mut threads = None;
            if self.eat_kw("WITH") {
                self.expect_symbol(Symbol::LParen)?;
                self.expect_kw("THREADS")?;
                self.expect_symbol(Symbol::Eq)?;
                threads = Some(self.integer()? as usize);
                self.expect_symbol(Symbol::RParen)?;
            }
            Ok(Statement::CreateIndex {
                name,
                table,
                columns,
                threads,
            })
        } else {
            Err(DbError::Parse(
                "expected TABLE or INDEX after CREATE".into(),
            ))
        }
    }

    fn drop(&mut self) -> DbResult<Statement> {
        self.expect_kw("DROP")?;
        if self.eat_kw("TABLE") {
            Ok(Statement::DropTable {
                name: self.ident()?,
            })
        } else if self.eat_kw("INDEX") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            Ok(Statement::DropIndex { name, table })
        } else {
            Err(DbError::Parse("expected TABLE or INDEX after DROP".into()))
        }
    }

    fn insert(&mut self) -> DbResult<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_symbol(Symbol::LParen) {
            columns.push(self.ident()?);
            while self.eat_symbol(Symbol::Comma) {
                columns.push(self.ident()?);
            }
            self.expect_symbol(Symbol::RParen)?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Symbol::LParen)?;
            let mut row = vec![self.expr()?];
            while self.eat_symbol(Symbol::Comma) {
                row.push(self.expr()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            rows.push(row);
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn select(&mut self) -> DbResult<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        if self.eat_symbol(Symbol::Star) {
            // SELECT * — empty item list.
        } else {
            loop {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem { expr, alias });
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        self.expect_kw("FROM")?;
        let mut from = vec![self.table_ref()?];
        // `JOIN ... ON <cond>` folds each condition into the WHERE
        // conjunction; the planner re-extracts equi-join keys from it.
        let mut on_conds: Vec<Expr> = Vec::new();
        loop {
            if self.eat_symbol(Symbol::Comma) || self.eat_kw("INNER") || self.peek_kw("JOIN") {
                self.eat_kw("JOIN");
                from.push(self.table_ref()?);
                if self.eat_kw("ON") {
                    on_conds.push(self.expr()?);
                }
            } else {
                break;
            }
        }
        let mut predicate = on_conds.into_iter().reduce(|a, b| Expr::Binary {
            op: BinOp::And,
            left: Box::new(a),
            right: Box::new(b),
        });
        if self.eat_kw("WHERE") {
            let w = self.expr()?;
            predicate = Some(match predicate {
                Some(p) => Expr::Binary {
                    op: BinOp::And,
                    left: Box::new(p),
                    right: Box::new(w),
                },
                None => w,
            });
        }
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.eat_symbol(Symbol::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.eat_kw("LIMIT") {
            limit = Some(self.integer()? as usize);
        }
        Ok(Select {
            items,
            distinct,
            from,
            predicate,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> DbResult<TableRef> {
        let name = self.ident()?;
        let alias = match self.peek() {
            Some(Token::Ident(s)) if !is_clause_keyword(s) => {
                let alias = s.clone();
                self.pos += 1;
                Some(alias)
            }
            _ => None,
        };
        Ok(TableRef { name, alias })
    }

    fn update(&mut self) -> DbResult<Statement> {
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_symbol(Symbol::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            predicate,
        })
    }

    fn delete(&mut self) -> DbResult<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, predicate })
    }

    // Expression precedence climbing: OR < AND < NOT < comparison < add < mul.
    fn expr(&mut self) -> DbResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> DbResult<Expr> {
        if self.eat_kw("NOT") {
            let operand = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(operand),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> DbResult<Expr> {
        let left = self.additive()?;
        // BETWEEN x AND y desugars to two comparisons.
        if self.eat_kw("BETWEEN") {
            let lo = self.additive()?;
            self.expect_kw("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::Binary {
                op: BinOp::And,
                left: Box::new(Expr::Binary {
                    op: BinOp::GtEq,
                    left: Box::new(left.clone()),
                    right: Box::new(lo),
                }),
                right: Box::new(Expr::Binary {
                    op: BinOp::LtEq,
                    left: Box::new(left),
                    right: Box::new(hi),
                }),
            });
        }
        let op = match self.peek() {
            Some(Token::Symbol(Symbol::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Symbol::NotEq)) => Some(BinOp::NotEq),
            Some(Token::Symbol(Symbol::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Symbol::LtEq)) => Some(BinOp::LtEq),
            Some(Token::Symbol(Symbol::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Symbol::GtEq)) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> DbResult<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Symbol::Plus)) => BinOp::Add,
                Some(Token::Symbol(Symbol::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> DbResult<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Symbol::Star)) => BinOp::Mul,
                Some(Token::Symbol(Symbol::Slash)) => BinOp::Div,
                Some(Token::Symbol(Symbol::Percent)) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> DbResult<Expr> {
        if self.eat_symbol(Symbol::Minus) {
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(operand),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> DbResult<Expr> {
        match self.next()? {
            Token::Int(v) => Ok(Expr::Literal(Value::Int(v))),
            Token::Float(v) => Ok(Expr::Literal(Value::Float(v))),
            Token::Str(s) => Ok(Expr::Literal(Value::Varchar(s))),
            Token::Symbol(Symbol::LParen) => {
                let e = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                let upper = name.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => return Ok(Expr::Literal(Value::Null)),
                    "TRUE" => return Ok(Expr::Literal(Value::Bool(true))),
                    "FALSE" => return Ok(Expr::Literal(Value::Bool(false))),
                    _ => {}
                }
                // Aggregate call?
                let agg = match upper.as_str() {
                    "COUNT" => Some(AggFunc::Count),
                    "SUM" => Some(AggFunc::Sum),
                    "AVG" => Some(AggFunc::Avg),
                    "MIN" => Some(AggFunc::Min),
                    "MAX" => Some(AggFunc::Max),
                    _ => None,
                };
                if let (Some(func), Some(Token::Symbol(Symbol::LParen))) = (agg, self.peek()) {
                    self.pos += 1;
                    if self.eat_symbol(Symbol::Star) {
                        self.expect_symbol(Symbol::RParen)?;
                        return Ok(Expr::Agg { func, arg: None });
                    }
                    let arg = self.expr()?;
                    self.expect_symbol(Symbol::RParen)?;
                    return Ok(Expr::Agg {
                        func,
                        arg: Some(Box::new(arg)),
                    });
                }
                // Qualified column?
                if self.eat_symbol(Symbol::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(DbError::Parse(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }
}

fn is_clause_keyword(s: &str) -> bool {
    const KEYWORDS: [&str; 15] = [
        "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN", "ON", "SET", "VALUES", "AND", "OR",
        "AS", "INNER", "LEFT", "FROM",
    ];
    KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_with_types() {
        let s = parse("CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(32), score FLOAT)")
            .unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "users");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[1].varchar_len, Some(32));
                assert_eq!(columns[2].ty, DataType::Float);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn create_index_with_threads() {
        let s =
            parse("CREATE INDEX idx_c ON customer (c_w_id, c_d_id) WITH (THREADS = 8)").unwrap();
        match s {
            Statement::CreateIndex {
                name,
                table,
                columns,
                threads,
            } => {
                assert_eq!(name, "idx_c");
                assert_eq!(table, "customer");
                assert_eq!(columns, vec!["c_w_id", "c_d_id"]);
                assert_eq!(threads, Some(8));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        let s = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert { columns, rows, .. } => {
                assert_eq!(columns, vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_star() {
        let s = parse("SELECT * FROM t WHERE a = 1 LIMIT 5").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(sel.items.is_empty());
                assert!(sel.predicate.is_some());
                assert_eq!(sel.limit, Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_with_everything() {
        let s = parse(
            "SELECT t.a, SUM(u.b + 1) AS total FROM t, u \
             WHERE t.id = u.id AND t.a > 5 \
             GROUP BY t.a ORDER BY total DESC LIMIT 10",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.items.len(), 2);
                assert_eq!(sel.items[1].alias.as_deref(), Some("total"));
                assert_eq!(sel.from.len(), 2);
                assert_eq!(sel.group_by.len(), 1);
                assert!(sel.order_by[0].desc);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn join_on_folds_into_where() {
        let s = parse("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z > 0").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.from.len(), 2);
                // Predicate is (a.x = b.y) AND (a.z > 0).
                match sel.predicate.unwrap() {
                    Expr::Binary { op: BinOp::And, .. } => {}
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn table_aliases() {
        let s = parse("SELECT c.a FROM customer c WHERE c.a = 1").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.from[0].alias.as_deref(), Some("c"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_and_delete() {
        let s = parse("UPDATE t SET a = a + 1, b = 0 WHERE id = 5").unwrap();
        assert!(matches!(s, Statement::Update { ref assignments, .. } if assignments.len() == 2));
        let s = parse("DELETE FROM t WHERE a < 0").unwrap();
        assert!(matches!(s, Statement::Delete { .. }));
    }

    #[test]
    fn between_desugars() {
        let s = parse("SELECT * FROM t WHERE a BETWEEN 1 AND 10").unwrap();
        match s {
            Statement::Select(sel) => match sel.predicate.unwrap() {
                Expr::Binary { op: BinOp::And, .. } => {}
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_star_and_precedence() {
        let s = parse("SELECT COUNT(*), 1 + 2 * 3 FROM t").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(
                    sel.items[0].expr,
                    Expr::Agg {
                        func: AggFunc::Count,
                        arg: None
                    }
                ));
                // 1 + (2 * 3)
                match &sel.items[1].expr {
                    Expr::Binary {
                        op: BinOp::Add,
                        right,
                        ..
                    } => {
                        assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn txn_control() {
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT;").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(
            parse("SELECT * FROM t garbage garbage").is_err() || {
                // "garbage garbage" parses as alias + trailing token -> error.
                false
            }
        );
    }

    #[test]
    fn errors_are_parse_errors() {
        assert!(matches!(
            parse("FLY ME TO THE MOON"),
            Err(DbError::Parse(_))
        ));
        assert!(matches!(parse("SELECT FROM"), Err(DbError::Parse(_))));
    }
}
// (appended tests for DISTINCT / HAVING support)
#[cfg(test)]
mod distinct_having_tests {
    use super::*;

    #[test]
    fn select_distinct_flag() {
        let s = parse("SELECT DISTINCT a, b FROM t").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(sel.distinct);
                assert_eq!(sel.items.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        let s = parse("SELECT a FROM t").unwrap();
        match s {
            Statement::Select(sel) => assert!(!sel.distinct),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn having_clause_parses() {
        let s =
            parse("SELECT g, COUNT(*) FROM t GROUP BY g HAVING COUNT(*) > 3 ORDER BY g").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(sel.having.is_some());
                assert_eq!(sel.group_by.len(), 1);
                assert_eq!(sel.order_by.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn having_requires_group_context_at_plan_time_not_parse_time() {
        // The parser accepts HAVING without GROUP BY (scalar aggregates);
        // semantic checks happen in the planner.
        assert!(parse("SELECT COUNT(*) FROM t HAVING COUNT(*) > 0").is_ok());
    }
}
