//! The autopilot: MB2's decomposed behavior models closed into a live
//! self-driving control loop (paper §2.1, §8.7).
//!
//! The paper's end-to-end demonstration drives the oracle planner offline
//! against canned forecasts; this crate runs the same pricing engine *on
//! the live server*. A background [`Pilot`] thread:
//!
//! 1. **Forecasts** — ingests per-statement arrival observations through
//!    an [`mb2_core::forecast::SlidingWindowForecaster`] installed as the
//!    engine's statement tap, and summarizes them into a
//!    [`mb2_core::WorkloadForecast`] each tick.
//! 2. **Enumerates candidates** — secondary-index builds for seq-scanned
//!    equality columns, drops of pilot-built indexes the forecast no
//!    longer uses, and knob flips (execution mode, batch size,
//!    parallelism, WAL flush interval, GC cadence); see [`candidates`].
//! 3. **Prices** each candidate with [`mb2_core::planner::OraclePlanner`]
//!    — index builds through the interference model (cost + impact),
//!    steady-state benefit through the OU translator.
//! 4. **Applies** the best positive-gain action under live traffic,
//!    guarded by a cooldown and a one-action-in-flight rule.
//! 5. **Verifies** predicted against observed statement latency and
//!    *reverts* the action when the observed regression exceeds a
//!    configurable threshold.
//!
//! Every step publishes `mb2_pilot_*` metrics so operators can audit what
//! the autopilot considered, chose, and observed.

pub mod candidates;
pub mod config;
pub mod metrics;
pub mod pilot;

pub use config::PilotConfig;
pub use metrics::PilotMetrics;
pub use pilot::{Pilot, PilotStatus, TickOutcome};
