//! Workload forecasts (paper §3, assumption 1).
//!
//! MB2 consumes forecasted arrival rates per query template per fixed
//! interval from an external forecasting system \[37\]. The paper's
//! evaluation assumes a perfect forecast to isolate modeling error (§8.7);
//! [`WorkloadForecast`] carries exactly that information.
//!
//! For the live autopilot there is no external forecaster, so
//! [`SlidingWindowForecaster`] produces the same summaries from observed
//! traffic: it taps every DML/SELECT statement the engine executes
//! (via [`mb2_engine::StatementTap`]), folds statements into templates by
//! replacing literals with `?`, and keeps per-template arrival counts in
//! a sliding ring of time buckets. [`SlidingWindowForecaster::snapshot`]
//! turns the window into a one-interval [`WorkloadForecast`] whose rates
//! are the observed arrival rates — the "perfect forecast of the recent
//! past" the control loop prices actions against.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use mb2_engine::{Database, StatementTap};
use mb2_sql::PlanNode;

/// A recurring query template with its cached plan (paper §3 assumes
/// repeated queries execute with cached plans).
#[derive(Debug, Clone)]
pub struct QueryTemplate {
    pub name: String,
    pub sql: String,
    pub plan: PlanNode,
}

/// Forecasted arrival rates for one interval.
#[derive(Debug, Clone)]
pub struct ForecastInterval {
    /// Interval length in seconds.
    pub duration_s: f64,
    /// `rates[i]` = arrivals per second for template `i`.
    pub rates: Vec<f64>,
}

impl ForecastInterval {
    /// Expected number of queries of template `i` in this interval.
    pub fn expected_count(&self, template: usize) -> f64 {
        self.rates.get(template).copied().unwrap_or(0.0) * self.duration_s
    }

    /// Total expected queries in the interval.
    pub fn total_queries(&self) -> f64 {
        self.rates.iter().sum::<f64>() * self.duration_s
    }
}

/// A full workload forecast.
#[derive(Debug, Clone)]
pub struct WorkloadForecast {
    pub templates: Vec<QueryTemplate>,
    pub intervals: Vec<ForecastInterval>,
    /// Worker threads executing the forecasted workload.
    pub threads: usize,
}

impl WorkloadForecast {
    pub fn new(templates: Vec<QueryTemplate>, threads: usize) -> WorkloadForecast {
        WorkloadForecast {
            templates,
            intervals: Vec::new(),
            threads: threads.max(1),
        }
    }

    pub fn push_interval(&mut self, duration_s: f64, rates: Vec<f64>) {
        assert_eq!(rates.len(), self.templates.len(), "one rate per template");
        self.intervals.push(ForecastInterval { duration_s, rates });
    }
}

/// Fold a concrete SQL statement into its template form by replacing
/// every literal with `?`: quoted strings become `?`, and standalone
/// numeric literals become `?` (digits inside identifiers like `data1`
/// or `tatp_subscriber` are kept). Whitespace runs collapse to one
/// space. Statements that differ only in literals therefore share a
/// template key.
pub fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    let mut prev_ident = false; // last emitted char was part of an identifier
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                // String literal: consume to the closing quote ('' escapes).
                loop {
                    match chars.next() {
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
                out.push('?');
                prev_ident = false;
            }
            '0'..='9' if !prev_ident => {
                // Numeric literal (possibly with a fraction part).
                while matches!(chars.peek(), Some('0'..='9') | Some('.')) {
                    chars.next();
                }
                out.push('?');
                prev_ident = false;
            }
            c if c.is_whitespace() => {
                if !out.ends_with(' ') && !out.is_empty() {
                    out.push(' ');
                }
                prev_ident = false;
            }
            c => {
                out.push(c.to_ascii_lowercase());
                prev_ident = c.is_ascii_alphanumeric() || c == '_';
            }
        }
    }
    out.trim_end().to_string()
}

/// Per-template arrival counts over the sliding window's ring buckets.
struct TemplateWindow {
    /// The template key ([`normalize_sql`] output), used as the forecast
    /// template name.
    key: String,
    /// Most recent concrete statement — planned at snapshot time so the
    /// forecast carries a representative cached plan.
    last_sql: String,
    /// Ring of per-bucket arrival counts; index `b % counts.len()`.
    counts: Vec<u64>,
}

struct ForecasterState {
    /// Absolute index of the bucket currently receiving arrivals.
    cur_bucket: u64,
    by_key: HashMap<String, usize>,
    templates: Vec<TemplateWindow>,
}

/// Sliding-window workload summarizer feeding the autopilot.
///
/// Install on an engine with
/// [`Database::set_statement_tap`](mb2_engine::Database::set_statement_tap)
/// (it implements [`StatementTap`]); every observed DML/SELECT statement
/// is folded into a template and counted in the current time bucket.
/// [`snapshot`](Self::snapshot) summarizes the window into a
/// [`WorkloadForecast`].
pub struct SlidingWindowForecaster {
    window: Duration,
    bucket_len: Duration,
    buckets: usize,
    epoch: Instant,
    state: Mutex<ForecasterState>,
}

impl SlidingWindowForecaster {
    /// A forecaster whose window is `window` long, divided into `buckets`
    /// ring buckets (older arrivals age out one bucket at a time).
    pub fn new(window: Duration, buckets: usize) -> SlidingWindowForecaster {
        let buckets = buckets.max(1);
        let window = window.max(Duration::from_millis(buckets as u64));
        SlidingWindowForecaster {
            window,
            bucket_len: window / buckets as u32,
            buckets,
            epoch: Instant::now(),
            state: Mutex::new(ForecasterState {
                cur_bucket: 0,
                by_key: HashMap::new(),
                templates: Vec::new(),
            }),
        }
    }

    /// The configured window length.
    pub fn window(&self) -> Duration {
        self.window
    }

    fn bucket_now(&self) -> u64 {
        (self.epoch.elapsed().as_nanos() / self.bucket_len.as_nanos().max(1)) as u64
    }

    /// Zero out every bucket the clock has skipped past since the last
    /// observation, so stale counts age out of the window.
    fn rotate(&self, state: &mut ForecasterState, now_bucket: u64) {
        if now_bucket <= state.cur_bucket {
            return;
        }
        let n = (now_bucket - state.cur_bucket) as usize;
        for t in &mut state.templates {
            let len = t.counts.len();
            for i in 1..=n.min(len) {
                let idx = (state.cur_bucket as usize + i) % len;
                t.counts[idx] = 0;
            }
        }
        state.cur_bucket = now_bucket;
    }

    /// Number of distinct templates seen (including fully aged-out ones).
    pub fn template_count(&self) -> usize {
        self.state.lock().templates.len()
    }

    /// Total arrivals currently inside the window, across all templates.
    pub fn arrivals_in_window(&self) -> u64 {
        let mut state = self.state.lock();
        let now = self.bucket_now();
        self.rotate(&mut state, now);
        state
            .templates
            .iter()
            .map(|t| t.counts.iter().sum::<u64>())
            .sum()
    }

    /// Summarize the window into a one-interval [`WorkloadForecast`]:
    /// each template with at least one in-window arrival contributes its
    /// most recent concrete statement (planned against `db`'s live
    /// catalog) and its observed arrival rate. Templates whose statement
    /// no longer plans (e.g. the table was dropped) are skipped. Returns
    /// `None` when the window is empty.
    pub fn snapshot(&self, db: &Database, threads: usize) -> Option<WorkloadForecast> {
        let window_s = self.window.as_secs_f64();
        let mut entries: Vec<(String, String, f64)> = Vec::new();
        {
            let mut state = self.state.lock();
            let now = self.bucket_now();
            self.rotate(&mut state, now);
            for t in &state.templates {
                let total: u64 = t.counts.iter().sum();
                if total > 0 {
                    entries.push((t.key.clone(), t.last_sql.clone(), total as f64 / window_s));
                }
            }
        }
        let mut templates = Vec::new();
        let mut rates = Vec::new();
        for (key, sql, rate) in entries {
            if let Ok(plan) = db.prepare(&sql) {
                templates.push(QueryTemplate {
                    name: key,
                    sql,
                    plan,
                });
                rates.push(rate);
            }
        }
        if templates.is_empty() {
            return None;
        }
        let mut forecast = WorkloadForecast::new(templates, threads);
        forecast.push_interval(window_s, rates);
        Some(forecast)
    }
}

impl StatementTap for SlidingWindowForecaster {
    fn observe(&self, sql: &str) {
        let key = normalize_sql(sql);
        let mut state = self.state.lock();
        let now = self.bucket_now();
        self.rotate(&mut state, now);
        let buckets = self.buckets;
        let idx = match state.by_key.get(&key) {
            Some(&i) => i,
            None => {
                let i = state.templates.len();
                state.by_key.insert(key.clone(), i);
                state.templates.push(TemplateWindow {
                    key,
                    last_sql: String::new(),
                    counts: vec![0; buckets],
                });
                i
            }
        };
        let cur = state.cur_bucket;
        let t = &mut state.templates[idx];
        let slot = cur as usize % t.counts.len();
        t.counts[slot] += 1;
        if t.last_sql != sql {
            t.last_sql.clear();
            t.last_sql.push_str(sql);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_sql::plan::{Est, OutputSink};

    fn dummy_template(name: &str) -> QueryTemplate {
        let scan = PlanNode::SeqScan {
            table: "t".into(),
            filter: None,
            est: Est::leaf(10.0, 1, 8.0),
        };
        QueryTemplate {
            name: name.into(),
            sql: "SELECT * FROM t".into(),
            plan: PlanNode::Output {
                input: Box::new(scan),
                sink: OutputSink::Client,
                est: Est::leaf(10.0, 1, 8.0),
            },
        }
    }

    #[test]
    fn expected_counts() {
        let mut f = WorkloadForecast::new(vec![dummy_template("a"), dummy_template("b")], 4);
        f.push_interval(10.0, vec![5.0, 0.5]);
        assert_eq!(f.intervals[0].expected_count(0), 50.0);
        assert_eq!(f.intervals[0].expected_count(1), 5.0);
        assert_eq!(f.intervals[0].total_queries(), 55.0);
        assert_eq!(f.intervals[0].expected_count(7), 0.0);
    }

    #[test]
    #[should_panic(expected = "one rate per template")]
    fn rate_arity_checked() {
        let mut f = WorkloadForecast::new(vec![dummy_template("a")], 1);
        f.push_interval(10.0, vec![1.0, 2.0]);
    }

    #[test]
    fn normalize_folds_literals_keeps_identifiers() {
        assert_eq!(
            normalize_sql("SELECT * FROM tatp_subscriber WHERE s_id = 42"),
            "select * from tatp_subscriber where s_id = ?"
        );
        assert_eq!(
            normalize_sql("SELECT data1 FROM t WHERE v = 'ab''c'  AND x = 1.5"),
            "select data1 from t where v = ? and x = ?"
        );
        // Same template for different literals.
        assert_eq!(
            normalize_sql("INSERT INTO t VALUES (1, 'x')"),
            normalize_sql("INSERT INTO t VALUES (99, 'zzz')")
        );
        // Different shapes stay distinct.
        assert_ne!(
            normalize_sql("SELECT * FROM a WHERE x = 1"),
            normalize_sql("SELECT * FROM b WHERE x = 1")
        );
    }

    #[test]
    fn forecaster_counts_and_snapshots() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        let fc = SlidingWindowForecaster::new(Duration::from_secs(60), 6);
        for i in 0..30 {
            fc.observe(&format!("SELECT * FROM t WHERE a = {i}"));
        }
        for _ in 0..10 {
            fc.observe("SELECT * FROM t WHERE b = 5");
        }
        assert_eq!(fc.template_count(), 2);
        assert_eq!(fc.arrivals_in_window(), 40);
        let forecast = fc.snapshot(&db, 2).expect("non-empty window");
        assert_eq!(forecast.templates.len(), 2);
        assert_eq!(forecast.intervals.len(), 1);
        let total: f64 = forecast.intervals[0].total_queries();
        assert!((total - 40.0).abs() < 1e-6, "{total}");
        // The heavier template carries the higher rate.
        let i_a = forecast
            .templates
            .iter()
            .position(|t| t.name.contains("a = ?"))
            .unwrap();
        assert!(forecast.intervals[0].rates[i_a] > forecast.intervals[0].rates[1 - i_a]);
    }

    #[test]
    fn forecaster_skips_unplannable_templates() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let fc = SlidingWindowForecaster::new(Duration::from_secs(60), 4);
        fc.observe("SELECT * FROM t WHERE a = 1");
        fc.observe("SELECT * FROM gone WHERE a = 1");
        let forecast = fc.snapshot(&db, 1).expect("t still plans");
        assert_eq!(forecast.templates.len(), 1);
        assert!(forecast.templates[0].name.contains("from t"));
    }

    #[test]
    fn forecaster_installs_as_statement_tap() {
        use std::sync::Arc;
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let fc = Arc::new(SlidingWindowForecaster::new(Duration::from_secs(60), 4));
        db.set_statement_tap(Some(fc.clone()));
        db.execute("SELECT * FROM t WHERE a = 1").unwrap();
        db.execute("SELECT * FROM t WHERE a = 2").unwrap();
        db.execute("INSERT INTO t VALUES (7)").unwrap();
        // DDL is not observed.
        db.execute("ANALYZE t").unwrap();
        assert_eq!(fc.template_count(), 2);
        assert_eq!(fc.arrivals_in_window(), 3);
        db.set_statement_tap(None);
        db.execute("SELECT * FROM t WHERE a = 3").unwrap();
        assert_eq!(fc.arrivals_in_window(), 3);
    }

    #[test]
    fn old_arrivals_age_out() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let fc = SlidingWindowForecaster::new(Duration::from_millis(40), 4);
        fc.observe("SELECT * FROM t WHERE a = 1");
        assert_eq!(fc.arrivals_in_window(), 1);
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(fc.arrivals_in_window(), 0);
        assert!(fc.snapshot(&db, 1).is_none());
    }
}
