//! Pull-based batch execution pipeline.
//!
//! A [`Batch`] of up to `ExecContext::batch_size` rows flows through a
//! `BatchOperator` tree. Operators pull from their children with
//! `next_batch(ctx, max_rows)` — `None` means exhausted, `Some` with fewer
//! rows (even zero) does not. Rows travel as `Arc<Tuple>` straight out of
//! the MVCC version chains, so a tuple is only deep-cloned at the client
//! boundary (or when an operator genuinely builds a new row).
//!
//! OU accounting: each operator owns one `OpSpan` per OU it implements.
//! A span folds per-batch work into a single `OuTracker` via pause/resume
//! sections, so the recorded tuple/byte features are identical to the totals
//! the old materialize-everything executor produced per operator; only
//! elapsed time changes (it shrinks — that is the point). Spans are recorded
//! exactly once by `close`, which the pipeline driver calls after the root
//! returns `None` *or* after a LIMIT cuts execution short — so the
//! `(node id, OU)` set seen by a recorder is the same as before even when
//! upstream operators never ran.
//!
//! Pipeline breakers (join build, agg build, sort build) consume their input
//! fully on first pull; those edges are exactly the OU span boundaries the
//! paper's models key on, so batching never blurs them.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use mb2_common::types::{tuple_size_bytes, Tuple};
use mb2_common::{DbError, DbResult, OuKind, Value};
use mb2_index::Index;
use mb2_sql::plan::{AggSpec, OutputSink, ScanRange, SortKey};
use mb2_sql::{AggFunc, PlanNode};
use mb2_storage::{SlotId, Table, SHARD_UNIT_SLOTS};

use crate::columnar::{self, BlockPredicate};
use crate::compile::Evaluator;
use crate::context::ExecContext;
use crate::executor::subtree_size;
use crate::ops::{compiled, spin_us};
use crate::parallel::{self, ChainSpec, ExecPool, ParStage, ParallelRun, SpanAcct, WorkerAcct};
use crate::tracker::OuTracker;

/// Default rows per batch. 1 degenerates to tuple-at-a-time execution.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Upper bound on per-batch buffer pre-allocation (callers may pass huge
/// `max_rows`; don't trust it for `Vec::with_capacity`).
const MAX_PREALLOC: usize = 4096;

/// One batch of rows flowing through the pipeline.
#[derive(Debug, Default)]
pub struct Batch {
    pub rows: Vec<Arc<Tuple>>,
    /// Slot provenance, parallel to `rows`. Only populated by scans built
    /// with `want_slots` (the DML victim path); empty otherwise.
    pub slots: Vec<SlotId>,
}

impl Batch {
    fn with_capacity(n: usize) -> Batch {
        Batch {
            rows: Vec::with_capacity(n.min(MAX_PREALLOC)),
            slots: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Per-operator OU span. Work from every batch folds into one tracker; the
/// measurement is recorded exactly once, at `finish`. Inactive spans (no
/// recorder, no hardware pacing) cost two branches per batch.
struct OpSpan {
    id: u32,
    ou: OuKind,
    tracker: Option<OuTracker>,
    active: bool,
    recorded: bool,
}

impl OpSpan {
    fn new(ctx: &ExecContext<'_>, id: u32, ou: OuKind) -> OpSpan {
        OpSpan {
            id,
            ou,
            tracker: None,
            active: ctx.recorder.is_some() || ctx.hw.slowdown() > 1.0,

            recorded: false,
        }
    }

    /// Whether work counters need to be maintained at all.
    fn active(&self) -> bool {
        self.active
    }

    /// Open a timed section covering this batch's work.
    fn enter(&mut self) {
        if self.active {
            self.tracker
                .get_or_insert_with(OuTracker::start_paused)
                .resume();
        }
    }

    /// Close the current timed section (downstream operators run next).
    fn exit(&mut self) {
        if let Some(t) = self.tracker.as_mut() {
            t.pause();
        }
    }

    /// Fold work counts into the span (with or without an open section).
    fn work(&mut self, f: impl FnOnce(&mut OuTracker)) {
        if self.active {
            f(self.tracker.get_or_insert_with(OuTracker::start_paused));
        }
    }

    /// Fold a worker-side account (work counts + wall time) into the span.
    /// Parallel operators call this once per chain run, at close, so the
    /// recorded measurement sums every worker's contribution.
    fn absorb(&mut self, acct: &SpanAcct) {
        if self.active {
            self.tracker
                .get_or_insert_with(OuTracker::start_paused)
                .absorb(&acct.work, acct.elapsed_us);
        }
    }

    /// Record the folded measurement. Idempotent; an operator that was never
    /// pulled (LIMIT 0 upstream cut) still records a zero-work span so the
    /// recorder sees the full `(node id, OU)` set of the plan.
    fn finish(&mut self, ctx: &ExecContext<'_>) {
        if !self.active || self.recorded {
            return;
        }
        self.recorded = true;
        let tracker = self.tracker.take().unwrap_or_else(OuTracker::start_paused);
        let work = tracker.work;
        let metrics = tracker.finish(&ctx.hw);
        if let Some(r) = ctx.recorder {
            r.record_work(self.id, self.ou, work);
            r.record(self.id, self.ou, metrics);
        }
    }
}

/// A node in the executable pipeline.
pub(crate) trait BatchOperator {
    /// Pull up to `max_rows` rows. `None` = exhausted; `Some` with fewer
    /// rows (even zero) = not necessarily exhausted, pull again.
    fn next_batch(&mut self, ctx: &mut ExecContext<'_>, max_rows: usize)
        -> DbResult<Option<Batch>>;

    /// Finish and record this operator's spans (children first, matching
    /// the record order of full bottom-up materialization). Called once by
    /// the driver after the root is drained or a LIMIT cut execution short.
    fn close(&mut self, ctx: &mut ExecContext<'_>);
}

type BoxedOp = Box<dyn BatchOperator>;

// ----------------------------------------------------------------------
// Scans
// ----------------------------------------------------------------------

/// Sequential scan with the filter pushed into the visibility visitor:
/// filtered-out tuples are never cloned, and the scan suspends mid-heap as
/// soon as the batch fills (resumable via `scan_visible_from`).
///
/// With the `columnar_enabled` knob on (`block_pred` set), the scan serves
/// every *clean sealed unit* wholesale from its columnar block — vectorized
/// predicate masks, zone-map skipping, late materialization (Block/Scan OU)
/// — and walks version chains only for the dirty/unsealed remainder, so
/// the emitted row stream stays byte-identical to the pure row path.
struct SeqScanOp {
    table: Arc<Table>,
    filter: Option<Evaluator>,
    filter_ops: u64,
    want_slots: bool,
    pos: usize,
    done: bool,
    scan_span: OpSpan,
    filter_span: Option<OpSpan>,
    /// `Some` iff this scan may take the columnar fast path.
    block_pred: Option<BlockPredicate>,
    block_span: Option<OpSpan>,
    /// Block-path rows beyond the current batch's budget (a block emits a
    /// whole unit's survivors at once); drained first on the next pull.
    carry: Vec<Arc<Tuple>>,
    carry_cursor: usize,
}

impl BatchOperator for SeqScanOp {
    fn next_batch(
        &mut self,
        ctx: &mut ExecContext<'_>,
        max_rows: usize,
    ) -> DbResult<Option<Batch>> {
        let max = max_rows.max(1);
        let mut batch = Batch::with_capacity(max);
        // Carried-over block rows precede anything newly scanned.
        while batch.rows.len() < max && self.carry_cursor < self.carry.len() {
            batch.rows.push(Arc::clone(&self.carry[self.carry_cursor]));
            self.carry_cursor += 1;
        }
        if self.carry_cursor >= self.carry.len() {
            self.carry.clear();
            self.carry_cursor = 0;
        }
        let track = self.scan_span.active();
        let want_slots = self.want_slots;
        let mut scanned = 0u64;
        let mut scanned_bytes = 0u64;
        while batch.rows.len() < max && !self.done {
            // Columnar fast path: a clean sealed block is a complete
            // snapshot of its unit (writers mark it dirty before their
            // commit timestamp is drawn), so the whole unit is served
            // without touching a chain lock. Dirty/unsealed units fall
            // through to the row path, whose per-slot block fallback
            // handles sealed rows among revived chains.
            if let Some(pred) = &self.block_pred {
                if self.pos.is_multiple_of(SHARD_UNIT_SLOTS) {
                    let unit = self.pos / SHARD_UNIT_SLOTS;
                    if let Some(block) = self.table.sealed_unit(unit).filter(|b| !b.is_dirty()) {
                        let span = self.block_span.as_mut().expect("columnar scan block span");
                        span.enter();
                        let carry = &mut self.carry;
                        let out = columnar::scan_block(
                            &block,
                            pred,
                            self.filter.as_ref(),
                            ctx.txn.read_ts(),
                            |row| {
                                if batch.rows.len() < max {
                                    batch.rows.push(Arc::clone(row));
                                } else {
                                    carry.push(Arc::clone(row));
                                }
                            },
                        );
                        let out = match out {
                            Ok(o) => o,
                            Err(e) => {
                                span.exit();
                                return Err(e);
                            }
                        };
                        span.work(|t| {
                            t.add_tuples(out.swept);
                            t.add_bytes(out.bytes);
                            t.add_allocated(out.bytes);
                        });
                        span.exit();
                        if out.zone_skipped {
                            self.table.note_zone_skip(unit);
                        }
                        if let Some(fspan) = self.filter_span.as_mut() {
                            // Predicate work over swept rows lands on the
                            // filter span exactly as the fused row path
                            // accounts it (zone-skipped blocks swept 0).
                            let ops = self.filter_ops;
                            fspan.work(|t| {
                                t.add_tuples(out.swept);
                                t.add_comparisons(out.swept * ops);
                            });
                        }
                        self.pos += SHARD_UNIT_SLOTS;
                        continue;
                    }
                }
            }
            // Row path: up to the next unit boundary in columnar mode (so
            // the next iteration can reconsider a block), unbounded
            // otherwise.
            let seg_end = if self.block_pred.is_some() {
                (self.pos / SHARD_UNIT_SLOTS + 1) * SHARD_UNIT_SLOTS
            } else {
                usize::MAX
            };
            self.scan_span.enter();
            let filter = self.filter.as_ref();
            let mut err: Option<DbError> = None;
            self.pos = self.table.scan_visible_range(
                self.pos,
                seg_end,
                ctx.txn.read_ts(),
                ctx.txn.id(),
                |slot, tuple| {
                    if track {
                        scanned += 1;
                        scanned_bytes += tuple_size_bytes(tuple) as u64;
                    }
                    let keep = match filter {
                        None => true,
                        Some(ev) => match ev.eval_bool(tuple) {
                            Ok(k) => k,
                            Err(e) => {
                                err = Some(e);
                                return false;
                            }
                        },
                    };
                    if keep {
                        batch.rows.push(Arc::clone(tuple));
                        if want_slots {
                            batch.slots.push(slot);
                        }
                    }
                    batch.rows.len() < max
                },
            );
            self.scan_span.exit();
            if let Some(e) = err {
                self.flush_row_work(scanned, scanned_bytes);
                return Err(e);
            }
            if batch.rows.len() < max && self.pos < seg_end {
                // The heap ended inside this segment.
                self.done = true;
            }
        }
        self.flush_row_work(scanned, scanned_bytes);
        if batch.rows.is_empty() && self.done && self.carry.is_empty() {
            return Ok(None);
        }
        Ok(Some(batch))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.scan_span.finish(ctx);
        if let Some(span) = self.block_span.as_mut() {
            span.finish(ctx);
        }
        if let Some(span) = self.filter_span.as_mut() {
            span.finish(ctx);
        }
    }
}

impl SeqScanOp {
    /// Fold this pull's row-path work into the scan and (fused) filter
    /// spans. The fused predicate ran inside the scan section; its *work*
    /// counts still land on the Arithmetic/Filter span (features are
    /// preserved; elapsed time legitimately collapses — see DESIGN.md
    /// "Batch execution model").
    fn flush_row_work(&mut self, scanned: u64, scanned_bytes: u64) {
        self.scan_span.work(|t| {
            t.add_tuples(scanned);
            t.add_bytes(scanned_bytes);
            t.add_allocated(scanned_bytes);
        });
        if let Some(span) = self.filter_span.as_mut() {
            let ops = self.filter_ops;
            span.work(|t| {
                t.add_tuples(scanned);
                t.add_comparisons(scanned * ops);
            });
        }
    }
}

/// Index scan: candidate slots come from one `range_prefix` pass (done
/// lazily on first pull), then visibility + residual filter are applied a
/// batch at a time against the base table.
struct IndexScanOp {
    table: Arc<Table>,
    index: Arc<Index<SlotId>>,
    range: ScanRange,
    filter: Option<Evaluator>,
    filter_ops: u64,
    want_slots: bool,
    candidates: Option<Vec<SlotId>>,
    cursor: usize,
    scan_span: OpSpan,
    filter_span: Option<OpSpan>,
}

impl BatchOperator for IndexScanOp {
    fn next_batch(
        &mut self,
        ctx: &mut ExecContext<'_>,
        max_rows: usize,
    ) -> DbResult<Option<Batch>> {
        let max = max_rows.max(1);
        self.scan_span.enter();
        if self.candidates.is_none() {
            let mut c: Vec<SlotId> = Vec::new();
            self.index
                .range_prefix(&self.range.lo, &self.range.hi, |_, &slot| {
                    c.push(slot);
                    true
                });
            self.candidates = Some(c);
        }
        let candidates = self.candidates.as_ref().expect("index candidates");
        if self.cursor >= candidates.len() {
            self.scan_span.exit();
            return Ok(None);
        }
        let track = self.scan_span.active();
        let mut batch = Batch::with_capacity(max);
        let mut visible = 0u64;
        let mut bytes = 0u64;
        let mut probed = 0u64;
        let mut err: Option<DbError> = None;
        while self.cursor < candidates.len() && batch.rows.len() < max {
            let slot = candidates[self.cursor];
            self.cursor += 1;
            probed += 1;
            if let Some(tuple) = ctx.txn.read(&self.table, slot) {
                if track {
                    visible += 1;
                    bytes += tuple_size_bytes(&tuple) as u64;
                }
                let keep = match &self.filter {
                    None => true,
                    Some(ev) => match ev.eval_bool(&tuple) {
                        Ok(k) => k,
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    },
                };
                if keep {
                    batch.rows.push(tuple);
                    if self.want_slots {
                        batch.slots.push(slot);
                    }
                }
            }
        }
        self.scan_span.work(|t| {
            t.add_tuples(visible);
            t.add_bytes(bytes);
            t.add_random_accesses(probed);
            t.add_hash_probes(0);
            t.add_allocated(bytes);
        });
        self.scan_span.exit();
        if let Some(span) = self.filter_span.as_mut() {
            let ops = self.filter_ops;
            span.work(|t| {
                t.add_tuples(visible);
                t.add_comparisons(visible * ops);
            });
        }
        if let Some(e) = err {
            return Err(e);
        }
        Ok(Some(batch))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.scan_span.finish(ctx);
        if let Some(span) = self.filter_span.as_mut() {
            span.finish(ctx);
        }
    }
}

// ----------------------------------------------------------------------
// Parallel leaf chains (see crate::parallel and DESIGN.md "Parallel
// execution model")
// ----------------------------------------------------------------------

/// Match a plan subtree that can run as a parallel leaf chain: zero or more
/// Filter/Project stages over a sequential scan of a table with at least
/// two morsels. Returns `None` (→ serial pipeline) when there is no pool,
/// the subtree has another shape, or the table is too small to split.
/// Index scans stay serial: their candidate sets come from one index pass,
/// not from heap ranges.
fn par_chain(node: &PlanNode, id: u32, ctx: &ExecContext<'_>) -> DbResult<Option<Arc<ChainSpec>>> {
    if ctx.pool.is_none() {
        return Ok(None);
    }
    let use_compiled = compiled(ctx);
    let mut stages: Vec<ParStage> = Vec::new();
    let mut cur = node;
    let mut cur_id = id;
    loop {
        match cur {
            PlanNode::Filter {
                input, predicate, ..
            } => {
                stages.push(ParStage::Filter {
                    id: cur_id,
                    eval: Evaluator::new(predicate, use_compiled),
                    ops: predicate.op_count() as u64,
                });
                cur = input;
                cur_id += 1;
            }
            PlanNode::Project { input, exprs, .. } => {
                stages.push(ParStage::Project {
                    id: cur_id,
                    evals: exprs
                        .iter()
                        .map(|e| Evaluator::new(e, use_compiled))
                        .collect(),
                    ops: exprs.iter().map(|e| e.op_count() as u64).sum(),
                });
                cur = input;
                cur_id += 1;
            }
            PlanNode::SeqScan { table, filter, .. } => {
                let entry = ctx.catalog.get(table)?;
                let total_slots = entry.table.num_slots();
                let mut morsel_slots = ctx.morsel_slots.max(1);
                if ctx.columnar {
                    // Unit-align morsels so each sealed block lies inside
                    // exactly one morsel and can be served wholesale.
                    morsel_slots = morsel_slots.div_ceil(SHARD_UNIT_SLOTS) * SHARD_UNIT_SLOTS;
                }
                if total_slots.div_ceil(morsel_slots) < 2 {
                    return Ok(None);
                }
                // Stages were collected top-down; workers apply them
                // scan-upward.
                stages.reverse();
                return Ok(Some(Arc::new(ChainSpec {
                    table: Arc::clone(&entry.table),
                    read_ts: ctx.txn.read_ts(),
                    own: ctx.txn.id(),
                    scan_id: cur_id,
                    filter: filter.as_ref().map(|f| Evaluator::new(f, use_compiled)),
                    filter_ops: filter.as_ref().map_or(0, |f| f.op_count()) as u64,
                    block_pred: ctx
                        .columnar
                        .then(|| BlockPredicate::extract(filter.as_ref())),
                    stages,
                    track: ctx.recorder.is_some() || ctx.hw.slowdown() > 1.0,
                    morsel_slots,
                    total_slots,
                })));
            }
            _ => return Ok(None),
        }
    }
}

/// One `OpSpan` per (node, OU) the chain accounts for — created eagerly so
/// a chain that never runs (LIMIT 0) still records zero-work spans.
fn chain_spans(ctx: &ExecContext<'_>, chain: &ChainSpec) -> Vec<OpSpan> {
    chain
        .span_keys()
        .into_iter()
        .map(|(id, ou)| OpSpan::new(ctx, id, ou))
        .collect()
}

/// Fold every matching worker account into the chain's spans.
fn absorb_chain(spans: &mut [OpSpan], acct: &WorkerAcct) {
    for span in spans {
        if let Some(a) = acct.get(span.id, span.ou) {
            span.absorb(a);
        }
    }
}

fn require_pool(ctx: &ExecContext<'_>) -> DbResult<Arc<ExecPool>> {
    ctx.pool
        .clone()
        .ok_or_else(|| DbError::Execution("parallel operator built without a pool".into()))
}

/// A pipeline-breaker input: either a regular child operator or a parallel
/// leaf chain the breaker consumes morsel-wise on the worker pool.
enum ParChild {
    Op(BoxedOp),
    Parallel {
        chain: Arc<ChainSpec>,
        spans: Vec<OpSpan>,
    },
}

impl ParChild {
    fn from_plan(node: &PlanNode, id: u32, ctx: &ExecContext<'_>) -> DbResult<ParChild> {
        match par_chain(node, id, ctx)? {
            Some(chain) => {
                let spans = chain_spans(ctx, &chain);
                Ok(ParChild::Parallel { chain, spans })
            }
            None => Ok(ParChild::Op(build_pipeline(node, id, ctx, false)?)),
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        match self {
            ParChild::Op(op) => op.close(ctx),
            ParChild::Parallel { spans, .. } => {
                for span in spans {
                    span.finish(ctx);
                }
            }
        }
    }
}

/// A parallel leaf chain in a streaming (non-breaker) position: workers
/// scan/filter/project morsels concurrently and the ordered gather re-emits
/// rows in heap order, so downstream operators (and LIMIT) see exactly the
/// serial row stream.
struct ParallelScanOp {
    chain: Arc<ChainSpec>,
    spans: Vec<OpSpan>,
    run: Option<ParallelRun<Vec<Arc<Tuple>>>>,
    started: bool,
    buf: Vec<Arc<Tuple>>,
    cursor: usize,
    exhausted: bool,
}

impl ParallelScanOp {
    fn new(ctx: &ExecContext<'_>, chain: Arc<ChainSpec>) -> ParallelScanOp {
        let spans = chain_spans(ctx, &chain);
        ParallelScanOp {
            chain,
            spans,
            run: None,
            started: false,
            buf: Vec::new(),
            cursor: 0,
            exhausted: false,
        }
    }
}

impl BatchOperator for ParallelScanOp {
    fn next_batch(
        &mut self,
        ctx: &mut ExecContext<'_>,
        max_rows: usize,
    ) -> DbResult<Option<Batch>> {
        if self.exhausted {
            return Ok(None);
        }
        if !self.started {
            self.started = true;
            let pool = require_pool(ctx)?;
            self.run = Some(parallel::start(
                &pool,
                Arc::clone(&self.chain),
                |_chain, rows, _acct| Ok(rows),
            ));
        }
        let max = max_rows.max(1);
        let mut batch = Batch::with_capacity(max);
        while batch.rows.len() < max {
            if self.cursor < self.buf.len() {
                let take = (max - batch.rows.len()).min(self.buf.len() - self.cursor);
                batch
                    .rows
                    .extend(self.buf[self.cursor..self.cursor + take].iter().cloned());
                self.cursor += take;
                continue;
            }
            match self
                .run
                .as_mut()
                .expect("parallel run started")
                .next_morsel()
            {
                Some(Ok(rows)) => {
                    self.buf = rows;
                    self.cursor = 0;
                }
                Some(Err(e)) => return Err(e),
                None => {
                    self.exhausted = true;
                    break;
                }
            }
        }
        if batch.rows.is_empty() {
            return Ok(None);
        }
        Ok(Some(batch))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        if let Some(run) = self.run.take() {
            // Cancels outstanding morsels (LIMIT early-cut) and folds every
            // worker's accounting into the chain's spans.
            let acct = run.finish();
            absorb_chain(&mut self.spans, &acct);
        }
        for span in &mut self.spans {
            span.finish(ctx);
        }
    }
}

// ----------------------------------------------------------------------
// Stateless streaming operators
// ----------------------------------------------------------------------

/// Standalone filter node (HAVING and other post-operator predicates).
struct FilterOp {
    child: BoxedOp,
    eval: Evaluator,
    ops_per: u64,
    span: OpSpan,
}

impl BatchOperator for FilterOp {
    fn next_batch(
        &mut self,
        ctx: &mut ExecContext<'_>,
        max_rows: usize,
    ) -> DbResult<Option<Batch>> {
        let Some(input) = self.child.next_batch(ctx, max_rows)? else {
            return Ok(None);
        };
        self.span.enter();
        let n_in = input.rows.len() as u64;
        let mut out = Batch::with_capacity(input.rows.len());
        for row in input.rows {
            if self.eval.eval_bool(&row)? {
                out.rows.push(row);
            }
        }
        let ops = self.ops_per;
        self.span.work(|t| {
            t.add_tuples(n_in);
            t.add_comparisons(n_in * ops);
        });
        self.span.exit();
        Ok(Some(out))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.child.close(ctx);
        self.span.finish(ctx);
    }
}

struct ProjectOp {
    child: BoxedOp,
    evals: Vec<Evaluator>,
    ops_per: u64,
    span: OpSpan,
}

impl BatchOperator for ProjectOp {
    fn next_batch(
        &mut self,
        ctx: &mut ExecContext<'_>,
        max_rows: usize,
    ) -> DbResult<Option<Batch>> {
        let Some(input) = self.child.next_batch(ctx, max_rows)? else {
            return Ok(None);
        };
        self.span.enter();
        let n = input.rows.len() as u64;
        let mut out = Batch::with_capacity(input.rows.len());
        for row in &input.rows {
            let projected: Tuple = self
                .evals
                .iter()
                .map(|e| e.eval(row))
                .collect::<DbResult<_>>()?;
            out.rows.push(Arc::new(projected));
        }
        let ops = self.ops_per;
        self.span.work(|t| {
            t.add_tuples(n);
            t.add_comparisons(n * ops.max(1));
        });
        self.span.exit();
        Ok(Some(out))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.child.close(ctx);
        self.span.finish(ctx);
    }
}

/// LIMIT: the early-termination driver. Narrows the row budget it passes
/// upstream to `remaining`, so scans stop pulling tuples off the heap the
/// moment the quota is met — upstream operators are simply never pulled
/// again (and record their partial work at close).
struct LimitOp {
    child: BoxedOp,
    remaining: usize,
}

impl BatchOperator for LimitOp {
    fn next_batch(
        &mut self,
        ctx: &mut ExecContext<'_>,
        max_rows: usize,
    ) -> DbResult<Option<Batch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let want = max_rows.max(1).min(self.remaining);
        match self.child.next_batch(ctx, want)? {
            None => {
                self.remaining = 0;
                Ok(None)
            }
            Some(mut batch) => {
                if batch.rows.len() > self.remaining {
                    batch.rows.truncate(self.remaining);
                    batch.slots.truncate(self.remaining);
                }
                self.remaining -= batch.rows.len();
                Ok(Some(batch))
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.child.close(ctx);
    }
}

/// Result materialization (Output Result OU).
struct OutputOp {
    child: BoxedOp,
    sink: OutputSink,
    span: OpSpan,
}

impl BatchOperator for OutputOp {
    fn next_batch(
        &mut self,
        ctx: &mut ExecContext<'_>,
        max_rows: usize,
    ) -> DbResult<Option<Batch>> {
        let Some(input) = self.child.next_batch(ctx, max_rows)? else {
            return Ok(None);
        };
        self.span.enter();
        let bytes: u64 = input.rows.iter().map(|r| tuple_size_bytes(r) as u64).sum();
        let out_tuples = match self.sink {
            OutputSink::Client => input.rows.len() as u64,
            OutputSink::Discard => 0,
        };
        self.span.work(|t| {
            t.add_tuples(out_tuples);
            t.add_bytes(bytes);
            t.add_allocated(bytes);
        });
        self.span.exit();
        match self.sink {
            OutputSink::Client => Ok(Some(input)),
            OutputSink::Discard => Ok(Some(Batch::default())),
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.child.close(ctx);
        self.span.finish(ctx);
    }
}

// ----------------------------------------------------------------------
// Joins
// ----------------------------------------------------------------------

/// The frozen build side of a hash join: row storage plus key → row-index
/// buckets. Shared immutably with pool workers during a parallel probe.
struct JoinTable {
    rows: Vec<Arc<Tuple>>,
    map: HashMap<Vec<Value>, Vec<usize>>,
}

impl JoinTable {
    /// Bucket lookup without a per-probe-row key allocation: single-column
    /// keys (the common case) borrow the probe row's value in place via
    /// `Vec<Value>: Borrow<[Value]>`; multi-column keys refill one scratch
    /// buffer per probe loop instead of allocating a fresh `Vec` per row.
    #[inline]
    fn matches(
        &self,
        keys: &[usize],
        row: &Tuple,
        scratch: &mut Vec<Value>,
    ) -> Option<&Vec<usize>> {
        if let [k] = keys {
            self.map.get(std::slice::from_ref(&row[*k]))
        } else {
            scratch.clear();
            scratch.extend(keys.iter().map(|&k| row[k].clone()));
            self.map.get(scratch.as_slice())
        }
    }
}

/// Per-morsel partial hash-table build shipped back through the ordered
/// gather: this morsel's rows plus morsel-local buckets.
type PartialBuild = (Vec<Arc<Tuple>>, HashMap<Vec<Value>, Vec<usize>>);

/// Hash join. The build side is a pipeline breaker: fully consumed on the
/// first pull (Join Hash Table Build OU). Probing then streams: each probe
/// batch is pulled on demand and matches beyond the caller's row budget are
/// buffered in `pending`, so a LIMIT above the join stops probe-side scans
/// early.
///
/// When a side is a parallel leaf chain, the breaker runs morsel-wise on
/// the pool: the build partitions into per-morsel tables merged in morsel
/// order (bucket entry order — and therefore probe output — stays
/// byte-identical to serial insertion order), and the probe matches each
/// morsel against the frozen table on the workers, gathered in order.
struct HashJoinOp {
    build: ParChild,
    probe: ParChild,
    build_keys: Arc<Vec<usize>>,
    probe_keys: Arc<Vec<usize>>,
    residual: Option<Arc<Evaluator>>,
    residual_ops: u64,
    built: bool,
    table: Option<Arc<JoinTable>>,
    probe_buf: Vec<Arc<Tuple>>,
    probe_cursor: usize,
    probe_done: bool,
    pending: VecDeque<Arc<Tuple>>,
    probe_run: Option<ParallelRun<Vec<Arc<Tuple>>>>,
    probe_started: bool,
    build_span: OpSpan,
    probe_span: OpSpan,
    filter_span: Option<OpSpan>,
}

impl HashJoinOp {
    fn build_table(&mut self, ctx: &mut ExecContext<'_>) -> DbResult<()> {
        let track = self.build_span.active();
        let mut rows: Vec<Arc<Tuple>> = Vec::new();
        let mut map: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        let mut build_bytes = 0u64;
        let mut parallel_built = false;
        match &mut self.build {
            ParChild::Op(child) => {
                let pull = ctx.batch_size.max(1);
                loop {
                    // The child times itself; our span only covers inserts.
                    let pulled = child.next_batch(ctx, pull)?;
                    let Some(batch) = pulled else { break };
                    self.build_span.enter();
                    map.reserve(batch.rows.len());
                    for row in batch.rows {
                        let key: Vec<Value> =
                            self.build_keys.iter().map(|&k| row[k].clone()).collect();
                        if track {
                            build_bytes += tuple_size_bytes(&row) as u64;
                        }
                        map.entry(key).or_default().push(rows.len());
                        rows.push(row);
                        if ctx.jht_sleep_every > 0 && rows.len().is_multiple_of(ctx.jht_sleep_every)
                        {
                            spin_us(1);
                        }
                    }
                    self.build_span.exit();
                }
            }
            ParChild::Parallel { chain, spans } => {
                parallel_built = true;
                let pool = require_pool(ctx)?;
                let keys = Arc::clone(&self.build_keys);
                let jht = ctx.jht_sleep_every;
                let ou_id = self.build_span.id;
                let mut run = parallel::start(
                    &pool,
                    Arc::clone(chain),
                    move |chain, rows, acct| -> DbResult<PartialBuild> {
                        let t0 = Instant::now();
                        let mut bytes = 0u64;
                        let mut part: HashMap<Vec<Value>, Vec<usize>> =
                            HashMap::with_capacity(rows.len());
                        for (i, row) in rows.iter().enumerate() {
                            let key: Vec<Value> = keys.iter().map(|&k| row[k].clone()).collect();
                            if chain.track {
                                bytes += tuple_size_bytes(row) as u64;
                            }
                            part.entry(key).or_default().push(i);
                            if jht > 0 && (i + 1).is_multiple_of(jht) {
                                spin_us(1);
                            }
                        }
                        if chain.track {
                            // Per-row-linear build work is accounted on the
                            // worker; merge-only terms (unique buckets) are
                            // added by the issuing thread so totals match
                            // the serial formula exactly.
                            let n = rows.len() as u64;
                            let s = acct.span(ou_id, OuKind::JoinHashBuild);
                            s.work.tuples += n;
                            s.work.bytes += bytes;
                            s.work.hash_probes += n;
                            s.work.allocated_bytes += n * (32 + keys.len() as u64 * 16) + bytes;
                            s.elapsed_us += parallel::elapsed_us(t0);
                        }
                        Ok((rows, part))
                    },
                );
                // Merge partial tables in morsel order: every index in a
                // later morsel is larger than every index in an earlier
                // one, so bucket entry order equals serial insertion order.
                while let Some(res) = run.next_morsel() {
                    let (part_rows, part_map) = res?;
                    self.build_span.enter();
                    let off = rows.len();
                    map.reserve(part_map.len());
                    for (key, idxs) in part_map {
                        map.entry(key)
                            .or_default()
                            .extend(idxs.into_iter().map(|i| i + off));
                    }
                    rows.extend(part_rows);
                    self.build_span.exit();
                }
                let acct = run.finish();
                absorb_chain(spans, &acct);
                if let Some(a) = acct.get(ou_id, OuKind::JoinHashBuild) {
                    self.build_span.absorb(a);
                }
            }
        }
        let n = rows.len() as u64;
        let uniq = map.len() as u64;
        if parallel_built {
            self.build_span.work(|t| t.add_random_accesses(uniq));
        } else {
            let alloc = n * (32 + self.build_keys.len() as u64 * 16) + build_bytes;
            self.build_span.work(|t| {
                t.add_tuples(n);
                t.add_bytes(build_bytes);
                t.add_hash_probes(n);
                t.add_random_accesses(uniq);
                t.add_allocated(alloc);
            });
        }
        self.table = Some(Arc::new(JoinTable { rows, map }));
        self.built = true;
        Ok(())
    }

    /// Serial probe: pull probe batches through the pipeline and match them
    /// on this thread.
    fn next_batch_serial(
        &mut self,
        ctx: &mut ExecContext<'_>,
        max: usize,
    ) -> DbResult<Option<Batch>> {
        let table = Arc::clone(self.table.as_ref().expect("join table built"));
        let mut out = Batch::with_capacity(max);
        let track = self.probe_span.active();
        let mut probe_tuples = 0u64;
        let mut probe_bytes = 0u64;
        let mut out_bytes = 0u64;
        let mut matched = 0u64;
        let mut key_scratch: Vec<Value> = Vec::new();
        self.probe_span.enter();
        while out.rows.len() < max {
            if let Some(row) = self.pending.pop_front() {
                out.rows.push(row);
                continue;
            }
            if self.probe_cursor >= self.probe_buf.len() {
                if self.probe_done {
                    break;
                }
                let child = match &mut self.probe {
                    ParChild::Op(op) => op,
                    ParChild::Parallel { .. } => unreachable!("serial probe"),
                };
                self.probe_span.exit();
                let pulled = child.next_batch(ctx, max)?;
                self.probe_span.enter();
                match pulled {
                    None => self.probe_done = true,
                    Some(batch) => {
                        self.probe_buf = batch.rows;
                        self.probe_cursor = 0;
                    }
                }
                continue;
            }
            let row = Arc::clone(&self.probe_buf[self.probe_cursor]);
            self.probe_cursor += 1;
            if track {
                probe_tuples += 1;
                probe_bytes += tuple_size_bytes(&row) as u64;
            }
            if let Some(matches) = table.matches(&self.probe_keys, &row, &mut key_scratch) {
                for &bi in matches {
                    let build_row = &table.rows[bi];
                    let mut combined: Tuple = Vec::with_capacity(row.len() + build_row.len());
                    combined.extend(row.iter().cloned());
                    combined.extend(build_row.iter().cloned());
                    if track {
                        out_bytes += tuple_size_bytes(&combined) as u64;
                        matched += 1;
                    }
                    let pass = match &self.residual {
                        Some(ev) => ev.eval_bool(&combined)?,
                        None => true,
                    };
                    if pass {
                        let combined = Arc::new(combined);
                        if out.rows.len() < max {
                            out.rows.push(combined);
                        } else {
                            self.pending.push_back(combined);
                        }
                    }
                }
            }
        }
        self.probe_span.work(|t| {
            t.add_tuples(probe_tuples);
            t.add_bytes(probe_bytes + out_bytes);
            t.add_hash_probes(probe_tuples);
            t.add_allocated(out_bytes);
        });
        self.probe_span.exit();
        if let Some(span) = self.filter_span.as_mut() {
            let ops = self.residual_ops;
            span.work(|t| {
                t.add_tuples(matched);
                t.add_comparisons(matched * ops);
            });
        }
        if out.rows.is_empty()
            && self.probe_done
            && self.pending.is_empty()
            && self.probe_cursor >= self.probe_buf.len()
        {
            return Ok(None);
        }
        Ok(Some(out))
    }

    /// Parallel probe: workers match whole morsels against the frozen table;
    /// joined rows arrive through the ordered gather in probe-major order,
    /// byte-identical to the serial probe stream.
    fn next_batch_parallel(
        &mut self,
        ctx: &mut ExecContext<'_>,
        max: usize,
    ) -> DbResult<Option<Batch>> {
        if !self.probe_started {
            self.probe_started = true;
            let pool = require_pool(ctx)?;
            let chain = match &self.probe {
                ParChild::Parallel { chain, .. } => Arc::clone(chain),
                ParChild::Op(_) => unreachable!("parallel probe"),
            };
            let table = Arc::clone(self.table.as_ref().expect("join table built"));
            let pkeys = Arc::clone(&self.probe_keys);
            let residual = self.residual.clone();
            let residual_ops = self.residual_ops;
            let ou_id = self.probe_span.id;
            self.probe_run = Some(parallel::start(&pool, chain, move |chain, rows, acct| {
                let t0 = Instant::now();
                let track = chain.track;
                let mut out: Vec<Arc<Tuple>> = Vec::new();
                let mut probe_bytes = 0u64;
                let mut out_bytes = 0u64;
                let mut matched = 0u64;
                let mut key_scratch: Vec<Value> = Vec::new();
                for row in &rows {
                    if track {
                        probe_bytes += tuple_size_bytes(row) as u64;
                    }
                    if let Some(matches) = table.matches(&pkeys, row, &mut key_scratch) {
                        for &bi in matches {
                            let build_row = &table.rows[bi];
                            let mut combined: Tuple =
                                Vec::with_capacity(row.len() + build_row.len());
                            combined.extend(row.iter().cloned());
                            combined.extend(build_row.iter().cloned());
                            if track {
                                out_bytes += tuple_size_bytes(&combined) as u64;
                                matched += 1;
                            }
                            let pass = match &residual {
                                Some(ev) => ev.eval_bool(&combined)?,
                                None => true,
                            };
                            if pass {
                                out.push(Arc::new(combined));
                            }
                        }
                    }
                }
                if track {
                    let n = rows.len() as u64;
                    let s = acct.span(ou_id, OuKind::JoinHashProbe);
                    s.work.tuples += n;
                    s.work.bytes += probe_bytes + out_bytes;
                    s.work.hash_probes += n;
                    s.work.allocated_bytes += out_bytes;
                    s.elapsed_us += parallel::elapsed_us(t0);
                    if residual.is_some() {
                        let f = acct.span(ou_id, OuKind::ArithmeticFilter);
                        f.work.tuples += matched;
                        f.work.comparisons += matched * residual_ops;
                    }
                }
                Ok(out)
            }));
        }
        let mut out = Batch::with_capacity(max);
        while out.rows.len() < max {
            if self.probe_cursor < self.probe_buf.len() {
                let take = (max - out.rows.len()).min(self.probe_buf.len() - self.probe_cursor);
                out.rows.extend(
                    self.probe_buf[self.probe_cursor..self.probe_cursor + take]
                        .iter()
                        .cloned(),
                );
                self.probe_cursor += take;
                continue;
            }
            if self.probe_done {
                break;
            }
            match self.probe_run.as_mut().expect("probe run").next_morsel() {
                Some(Ok(rows)) => {
                    self.probe_buf = rows;
                    self.probe_cursor = 0;
                }
                Some(Err(e)) => return Err(e),
                None => {
                    self.probe_done = true;
                    break;
                }
            }
        }
        if out.rows.is_empty() && self.probe_done && self.probe_cursor >= self.probe_buf.len() {
            return Ok(None);
        }
        Ok(Some(out))
    }
}

impl BatchOperator for HashJoinOp {
    fn next_batch(
        &mut self,
        ctx: &mut ExecContext<'_>,
        max_rows: usize,
    ) -> DbResult<Option<Batch>> {
        if !self.built {
            self.build_table(ctx)?;
        }
        let max = max_rows.max(1);
        match &self.probe {
            ParChild::Op(_) => self.next_batch_serial(ctx, max),
            ParChild::Parallel { .. } => self.next_batch_parallel(ctx, max),
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        if let Some(run) = self.probe_run.take() {
            let acct = run.finish();
            if let ParChild::Parallel { spans, .. } = &mut self.probe {
                absorb_chain(spans, &acct);
            }
            if let Some(a) = acct.get(self.probe_span.id, OuKind::JoinHashProbe) {
                self.probe_span.absorb(a);
            }
            if let Some(span) = self.filter_span.as_mut() {
                if let Some(a) = acct.get(self.probe_span.id, OuKind::ArithmeticFilter) {
                    span.absorb(a);
                }
            }
        }
        self.build.close(ctx);
        self.probe.close(ctx);
        self.build_span.finish(ctx);
        self.probe_span.finish(ctx);
        if let Some(span) = self.filter_span.as_mut() {
            span.finish(ctx);
        }
    }
}

/// Nested-loop cross join (non-equi fallback). The inner side is a pipeline
/// breaker (fully materialized on first pull); the outer side streams one
/// tuple at a time, so a LIMIT above stops the outer scan early.
struct NestedLoopJoinOp {
    outer: BoxedOp,
    inner: BoxedOp,
    eval: Option<Evaluator>,
    ops_per: u64,
    inner_built: bool,
    inner_rows: Vec<Arc<Tuple>>,
    outer_buf: Vec<Arc<Tuple>>,
    outer_cursor: usize,
    outer_done: bool,
    pending: VecDeque<Arc<Tuple>>,
    span: OpSpan,
}

impl BatchOperator for NestedLoopJoinOp {
    fn next_batch(
        &mut self,
        ctx: &mut ExecContext<'_>,
        max_rows: usize,
    ) -> DbResult<Option<Batch>> {
        if !self.inner_built {
            let pull = ctx.batch_size.max(1);
            while let Some(batch) = self.inner.next_batch(ctx, pull)? {
                self.inner_rows.extend(batch.rows);
            }
            self.inner_built = true;
        }
        let max = max_rows.max(1);
        let mut out = Batch::with_capacity(max);
        let track = self.span.active();
        let mut pairs = 0u64;
        self.span.enter();
        while out.rows.len() < max {
            if let Some(row) = self.pending.pop_front() {
                out.rows.push(row);
                continue;
            }
            if self.outer_cursor >= self.outer_buf.len() {
                if self.outer_done {
                    break;
                }
                self.span.exit();
                let pulled = self.outer.next_batch(ctx, max)?;
                self.span.enter();
                match pulled {
                    None => self.outer_done = true,
                    Some(batch) => {
                        self.outer_buf = batch.rows;
                        self.outer_cursor = 0;
                    }
                }
                continue;
            }
            let o = Arc::clone(&self.outer_buf[self.outer_cursor]);
            self.outer_cursor += 1;
            if track {
                pairs += self.inner_rows.len() as u64;
            }
            for i in &self.inner_rows {
                let mut combined: Tuple = Vec::with_capacity(o.len() + i.len());
                combined.extend(o.iter().cloned());
                combined.extend(i.iter().cloned());
                let pass = match &self.eval {
                    Some(e) => e.eval_bool(&combined)?,
                    None => true,
                };
                if pass {
                    let combined = Arc::new(combined);
                    if out.rows.len() < max {
                        out.rows.push(combined);
                    } else {
                        self.pending.push_back(combined);
                    }
                }
            }
        }
        let ops = self.ops_per;
        self.span.work(|t| {
            t.add_tuples(pairs);
            t.add_comparisons(pairs * ops);
        });
        self.span.exit();
        if out.rows.is_empty()
            && self.outer_done
            && self.pending.is_empty()
            && self.outer_cursor >= self.outer_buf.len()
        {
            return Ok(None);
        }
        Ok(Some(out))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.outer.close(ctx);
        self.inner.close(ctx);
        self.span.finish(ctx);
    }
}

// ----------------------------------------------------------------------
// Aggregation
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Sum {
        total: f64,
        all_int: bool,
        seen: bool,
    },
    Avg {
        total: f64,
        n: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                total: 0.0,
                all_int: true,
                seen: false,
            },
            AggFunc::Avg => AggState::Avg { total: 0.0, n: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: Option<Value>) -> DbResult<()> {
        match self {
            AggState::Count(c) => {
                // COUNT(*) counts rows; COUNT(expr) skips NULLs.
                match v {
                    Some(val) if val.is_null() => {}
                    _ => *c += 1,
                }
            }
            AggState::Sum {
                total,
                all_int,
                seen,
            } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        if !matches!(val, Value::Int(_)) {
                            *all_int = false;
                        }
                        *total += val.as_f64()?;
                        *seen = true;
                    }
                }
            }
            AggState::Avg { total, n } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *total += val.as_f64()?;
                        *n += 1;
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| val.cmp_total(c) == std::cmp::Ordering::Less)
                    {
                        *cur = Some(val);
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| val.cmp_total(c) == std::cmp::Ordering::Greater)
                    {
                        *cur = Some(val);
                    }
                }
            }
        }
        Ok(())
    }

    /// Combine a later partial state into this one (parallel pre-aggregation
    /// merge, applied strictly in morsel order). Each combine mirrors the
    /// row-wise `update` fold: counts/sums add, MIN/MAX keep the earlier
    /// value on ties — so the merged state is exactly what a serial fold
    /// over the concatenated input produces (float sums are combined with
    /// the same left-to-right associativity caveat documented in DESIGN.md).
    fn merge(&mut self, later: AggState) {
        match (self, later) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (
                AggState::Sum {
                    total,
                    all_int,
                    seen,
                },
                AggState::Sum {
                    total: t2,
                    all_int: a2,
                    seen: s2,
                },
            ) => {
                *total += t2;
                *all_int &= a2;
                *seen |= s2;
            }
            (AggState::Avg { total, n }, AggState::Avg { total: t2, n: n2 }) => {
                *total += t2;
                *n += n2;
            }
            (AggState::Min(cur), AggState::Min(v)) => {
                if let Some(v) = v {
                    if cur
                        .as_ref()
                        .is_none_or(|c| v.cmp_total(c) == std::cmp::Ordering::Less)
                    {
                        *cur = Some(v);
                    }
                }
            }
            (AggState::Max(cur), AggState::Max(v)) => {
                if let Some(v) = v {
                    if cur
                        .as_ref()
                        .is_none_or(|c| v.cmp_total(c) == std::cmp::Ordering::Greater)
                    {
                        *cur = Some(v);
                    }
                }
            }
            _ => unreachable!("merging mismatched aggregate states"),
        }
    }

    fn finalize(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c),
            AggState::Sum {
                total,
                all_int,
                seen,
            } => {
                if !seen {
                    Value::Null
                } else if all_int {
                    Value::Int(total as i64)
                } else {
                    Value::Float(total)
                }
            }
            AggState::Avg { total, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(total / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Per-morsel partial aggregation shipped back through the ordered gather.
type PartialGroups = HashMap<Vec<Value>, Vec<AggState>>;

/// Hash aggregation: build (pipeline breaker, Agg Hash Table Build OU) then
/// batched emission of finalized groups (Agg Hash Table Probe OU).
///
/// With a parallel leaf chain below, workers pre-aggregate each morsel into
/// a local group map and the issuing thread merges the partials in strict
/// morsel order ([`AggState::merge`]), so the final states equal a serial
/// fold over the heap-ordered input.
struct AggregateOp {
    child: ParChild,
    specs: Arc<Vec<AggSpec>>,
    group_eval: Arc<Vec<Evaluator>>,
    agg_eval: Arc<Vec<Option<Evaluator>>>,
    n_group_cols: usize,
    built: bool,
    emit: Option<std::vec::IntoIter<(Vec<Value>, Vec<AggState>)>>,
    build_span: OpSpan,
    probe_span: OpSpan,
}

impl AggregateOp {
    fn build_groups(&mut self, ctx: &mut ExecContext<'_>) -> DbResult<()> {
        let track = self.build_span.active();
        let mut groups: PartialGroups = HashMap::new();
        let mut rows_in = 0u64;
        let mut bytes = 0u64;
        let mut parallel_built = false;
        match &mut self.child {
            ParChild::Op(child) => {
                let pull = ctx.batch_size.max(1);
                loop {
                    let pulled = child.next_batch(ctx, pull)?;
                    let Some(batch) = pulled else { break };
                    self.build_span.enter();
                    for row in &batch.rows {
                        if track {
                            rows_in += 1;
                            bytes += tuple_size_bytes(row) as u64;
                        }
                        let key: Vec<Value> = self
                            .group_eval
                            .iter()
                            .map(|g| g.eval(row))
                            .collect::<DbResult<_>>()?;
                        let specs = &self.specs;
                        let states = groups.entry(key).or_insert_with(|| {
                            specs.iter().map(|a| AggState::new(a.func)).collect()
                        });
                        for (state, eval) in states.iter_mut().zip(self.agg_eval.iter()) {
                            let v = match eval {
                                Some(e) => Some(e.eval(row)?),
                                None => None,
                            };
                            state.update(v)?;
                        }
                    }
                    self.build_span.exit();
                }
            }
            ParChild::Parallel { chain, spans } => {
                parallel_built = true;
                let pool = require_pool(ctx)?;
                let specs = Arc::clone(&self.specs);
                let group_eval = Arc::clone(&self.group_eval);
                let agg_eval = Arc::clone(&self.agg_eval);
                let ou_id = self.build_span.id;
                let mut run = parallel::start(
                    &pool,
                    Arc::clone(chain),
                    move |chain, rows, acct| -> DbResult<PartialGroups> {
                        let t0 = Instant::now();
                        let mut part: PartialGroups = HashMap::new();
                        let mut n = 0u64;
                        let mut part_bytes = 0u64;
                        for row in &rows {
                            if chain.track {
                                n += 1;
                                part_bytes += tuple_size_bytes(row) as u64;
                            }
                            let key: Vec<Value> = group_eval
                                .iter()
                                .map(|g| g.eval(row))
                                .collect::<DbResult<_>>()?;
                            let states = part.entry(key).or_insert_with(|| {
                                specs.iter().map(|a| AggState::new(a.func)).collect()
                            });
                            for (state, eval) in states.iter_mut().zip(agg_eval.iter()) {
                                let v = match eval {
                                    Some(e) => Some(e.eval(row)?),
                                    None => None,
                                };
                                state.update(v)?;
                            }
                        }
                        if chain.track {
                            let s = acct.span(ou_id, OuKind::AggBuild);
                            s.work.tuples += n;
                            s.work.bytes += part_bytes;
                            s.work.hash_probes += n;
                            s.elapsed_us += parallel::elapsed_us(t0);
                        }
                        Ok(part)
                    },
                );
                while let Some(res) = run.next_morsel() {
                    let part = res?;
                    self.build_span.enter();
                    for (key, states) in part {
                        match groups.entry(key) {
                            Entry::Occupied(mut e) => {
                                for (earlier, later) in e.get_mut().iter_mut().zip(states) {
                                    earlier.merge(later);
                                }
                            }
                            Entry::Vacant(e) => {
                                e.insert(states);
                            }
                        }
                    }
                    self.build_span.exit();
                }
                let acct = run.finish();
                absorb_chain(spans, &acct);
                if let Some(a) = acct.get(ou_id, OuKind::AggBuild) {
                    self.build_span.absorb(a);
                }
            }
        }
        if groups.is_empty() && self.n_group_cols == 0 {
            // Scalar aggregate over an empty input still yields one row.
            groups.insert(
                Vec::new(),
                self.specs.iter().map(|a| AggState::new(a.func)).collect(),
            );
        }
        let n_groups = groups.len() as u64;
        let width = (self.n_group_cols + self.specs.len()) as u64;
        if parallel_built {
            // Per-row terms were accounted on the workers; only the
            // merge-side terms (group slots) land here, so totals equal the
            // serial formula.
            self.build_span.work(|t| {
                t.add_random_accesses(n_groups);
                t.add_allocated(n_groups * (32 + width * 16));
            });
        } else {
            self.build_span.work(|t| {
                t.add_tuples(rows_in);
                t.add_bytes(bytes);
                t.add_hash_probes(rows_in);
                t.add_random_accesses(n_groups);
                t.add_allocated(n_groups * (32 + width * 16));
            });
        }
        self.emit = Some(groups.into_iter().collect::<Vec<_>>().into_iter());
        self.built = true;
        Ok(())
    }
}

impl BatchOperator for AggregateOp {
    fn next_batch(
        &mut self,
        ctx: &mut ExecContext<'_>,
        max_rows: usize,
    ) -> DbResult<Option<Batch>> {
        if !self.built {
            self.build_groups(ctx)?;
        }
        let emit = self.emit.as_mut().expect("agg emit iterator");
        if emit.len() == 0 {
            return Ok(None);
        }
        let max = max_rows.max(1);
        self.probe_span.enter();
        let mut out = Batch::with_capacity(max.min(emit.len()));
        let mut out_bytes = 0u64;
        let track = self.probe_span.active();
        while out.rows.len() < max {
            let Some((key, states)) = emit.next() else {
                break;
            };
            let mut row = key;
            row.extend(states.into_iter().map(AggState::finalize));
            if track {
                out_bytes += tuple_size_bytes(&row) as u64;
            }
            out.rows.push(Arc::new(row));
        }
        let n = out.rows.len() as u64;
        self.probe_span.work(|t| {
            t.add_tuples(n);
            t.add_bytes(out_bytes);
            t.add_allocated(out_bytes);
        });
        self.probe_span.exit();
        Ok(Some(out))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.child.close(ctx);
        self.build_span.finish(ctx);
        self.probe_span.finish(ctx);
    }
}

// ----------------------------------------------------------------------
// Sort
// ----------------------------------------------------------------------

/// Full sort: build (pipeline breaker, Sort Build OU) then batched ordered
/// emission (Sort Iterate OU).
struct SortOp {
    child: BoxedOp,
    keys: Vec<SortKey>,
    evals: Vec<Evaluator>,
    sorted: Option<std::vec::IntoIter<Arc<Tuple>>>,
    build_span: OpSpan,
    iter_span: OpSpan,
}

impl SortOp {
    fn build_sorted(&mut self, ctx: &mut ExecContext<'_>) -> DbResult<()> {
        let pull = ctx.batch_size.max(1);
        let track = self.build_span.active();
        let mut keyed: Vec<(Vec<Value>, Arc<Tuple>)> = Vec::new();
        let mut bytes = 0u64;
        loop {
            let pulled = self.child.next_batch(ctx, pull)?;
            let Some(batch) = pulled else { break };
            self.build_span.enter();
            for row in batch.rows {
                if track {
                    bytes += tuple_size_bytes(&row) as u64;
                }
                let key: Vec<Value> = self
                    .evals
                    .iter()
                    .map(|e| e.eval(&row))
                    .collect::<DbResult<_>>()?;
                keyed.push((key, row));
            }
            self.build_span.exit();
        }
        self.build_span.enter();
        let keys = &self.keys;
        let mut comparisons = 0u64;
        keyed.sort_by(|a, b| {
            comparisons += 1;
            for (i, k) in keys.iter().enumerate() {
                let ord = a.0[i].cmp_total(&b.0[i]);
                let ord = if k.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            // Tie-break on the full tuple so results are deterministic even
            // though upstream hash operators iterate in arbitrary order.
            for (x, y) in a.1.iter().zip(b.1.iter()) {
                let ord = x.cmp_total(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let n = keyed.len() as u64;
        let n_keys = self.keys.len() as u64;
        self.build_span.work(|t| {
            t.add_tuples(n);
            t.add_bytes(bytes);
            t.add_comparisons(comparisons);
            t.add_allocated(bytes + n * n_keys * 16);
        });
        self.build_span.exit();
        self.sorted = Some(
            keyed
                .into_iter()
                .map(|(_, row)| row)
                .collect::<Vec<_>>()
                .into_iter(),
        );
        Ok(())
    }
}

impl BatchOperator for SortOp {
    fn next_batch(
        &mut self,
        ctx: &mut ExecContext<'_>,
        max_rows: usize,
    ) -> DbResult<Option<Batch>> {
        if self.sorted.is_none() {
            self.build_sorted(ctx)?;
        }
        let sorted = self.sorted.as_mut().expect("sorted rows");
        if sorted.len() == 0 {
            return Ok(None);
        }
        let max = max_rows.max(1);
        self.iter_span.enter();
        let track = self.iter_span.active();
        let mut out = Batch::with_capacity(max.min(sorted.len()));
        let mut bytes = 0u64;
        while out.rows.len() < max {
            let Some(row) = sorted.next() else { break };
            if track {
                bytes += tuple_size_bytes(&row) as u64;
            }
            out.rows.push(row);
        }
        let n = out.rows.len() as u64;
        self.iter_span.work(|t| {
            t.add_tuples(n);
            t.add_bytes(bytes);
        });
        self.iter_span.exit();
        Ok(Some(out))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.child.close(ctx);
        self.build_span.finish(ctx);
        self.iter_span.finish(ctx);
    }
}

// ----------------------------------------------------------------------
// Pipeline construction and driving
// ----------------------------------------------------------------------

/// Build the executable pipeline for a row-producing plan subtree rooted at
/// pre-order node `id` (first child = `id + 1`, second child = `id + 1 +
/// subtree_size(first)` — identical numbering to the OU translator in
/// `mb2-core`). `want_slots` makes scan nodes emit slot provenance for DML.
pub(crate) fn build_pipeline(
    node: &PlanNode,
    id: u32,
    ctx: &ExecContext<'_>,
    want_slots: bool,
) -> DbResult<BoxedOp> {
    let use_compiled = compiled(ctx);
    // A parallelizable leaf chain in a streaming position runs as a
    // ParallelScanOp (morsel-parallel with an ordered gather). DML victim
    // scans stay serial: they need slot provenance paired with rows.
    if !want_slots {
        if let Some(chain) = par_chain(node, id, ctx)? {
            return Ok(Box::new(ParallelScanOp::new(ctx, chain)));
        }
    }
    match node {
        PlanNode::SeqScan { table, filter, .. } => {
            let entry = ctx.catalog.get(table)?;
            // batch_size == 1 is the legacy tuple-at-a-time mode: the
            // predicate runs in a separate operator above the scan so every
            // tuple traverses the full pull chain, as the materializing
            // engine behaved. Larger batches push it into the scan visitor.
            // DML scans always fuse — their filter must keep rows and slots
            // paired.
            let fuse = ctx.batch_size > 1 || want_slots || filter.is_none();
            // DML victim scans need slot provenance, which blocks don't
            // carry — they stay on the row path.
            let columnar = ctx.columnar && !want_slots;
            let scan = Box::new(SeqScanOp {
                table: Arc::clone(&entry.table),
                filter: fuse
                    .then(|| filter.as_ref().map(|f| Evaluator::new(f, use_compiled)))
                    .flatten(),
                filter_ops: filter.as_ref().map_or(0, |f| f.op_count()) as u64,
                want_slots,
                pos: 0,
                done: false,
                scan_span: OpSpan::new(ctx, id, OuKind::SeqScan),
                filter_span: filter
                    .as_ref()
                    .filter(|_| fuse)
                    .map(|_| OpSpan::new(ctx, id, OuKind::ArithmeticFilter)),
                // In legacy unfused mode the predicate runs in the FilterOp
                // above, so the block path must emit unfiltered rows.
                block_pred: columnar
                    .then(|| BlockPredicate::extract(filter.as_ref().filter(|_| fuse))),
                block_span: columnar.then(|| OpSpan::new(ctx, id, OuKind::BlockScan)),
                carry: Vec::new(),
                carry_cursor: 0,
            });
            if fuse {
                return Ok(scan);
            }
            let predicate = filter.as_ref().expect("unfused scan has a filter");
            Ok(Box::new(FilterOp {
                child: scan,
                eval: Evaluator::new(predicate, use_compiled),
                ops_per: predicate.op_count() as u64,
                span: OpSpan::new(ctx, id, OuKind::ArithmeticFilter),
            }))
        }
        PlanNode::IndexScan {
            table,
            index,
            range,
            filter,
            ..
        } => {
            let entry = ctx.catalog.get(table)?;
            let idx = entry
                .index_named(index)
                .ok_or_else(|| DbError::Execution(format!("index '{index}' missing")))?;
            // Same legacy-mode split as SeqScan.
            let fuse = ctx.batch_size > 1 || want_slots || filter.is_none();
            let scan = Box::new(IndexScanOp {
                table: Arc::clone(&entry.table),
                index: idx,
                range: range.clone(),
                filter: fuse
                    .then(|| filter.as_ref().map(|f| Evaluator::new(f, use_compiled)))
                    .flatten(),
                filter_ops: filter.as_ref().map_or(0, |f| f.op_count()) as u64,
                want_slots,
                candidates: None,
                cursor: 0,
                scan_span: OpSpan::new(ctx, id, OuKind::IdxScan),
                filter_span: filter
                    .as_ref()
                    .filter(|_| fuse)
                    .map(|_| OpSpan::new(ctx, id, OuKind::ArithmeticFilter)),
            });
            if fuse {
                return Ok(scan);
            }
            let predicate = filter.as_ref().expect("unfused scan has a filter");
            Ok(Box::new(FilterOp {
                child: scan,
                eval: Evaluator::new(predicate, use_compiled),
                ops_per: predicate.op_count() as u64,
                span: OpSpan::new(ctx, id, OuKind::ArithmeticFilter),
            }))
        }
        PlanNode::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            filter,
            ..
        } => {
            let build_id = id + 1;
            let probe_id = id + 1 + subtree_size(build);
            Ok(Box::new(HashJoinOp {
                build: ParChild::from_plan(build, build_id, ctx)?,
                probe: ParChild::from_plan(probe, probe_id, ctx)?,
                build_keys: Arc::new(build_keys.clone()),
                probe_keys: Arc::new(probe_keys.clone()),
                residual: filter
                    .as_ref()
                    .map(|f| Arc::new(Evaluator::new(f, use_compiled))),
                residual_ops: filter.as_ref().map_or(0, |f| f.op_count()) as u64,
                built: false,
                table: None,
                probe_buf: Vec::new(),
                probe_cursor: 0,
                probe_done: false,
                pending: VecDeque::new(),
                probe_run: None,
                probe_started: false,
                build_span: OpSpan::new(ctx, id, OuKind::JoinHashBuild),
                probe_span: OpSpan::new(ctx, id, OuKind::JoinHashProbe),
                filter_span: filter
                    .as_ref()
                    .map(|_| OpSpan::new(ctx, id, OuKind::ArithmeticFilter)),
            }))
        }
        PlanNode::NestedLoopJoin {
            outer,
            inner,
            filter,
            ..
        } => {
            let outer_id = id + 1;
            let inner_id = id + 1 + subtree_size(outer);
            Ok(Box::new(NestedLoopJoinOp {
                outer: build_pipeline(outer, outer_id, ctx, false)?,
                inner: build_pipeline(inner, inner_id, ctx, false)?,
                eval: filter.as_ref().map(|f| Evaluator::new(f, use_compiled)),
                ops_per: filter.as_ref().map_or(0, |f| f.op_count()) as u64,
                inner_built: false,
                inner_rows: Vec::new(),
                outer_buf: Vec::new(),
                outer_cursor: 0,
                outer_done: false,
                pending: VecDeque::new(),
                span: OpSpan::new(ctx, id, OuKind::ArithmeticFilter),
            }))
        }
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => Ok(Box::new(AggregateOp {
            child: ParChild::from_plan(input, id + 1, ctx)?,
            specs: Arc::new(aggs.clone()),
            group_eval: Arc::new(
                group_by
                    .iter()
                    .map(|g| Evaluator::new(g, use_compiled))
                    .collect(),
            ),
            agg_eval: Arc::new(
                aggs.iter()
                    .map(|a| a.arg.as_ref().map(|e| Evaluator::new(e, use_compiled)))
                    .collect(),
            ),
            n_group_cols: group_by.len(),
            built: false,
            emit: None,
            build_span: OpSpan::new(ctx, id, OuKind::AggBuild),
            probe_span: OpSpan::new(ctx, id, OuKind::AggProbe),
        })),
        PlanNode::Filter {
            input, predicate, ..
        } => Ok(Box::new(FilterOp {
            child: build_pipeline(input, id + 1, ctx, false)?,
            eval: Evaluator::new(predicate, use_compiled),
            ops_per: predicate.op_count() as u64,
            span: OpSpan::new(ctx, id, OuKind::ArithmeticFilter),
        })),
        PlanNode::Sort { input, keys, .. } => Ok(Box::new(SortOp {
            child: build_pipeline(input, id + 1, ctx, false)?,
            evals: keys
                .iter()
                .map(|k| Evaluator::new(&k.expr, use_compiled))
                .collect(),
            keys: keys.clone(),
            sorted: None,
            build_span: OpSpan::new(ctx, id, OuKind::SortBuild),
            iter_span: OpSpan::new(ctx, id, OuKind::SortIter),
        })),
        PlanNode::Project { input, exprs, .. } => Ok(Box::new(ProjectOp {
            child: build_pipeline(input, id + 1, ctx, false)?,
            evals: exprs
                .iter()
                .map(|e| Evaluator::new(e, use_compiled))
                .collect(),
            ops_per: exprs.iter().map(|e| e.op_count() as u64).sum(),
            span: OpSpan::new(ctx, id, OuKind::ArithmeticFilter),
        })),
        PlanNode::Limit { input, n, .. } => Ok(Box::new(LimitOp {
            child: build_pipeline(input, id + 1, ctx, false)?,
            remaining: *n,
        })),
        PlanNode::Output { input, sink, .. } => Ok(Box::new(OutputOp {
            child: build_pipeline(input, id + 1, ctx, false)?,
            sink: *sink,
            span: OpSpan::new(ctx, id, OuKind::OutputResult),
        })),
        other => Err(DbError::Execution(format!(
            "node {} cannot appear in a row-producing position",
            other.label()
        ))),
    }
}

/// Drive a row-producing plan to completion, handing each non-empty batch to
/// `on_batch`. Returns the number of rows streamed. Spans are closed (and
/// recorded) before returning, including when a LIMIT cut execution short.
pub(crate) fn run_query(
    plan: &PlanNode,
    ctx: &mut ExecContext<'_>,
    on_batch: &mut dyn FnMut(Batch) -> DbResult<()>,
) -> DbResult<usize> {
    let mut root = build_pipeline(plan, 0, ctx, false)?;
    let batch_size = ctx.batch_size.max(1);
    let mut n = 0usize;
    while let Some(batch) = root.next_batch(ctx, batch_size)? {
        if !batch.rows.is_empty() {
            n += batch.rows.len();
            on_batch(batch)?;
        }
    }
    root.close(ctx);
    Ok(n)
}

/// Drive a DML victim scan, collecting rows with their slots. The scan must
/// be a table-scan node (enforced by the caller).
pub(crate) fn run_scan_with_slots(
    scan: &PlanNode,
    ctx: &mut ExecContext<'_>,
    id: u32,
) -> DbResult<(Vec<Arc<Tuple>>, Vec<SlotId>)> {
    let mut op = build_pipeline(scan, id, ctx, true)?;
    let batch_size = ctx.batch_size.max(1);
    let mut rows = Vec::new();
    let mut slots = Vec::new();
    while let Some(mut batch) = op.next_batch(ctx, batch_size)? {
        rows.append(&mut batch.rows);
        slots.append(&mut batch.slots);
    }
    op.close(ctx);
    Ok((rows, slots))
}

/// Unwrap a shared row for handoff to the client, cloning only if the MVCC
/// store still holds a reference.
pub fn into_owned(row: Arc<Tuple>) -> Tuple {
    Arc::try_unwrap(row).unwrap_or_else(|shared| (*shared).clone())
}
