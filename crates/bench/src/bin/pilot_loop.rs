//! Autopilot control loop; see `mb2_bench::experiments::pilot_loop`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::pilot_loop::run(scale);
    mb2_bench::report::emit("pilot_loop", &report);
}
