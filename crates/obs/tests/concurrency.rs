//! Concurrency stress: many threads hammering the same handles must never
//! lose an update, and a scrape racing the writers must see sane values.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mb2_obs::MetricsRegistry;

#[test]
fn one_counter_many_threads_loses_nothing() {
    const THREADS: usize = 16;
    const PER_THREAD: u64 = 50_000;

    let registry = MetricsRegistry::shared();
    let counter = registry.counter("mb2_stress_total", "Stress counter.");

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let c = counter.clone();
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn histogram_under_concurrent_recording() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;

    let registry = MetricsRegistry::shared();
    let hist = registry.histogram("mb2_stress_us", "Stress histogram.");

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = hist.clone();
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // A spread of magnitudes so many buckets are hit.
                    h.record((i % 1000) * (t + 1));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let snap = hist.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.counts.iter().sum::<u64>(), THREADS * PER_THREAD);
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, 999 * THREADS);
}

#[test]
fn scrape_races_with_writers() {
    let registry = MetricsRegistry::shared();
    let counter = registry.counter("mb2_race_total", "Raced counter.");
    let hist = registry.histogram("mb2_race_us", "Raced histogram.");
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..4)
        .map(|_| {
            let c = counter.clone();
            let h = hist.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    c.inc();
                    h.record(n % 4096);
                    n += 1;
                }
                n
            })
        })
        .collect();

    // Under racing writers a scrape can't promise a consistent cut, but it
    // must always render and counter reads must be monotone.
    let mut last_count = 0u64;
    for _ in 0..50 {
        let text = registry.prometheus_text();
        assert!(text.contains("mb2_race_total"));
        let c = counter.get();
        assert!(
            c >= last_count,
            "counter went backwards: {c} < {last_count}"
        );
        last_count = c;
    }

    stop.store(true, Ordering::Relaxed);
    let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(counter.get(), total);
    assert_eq!(hist.count(), total);
}

#[test]
fn registration_races_return_one_handle() {
    let registry = MetricsRegistry::shared();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let r = registry.clone();
            std::thread::spawn(move || {
                let c = r.counter("mb2_reg_race_total", "Registered from many threads.");
                c.inc();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(registry.len(), 1);
    assert_eq!(
        registry
            .counter("mb2_reg_race_total", "Registered from many threads.")
            .get(),
        8
    );
}
