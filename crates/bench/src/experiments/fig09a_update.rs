//! Fig. 9a — Model adaptation under DBMS software updates.
//!
//! The paper simulates incremental changes to the join-hash-table build by
//! injecting 1µs stalls every 100 / every 1000 inserted tuples / never.
//! Because OUs are independent, only the join-hash-build OU's runner is
//! re-run and only its model retrained — this experiment verifies the
//! updated models recover accuracy and reports the restricted-retraining
//! speedup (paper: 24× faster than full retraining).

use std::time::Instant;

use mb2_common::OuKind;
use mb2_core::collect::TrainingRepo;
use mb2_core::runners::execution::run_join_runner;
use mb2_core::training::{train_all, train_ou};
use mb2_core::BehaviorModels;
use mb2_engine::Database;
use mb2_workloads::tpch::Tpch;
use mb2_workloads::Workload;

use crate::pipeline::{build_ou_models, measure_latency_us, PipelineConfig};
use crate::report::{fmt, Table};
use crate::Scale;

/// The sleep-injection variants: (label, jht_sleep_every).
// The paper injects 1µs per 100/1000 inserted tuples on million-row hash
// tables; our builds are thousands of rows, so the injection frequencies
// scale down accordingly (1µs per 2 / per 20 tuples) to keep the induced
// slowdown fraction comparable.
const VARIANTS: [(&str, usize); 3] = [("1/2 sleep", 2), ("1/20 sleep", 20), ("no sleep", 0)];

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Fig. 9a — model adaptation to DBMS updates (JHT sleep injection)\n\n");

    // Full training under the slowest variant (1/100 sleep).
    let mut cfg = PipelineConfig::for_scale(scale);
    cfg.exec.jht_sleep_every = 2;
    let full_started = Instant::now();
    let built = build_ou_models(&cfg).expect("pipeline");
    let full_time = full_started.elapsed();

    // For each later variant, rerun only the join runner and retrain only
    // the join-hash-build OU. Only that restricted work is timed; the rest
    // of the model set is identical (OUs are independent, §7).
    let mut model_sets = Vec::new();
    let base_set = train_all(&built.repo, &cfg.training).expect("train").0;
    model_sets.push(("1/2 model", BehaviorModels::new(base_set, None), full_time));
    for (label, sleep) in [("1/20 model", 20usize), ("no sleep model", 0)] {
        let mut join_cfg = cfg.exec.clone();
        join_cfg.jht_sleep_every = sleep;
        // Restricted retraining: join runner + one OU-model.
        let t0 = Instant::now();
        let join_repo = run_join_runner(&join_cfg).expect("join runner");
        let mut patched = TrainingRepo::new();
        for s in join_repo.samples(OuKind::JoinHashBuild) {
            patched.add(s.clone());
        }
        let join_model =
            train_ou(&patched, OuKind::JoinHashBuild, &cfg.training).expect("join model");
        let retrain_time = t0.elapsed();
        // Assemble the full set around the new join model (untimed; these
        // models are unchanged and would be reused in a real deployment).
        let mut set = train_all(&built.repo, &cfg.training).expect("train").0;
        set.insert(join_model);
        model_sets.push((label, BehaviorModels::new(set, None), retrain_time));
    }

    // Evaluate each model variant against each system state on TPC-H's
    // join-heavy queries.
    let tpch = Tpch::with_scale(scale.pick(0.05, 0.5));
    let db = Database::open();
    tpch.load(&db).expect("tpch");
    let join_queries = ["q3", "q5", "q10", "q12", "q14"];
    let reps = scale.pick(3, 5);

    let mut table = Table::new(
        "avg relative error on TPC-H join queries (rows: system state; cols: model)",
        &["system state", "1/2 model", "1/20 model", "no sleep model"],
    );
    for (state_label, sleep) in VARIANTS {
        db.set_jht_sleep_every(sleep);
        let mut errs = vec![0.0; model_sets.len()];
        let mut n = 0;
        let mut rng = mb2_common::Prng::new(41);
        for template in join_queries {
            let sql = tpch.query(template, &mut rng);
            let plan = db.prepare(&sql).expect("plan");
            let actual = measure_latency_us(&db, &plan, reps).max(1.0);
            for (e, (_, models, _)) in errs.iter_mut().zip(&model_sets) {
                let pred = models.predict_query_elapsed_us(&plan, &db.knobs());
                *e += (actual - pred).abs() / actual;
            }
            n += 1;
        }
        table.row(&[
            state_label.to_string(),
            fmt(errs[0] / n as f64),
            fmt(errs[1] / n as f64),
            fmt(errs[2] / n as f64),
        ]);
    }
    out.push_str(&table.render());

    let mut times = Table::new("retraining cost", &["model", "time", "speedup vs full"]);
    for (label, _, t) in &model_sets {
        times.row(&[
            label.to_string(),
            format!("{t:.1?}"),
            format!(
                "{:.1}x",
                full_time.as_secs_f64() / t.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    out.push('\n');
    out.push_str(&times.render());
    out.push_str(
        "\nExpected shape (paper Fig. 9a): each model variant predicts its own \
         system state well and older states poorly; restricted retraining of \
         the one affected OU is an order of magnitude cheaper than the full \
         pipeline.\n",
    );
    out
}
