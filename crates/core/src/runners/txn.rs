//! Runner for the Transaction Begin / Commit contending OUs.
//!
//! These OUs serialize on the transaction manager's shared active-set, so
//! their cost depends on the transaction arrival rate and the number of
//! concurrent workers — exactly the two features Table 1 assigns them. The
//! runner sweeps both and measures per-invocation latencies directly.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mb2_common::metrics::idx;
use mb2_common::{DbResult, Metrics, OuKind};
use mb2_engine::{Database, DatabaseConfig};

use crate::collect::{OuSample, TrainingRepo};
use crate::translate::OuTranslator;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct TxnRunnerConfig {
    /// Worker-thread counts to sweep.
    pub thread_counts: Vec<usize>,
    /// Transactions per worker per configuration.
    pub txns_per_worker: usize,
    /// Inter-transaction pacing values (µs of sleep; 0 = max rate).
    pub pacing_us: Vec<u64>,
}

impl Default for TxnRunnerConfig {
    fn default() -> Self {
        TxnRunnerConfig {
            thread_counts: vec![1, 2, 4, 8],
            txns_per_worker: 400,
            pacing_us: vec![0, 50, 200],
        }
    }
}

impl TxnRunnerConfig {
    pub fn smoke() -> TxnRunnerConfig {
        TxnRunnerConfig {
            thread_counts: vec![1, 2],
            txns_per_worker: 50,
            pacing_us: vec![0],
        }
    }
}

/// Run the sweep; produces TxnBegin and TxnCommit samples.
pub fn run_txn_runner(cfg: &TxnRunnerConfig) -> DbResult<TrainingRepo> {
    let mut repo = TrainingRepo::new();
    let translator = OuTranslator::default();
    for &threads in &cfg.thread_counts {
        for &pacing in &cfg.pacing_us {
            let db = Arc::new(Database::new(DatabaseConfig {
                wal_enabled: false,
                ..DatabaseConfig::bench()
            })?);
            db.execute("CREATE TABLE txn_t (a INT)")?;
            db.execute("INSERT INTO txn_t VALUES (0)")?;

            let window = Instant::now();
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let db = db.clone();
                    let n = cfg.txns_per_worker;
                    std::thread::spawn(move || {
                        let mut begin_us = Vec::with_capacity(n);
                        let mut commit_us = Vec::with_capacity(n);
                        for i in 0..n {
                            let t0 = Instant::now();
                            let mut txn = db.begin();
                            begin_us.push(t0.elapsed().as_nanos() as f64 / 1000.0);
                            // Minimal work so commit has something to stamp.
                            let _ = db.execute_in(
                                &format!("INSERT INTO txn_t VALUES ({i})"),
                                &mut txn,
                                None,
                            );
                            let t1 = Instant::now();
                            let _ = txn.commit();
                            commit_us.push(t1.elapsed().as_nanos() as f64 / 1000.0);
                            if pacing > 0 {
                                std::thread::sleep(Duration::from_micros(pacing));
                            }
                        }
                        (begin_us, commit_us)
                    })
                })
                .collect();
            let mut begin_all = Vec::new();
            let mut commit_all = Vec::new();
            for h in handles {
                let (b, c) = h.join().expect("txn worker");
                begin_all.extend(b);
                commit_all.extend(c);
            }
            let elapsed_s = window.elapsed().as_secs_f64().max(1e-6);
            let total_txns = (threads * cfg.txns_per_worker) as f64;
            let rate = total_txns / elapsed_s;
            let knobs = db.knobs();

            // Aggregate with the robust trimmed mean per chunk of
            // invocations, emitting several samples per configuration
            // (features: arrival rate, concurrent workers).
            for (ou, lat) in [
                (OuKind::TxnBegin, &begin_all),
                (OuKind::TxnCommit, &commit_all),
            ] {
                let chunk = (lat.len() / 4).max(10).min(lat.len());
                for group in lat.chunks(chunk) {
                    if group.len() < 5 {
                        continue;
                    }
                    let inst = translator.txn_features(ou, rate, threads as f64, &knobs);
                    let mut labels = Metrics::ZERO;
                    let mean = mb2_common::stats::trimmed_mean(group, 0.2);
                    labels[idx::ELAPSED_US] = mean;
                    labels[idx::CPU_US] = mean;
                    labels[idx::CYCLES] = mean * 1000.0 * knobs.hw.cpu_freq_ghz;
                    labels[idx::INSTRUCTIONS] = 200.0 + 50.0 * threads as f64;
                    labels[idx::CACHE_REFS] = 20.0;
                    labels[idx::CACHE_MISSES] = threads as f64;
                    labels[idx::MEMORY_BYTES] = 128.0;
                    repo.add(OuSample {
                        ou,
                        features: inst.features,
                        labels,
                    });
                }
            }
        }
    }
    Ok(repo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_both_txn_ous() {
        let repo = run_txn_runner(&TxnRunnerConfig::smoke()).unwrap();
        assert!(repo.count(OuKind::TxnBegin) >= 2);
        assert!(repo.count(OuKind::TxnCommit) >= 2);
        for s in repo.samples(OuKind::TxnBegin) {
            assert_eq!(s.features.len(), 3);
            assert!(s.features[0] > 0.0, "arrival rate recorded");
            assert!(s.labels.elapsed_us() >= 0.0);
        }
    }
}
