//! Database configuration and runtime-tunable knobs.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use mb2_common::{FaultInjector, HardwareProfile};
use mb2_exec::ExecutionMode;
use mb2_obs::MetricsRegistry;

/// Startup configuration.
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Enable write-ahead logging.
    pub wal_enabled: bool,
    /// WAL file path (`None` = byte-counting sink).
    pub wal_path: Option<PathBuf>,
    /// Run the WAL flusher on a background thread.
    pub wal_background: bool,
    /// fsync the log file after each flush (real durability; off by default
    /// so OU measurements see OS-buffered latencies).
    pub wal_fsync: bool,
    /// Flush (and, with `wal_fsync`, sync) the log at every commit before
    /// the transaction's writes become visible. Foreground WAL mode only.
    pub wal_sync_commit: bool,
    /// Retries for a failed WAL flush before the log is poisoned and the
    /// engine degrades to read-only.
    pub wal_flush_retries: u32,
    /// Base backoff between WAL flush retries (doubles per attempt).
    pub wal_retry_backoff: Duration,
    /// Deterministic fault injection for durability and chaos tests,
    /// threaded through every subsystem with seeded fault points (WAL,
    /// storage segment allocation, commit critical section, GC cycles);
    /// `None` in production.
    pub faults: Option<Arc<FaultInjector>>,
    /// Run the garbage collector on a background thread at this interval.
    pub gc_interval: Option<Duration>,
    /// Run the columnar compactor on a background thread at this interval,
    /// sealing frozen shard units into column-major blocks. `None` leaves
    /// compaction to explicit [`crate::Database::compact_now`] calls.
    pub compaction_interval: Option<Duration>,
    /// Metrics registry every subsystem publishes into. `None` creates a
    /// fresh registry per database; pass a shared one to scrape several
    /// databases (or external components) together.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Initial state of the registry's enable switch (span timing). Counters
    /// stay live either way; see `MetricsRegistry::set_enabled`.
    pub metrics_enabled: bool,
    /// Initial knob values.
    pub knobs: Knobs,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            wal_enabled: true,
            wal_path: None,
            wal_background: false,
            wal_fsync: false,
            wal_sync_commit: false,
            wal_flush_retries: 3,
            wal_retry_backoff: Duration::from_millis(1),
            faults: None,
            gc_interval: None,
            compaction_interval: None,
            metrics: None,
            metrics_enabled: true,
            knobs: Knobs::default(),
        }
    }
}

impl DatabaseConfig {
    /// Lean configuration for tests and OU-runners: no WAL thread, no GC
    /// thread, compiled execution.
    pub fn bench() -> DatabaseConfig {
        DatabaseConfig::default()
    }
}

/// Runtime-tunable behavior and resource knobs (paper §4.2). Behavior knobs
/// are appended to the affected OUs' model features by the translator.
#[derive(Debug, Clone, Copy)]
pub struct Knobs {
    /// Execution-mode behavior knob.
    pub execution_mode: ExecutionMode,
    /// WAL flush interval behavior knob (feature of the Log Flush OU).
    pub wal_flush_interval: Duration,
    /// Emulated hardware context (paper §8.6).
    pub hw: HardwareProfile,
    /// Fig. 9a software-update emulation: spin 1µs per this many join-hash
    /// -table inserts (0 = off).
    pub jht_sleep_every: usize,
    /// Rows per batch in the pull-based execution pipeline. `1` reproduces
    /// the legacy tuple-at-a-time engine (every tuple traverses the full
    /// pull chain; scan predicates evaluate in a separate operator above
    /// the scan); sizes ≥ 2 run vectorized with predicate pushdown into
    /// the scan. Per-OU work features are identical either way. Clamped to
    /// at least 1.
    pub batch_size: usize,
    /// Workers in the shared intra-query execution pool. `1` (serial) skips
    /// the pool entirely — today's single-thread pipeline. Sizes ≥ 2 run
    /// base-table scans (and the hash-join/aggregation breakers above them)
    /// morsel-parallel; results stay byte-identical to serial execution.
    /// Defaults to the number of available cores. Clamped to at least 1.
    pub parallelism: usize,
    /// Hash-shard count for newly created tables. Each shard owns its own
    /// chain blocks, slot counters, and GC pass, and the commit lock is
    /// striped by shard footprint — so single-shard commits on different
    /// shards stamp in parallel. `1` reproduces the flat single-shard
    /// layout byte-for-byte. Slot assignment and scan order are independent
    /// of the shard count, so WAL images and query results never change
    /// with it. Defaults to the number of available cores. Clamped to at
    /// least 1; applies to tables created (or re-created by recovery) after
    /// the knob is set.
    pub shard_count: usize,
    /// Columnar-scan behavior knob: when on, sequential scans serve clean
    /// sealed shard units from their column-major blocks (vectorized range
    /// predicates, zone-map skipping, late materialization — the Block/Scan
    /// OU) instead of walking version chains. Row output is byte-identical
    /// either way; dirty or unsealed units always fall back to the row path.
    pub columnar_enabled: bool,
}

/// Worker-count default for [`Knobs::parallelism`]: every available core.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            execution_mode: ExecutionMode::Compiled,
            wal_flush_interval: Duration::from_millis(10),
            hw: HardwareProfile::default(),
            jht_sleep_every: 0,
            batch_size: mb2_exec::DEFAULT_BATCH_SIZE,
            parallelism: default_parallelism(),
            shard_count: default_parallelism(),
            columnar_enabled: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = DatabaseConfig::default();
        assert!(c.wal_enabled);
        assert!(c.gc_interval.is_none());
        assert_eq!(c.knobs.execution_mode, ExecutionMode::Compiled);
        assert_eq!(c.knobs.jht_sleep_every, 0);
        assert_eq!(c.knobs.batch_size, mb2_exec::DEFAULT_BATCH_SIZE);
        assert_eq!(c.knobs.parallelism, default_parallelism());
        assert!(c.knobs.parallelism >= 1);
        assert_eq!(c.knobs.shard_count, default_parallelism());
        assert!(c.knobs.shard_count >= 1);
        assert!(c.compaction_interval.is_none());
        assert!(!c.knobs.columnar_enabled);
    }
}
