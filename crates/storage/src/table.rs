//! Partitioned, segmented table heap.
//!
//! A table is an append-only array of slots organized into N independent
//! **shards** (fixed at creation, 1 by default). Slots are assigned to
//! shards by interleaving fixed-size units of [`SHARD_UNIT_SLOTS`] global
//! slot indices, so even small tables spread across shards while the
//! *global slot order* — the order scans visit and the order `SlotId`s
//! encode — is identical at every shard count. Each shard owns its own
//! chain storage (blocks of version-chain mutexes), its own block
//! allocator, and its own live/version/GC counters, so inserts, commits,
//! and GC passes on different shards never contend on shared storage
//! state.
//!
//! `SlotId` (segment + offset) and the WAL slot encoding are unchanged:
//! the shard of a slot is *derived* (`shard_of`), never stored, which is
//! what lets a WAL written at one shard count recover into any other.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use mb2_common::types::Tuple;
use mb2_common::{fault, DbError, DbResult, FaultInjector, Schema};

use crate::block::SealedBlock;
use crate::ts::Ts;
use crate::version::{FrozenState, VersionChain};

/// Identifies a table within the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Physical tuple address: segment index + offset within the segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId {
    pub segment: u32,
    pub offset: u32,
}

/// Number of slots per addressing segment (the `SlotId` coordinate system
/// and the WAL slot encoding; unchanged by sharding).
pub const SEGMENT_SIZE: usize = 4096;

/// Slots per shard-interleaving unit: global slot indices
/// `[k·U, (k+1)·U)` all live on shard `k mod shard_count`. Small enough
/// that a table of a few thousand rows already spreads across every
/// shard, large enough that a default 2048-slot morsel touches at most a
/// handful of shards and shard-affine workers stay cache-local.
pub const SHARD_UNIT_SLOTS: usize = 512;

/// One shard-local block of version chains ([`SHARD_UNIT_SLOTS`] slots).
struct Block {
    chains: Vec<Mutex<VersionChain>>,
}

impl Block {
    fn new() -> Block {
        let mut chains = Vec::with_capacity(SHARD_UNIT_SLOTS);
        chains.resize_with(SHARD_UNIT_SLOTS, || Mutex::new(VersionChain::default()));
        Block { chains }
    }
}

/// Point-in-time statistics for one shard (feeds `SHOW SHARDS` and the
/// per-shard `mb2_storage_*` metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    pub shard: usize,
    /// Slots allocated on this shard (derived from the global tail).
    pub slots: usize,
    /// Approximate live (committed, non-deleted) tuples.
    pub live_tuples: usize,
    /// Approximate versions (live + garbage) across the shard's chains.
    pub versions: usize,
    /// Versions pruned by per-shard GC passes over the shard's lifetime.
    pub gc_pruned: u64,
    /// Watermark of the most recent GC pass over this shard (0 = never).
    pub last_gc_watermark: u64,
}

/// Per-shard block-store statistics (feeds `SHOW BLOCKS` and the
/// `mb2_block_*` metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockShardStats {
    pub shard: usize,
    /// Sealed blocks currently published on this shard.
    pub blocks: usize,
    /// Sealed blocks a post-seal writer has dirtied (row path until
    /// compaction re-seals them).
    pub dirty_blocks: usize,
    /// Live rows served from sealed blocks.
    pub sealed_tuples: usize,
    /// Cumulative version-chain versions evicted by seal passes.
    pub versions_evicted: u64,
    /// Cumulative units a block scan skipped outright via zone maps.
    pub zone_skips: u64,
}

/// What one compaction pass over a shard accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactReport {
    /// Units sealed or re-sealed this pass.
    pub units_sealed: usize,
    /// Live rows in the blocks published this pass.
    pub tuples_sealed: usize,
    /// Version-chain versions evicted this pass.
    pub versions_evicted: usize,
}

impl CompactReport {
    pub fn absorb(&mut self, other: CompactReport) {
        self.units_sealed += other.units_sealed;
        self.tuples_sealed += other.tuples_sealed;
        self.versions_evicted += other.versions_evicted;
    }
}

/// One independent partition of the heap: chain storage, its allocator,
/// and its counters.
struct Shard {
    blocks: RwLock<Vec<Arc<Block>>>,
    /// Sealed columnar blocks, indexed like `blocks` (shard-local unit
    /// index). `None` = the unit has not been sealed. Published blocks are
    /// immutable snapshots; a slot's version chain, when non-empty, is
    /// always authoritative over the block.
    sealed: RwLock<Vec<Option<Arc<SealedBlock>>>>,
    /// Serializes seal passes over this shard (GC and writers never take
    /// it; they synchronize with sealing via the chain locks).
    seal_lock: Mutex<()>,
    /// Approximate live-tuple count for this shard.
    live_tuples: AtomicUsize,
    /// Approximate version count (live + garbage) for this shard.
    version_count: AtomicUsize,
    /// Cumulative versions reclaimed by GC passes over this shard.
    gc_pruned: AtomicU64,
    /// Watermark used by the most recent GC pass over this shard.
    last_gc_watermark: AtomicU64,
    /// Cumulative versions evicted from chains by seal passes.
    versions_evicted: AtomicU64,
    /// Cumulative units skipped by block-scan zone maps.
    zone_skips: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            blocks: RwLock::new(Vec::new()),
            sealed: RwLock::new(Vec::new()),
            seal_lock: Mutex::new(()),
            live_tuples: AtomicUsize::new(0),
            version_count: AtomicUsize::new(0),
            gc_pruned: AtomicU64::new(0),
            last_gc_watermark: AtomicU64::new(0),
            versions_evicted: AtomicU64::new(0),
            zone_skips: AtomicU64::new(0),
        }
    }
}

/// A table heap with MVCC slots, partitioned into hash shards.
///
/// [`Table`] is an alias for this type; `PartitionedTable::new` builds a
/// single-shard table that behaves byte-for-byte like the pre-partition
/// layout, and [`PartitionedTable::with_shards`] spreads the heap over N
/// shards with identical externally observable behavior (slot ids, scan
/// order, visibility) at any N.
pub struct PartitionedTable {
    pub id: TableId,
    pub name: String,
    schema: Schema,
    shards: Vec<Shard>,
    /// Total slots ever allocated (global tail pointer). Global allocation
    /// order is the scan order, so it is shared across shards; the
    /// per-shard work — chain storage growth, chain access — is not.
    next_slot: AtomicUsize,
    /// Fault injection for chaos tests (`storage.segment_alloc` point,
    /// consulted when a shard's block directory grows); `None` in
    /// production.
    faults: RwLock<Option<Arc<FaultInjector>>>,
}

/// The storage layer's table type. See [`PartitionedTable`].
pub type Table = PartitionedTable;

impl PartitionedTable {
    /// A single-shard table: the pre-partition flat layout.
    pub fn new(id: TableId, name: impl Into<String>, schema: Schema) -> PartitionedTable {
        PartitionedTable::with_shards(id, name, schema, 1)
    }

    /// A table partitioned into `shard_count` independent shards (clamped
    /// to at least 1). The shard count is fixed for the table's lifetime.
    pub fn with_shards(
        id: TableId,
        name: impl Into<String>,
        schema: Schema,
        shard_count: usize,
    ) -> PartitionedTable {
        let shard_count = shard_count.max(1);
        let mut shards = Vec::with_capacity(shard_count);
        shards.resize_with(shard_count, Shard::new);
        PartitionedTable {
            id,
            name: name.into(),
            schema,
            shards,
            next_slot: AtomicUsize::new(0),
            faults: RwLock::new(None),
        }
    }

    /// Attach (or detach) a fault injector consulted when a shard's block
    /// directory grows.
    pub fn set_faults(&self, faults: Option<Arc<FaultInjector>>) {
        *self.faults.write() = faults;
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of shards this heap is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning global slot index `idx`.
    #[inline]
    pub fn shard_of_index(&self, idx: usize) -> usize {
        (idx / SHARD_UNIT_SLOTS) % self.shards.len()
    }

    /// The shard owning `slot`.
    #[inline]
    pub fn shard_of(&self, slot: SlotId) -> usize {
        self.shard_of_index(Self::global_index(slot))
    }

    #[inline]
    fn global_index(slot: SlotId) -> usize {
        slot.segment as usize * SEGMENT_SIZE + slot.offset as usize
    }

    /// Number of slots allocated so far (upper bound on tuple count).
    pub fn num_slots(&self) -> usize {
        self.next_slot.load(Ordering::Acquire)
    }

    /// Approximate live tuple count (used by the optimizer's statistics).
    pub fn live_tuples(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.live_tuples.load(Ordering::Relaxed))
            .sum()
    }

    /// Approximate number of versions (live + garbage) across the heap.
    pub fn version_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.version_count.load(Ordering::Relaxed))
            .sum()
    }

    /// Slots allocated on shard `s`, derived from the global tail: shard
    /// `s` owns every full unit `u` with `u mod N = s` plus the tail
    /// fragment if it falls on `s`.
    fn shard_slots(&self, s: usize, total: usize) -> usize {
        let n = self.shards.len();
        let full_units = total / SHARD_UNIT_SLOTS;
        let rem = total % SHARD_UNIT_SLOTS;
        let mut slots = (full_units / n) * SHARD_UNIT_SLOTS;
        if full_units % n > s {
            slots += SHARD_UNIT_SLOTS;
        }
        if full_units % n == s && rem > 0 {
            slots += rem;
        }
        slots
    }

    /// Point-in-time per-shard statistics, one entry per shard in order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let total = self.num_slots();
        self.shards
            .iter()
            .enumerate()
            .map(|(s, shard)| ShardStats {
                shard: s,
                slots: self.shard_slots(s, total),
                live_tuples: shard.live_tuples.load(Ordering::Relaxed),
                versions: shard.version_count.load(Ordering::Relaxed),
                gc_pruned: shard.gc_pruned.load(Ordering::Relaxed),
                last_gc_watermark: shard.last_gc_watermark.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Resolve `slot` to its chain, or `None` for an address outside the
    /// heap. Out-of-range slots are a client-reachable condition (a stale
    /// `SlotId` held across DDL, a corrupted index entry), so the accessors
    /// built on this return errors instead of panicking — one bad request
    /// must not take down a server worker.
    fn try_chain<R>(&self, slot: SlotId, f: impl FnOnce(&mut VersionChain) -> R) -> Option<R> {
        if slot.offset as usize >= SEGMENT_SIZE {
            return None;
        }
        let idx = Self::global_index(slot);
        let unit = idx / SHARD_UNIT_SLOTS;
        let n = self.shards.len();
        let block = self.shards[unit % n].blocks.read().get(unit / n).cloned()?;
        let mut chain = block.chains[idx % SHARD_UNIT_SLOTS].lock();
        Some(f(&mut chain))
    }

    fn chain<R>(&self, slot: SlotId, f: impl FnOnce(&mut VersionChain) -> R) -> DbResult<R> {
        self.try_chain(slot, f).ok_or_else(|| {
            DbError::Storage(format!(
                "slot ({}, {}) is outside table '{}' ({} slots)",
                slot.segment,
                slot.offset,
                self.name,
                self.num_slots()
            ))
        })
    }

    /// Validate a tuple against the schema (arity; types are permissive with
    /// NULL allowed everywhere).
    fn check_tuple(&self, tuple: &Tuple) -> DbResult<()> {
        if tuple.len() != self.schema.len() {
            return Err(DbError::Storage(format!(
                "tuple arity {} does not match schema arity {} for table '{}'",
                tuple.len(),
                self.schema.len(),
                self.name
            )));
        }
        Ok(())
    }

    /// Insert a tuple as an uncommitted version owned by `txn`.
    pub fn insert(&self, tuple: Tuple, txn: Ts) -> DbResult<SlotId> {
        self.check_tuple(&tuple)?;
        let idx = self.next_slot.fetch_add(1, Ordering::AcqRel);
        let unit = idx / SHARD_UNIT_SLOTS;
        let n = self.shards.len();
        let shard = &self.shards[unit % n];
        let need = unit / n + 1;
        {
            // Grow this shard's block directory if needed.
            if need > shard.blocks.read().len() {
                if let Some(inj) = self.faults.read().clone() {
                    if let Some(msg) = inj.check(fault::points::STORAGE_SEGMENT_ALLOC) {
                        // The reserved slot index stays a hole: no chain is
                        // ever installed, so scans skip it like any other
                        // never-written slot.
                        return Err(DbError::Storage(msg));
                    }
                }
                let mut blocks = shard.blocks.write();
                while blocks.len() < need {
                    blocks.push(Arc::new(Block::new()));
                }
            }
        }
        let slot = SlotId {
            segment: (idx / SEGMENT_SIZE) as u32,
            offset: (idx % SEGMENT_SIZE) as u32,
        };
        self.chain(slot, |c| {
            *c = VersionChain::new_insert(tuple, txn);
        })?;
        shard.version_count.fetch_add(1, Ordering::Relaxed);
        Ok(slot)
    }

    /// Read the version of `slot` visible at `read_ts` to transaction `own`.
    /// Out-of-range slots read as absent, like any other invisible tuple.
    /// An empty chain falls back to the slot's sealed block (still under
    /// the chain lock: blocks are published before chains are cleared, so
    /// "empty chain → block is the truth" holds under that lock).
    pub fn read(&self, slot: SlotId, read_ts: Ts, own: Ts) -> Option<Arc<Tuple>> {
        self.try_chain(slot, |c| {
            if let Some(data) = c.visible(read_ts, own) {
                return Some(Arc::clone(data));
            }
            if c.is_empty() {
                let idx = Self::global_index(slot);
                return self
                    .sealed_unit(idx / SHARD_UNIT_SLOTS)
                    .and_then(|b| b.row_visible(idx % SHARD_UNIT_SLOTS, read_ts).cloned());
            }
            None
        })
        .flatten()
    }

    /// Under the slot's chain lock: if the slot's unit is sealed and the
    /// block holds a live row for it, copy the row back into the chain with
    /// its original commit timestamp and mark the block dirty so scans take
    /// the row path for this unit until compaction re-seals it. The dirty
    /// store happens before the caller's `install` returns — and therefore
    /// before the writer's commit timestamp can be drawn — which is what
    /// makes the block scan's once-per-unit dirty check sound.
    fn revive_from_block(&self, slot: SlotId, chain: &mut VersionChain) -> bool {
        let idx = Self::global_index(slot);
        let Some(block) = self.sealed_unit(idx / SHARD_UNIT_SLOTS) else {
            return false;
        };
        if let Some((row, ts)) = block.row(idx % SHARD_UNIT_SLOTS) {
            chain.revive(Arc::clone(row), ts);
            block.mark_dirty();
            true
        } else {
            false
        }
    }

    /// Update `slot`, installing a new uncommitted version. Returns the old
    /// data for undo logging.
    pub fn update(&self, slot: SlotId, tuple: Tuple, txn: Ts, read_ts: Ts) -> DbResult<Arc<Tuple>> {
        self.check_tuple(&tuple)?;
        let mut revived = false;
        let res = self.chain(slot, |c| {
            if c.is_empty() {
                revived = self.revive_from_block(slot, c);
            }
            c.install(Some(tuple), txn, read_ts)
        })?;
        let shard = &self.shards[self.shard_of(slot)];
        if revived {
            shard.version_count.fetch_add(1, Ordering::Relaxed);
        }
        let old = res.map_err(|e| self.annotate(e))?;
        shard.version_count.fetch_add(1, Ordering::Relaxed);
        old.ok_or_else(|| DbError::Storage("update produced no prior version".into()))
    }

    /// Delete `slot` (install a tombstone). Returns the old data.
    pub fn delete(&self, slot: SlotId, txn: Ts, read_ts: Ts) -> DbResult<Arc<Tuple>> {
        let mut revived = false;
        let res = self.chain(slot, |c| {
            if c.is_empty() {
                revived = self.revive_from_block(slot, c);
            }
            c.install(None, txn, read_ts)
        })?;
        let shard = &self.shards[self.shard_of(slot)];
        if revived {
            shard.version_count.fetch_add(1, Ordering::Relaxed);
        }
        let old = res.map_err(|e| self.annotate(e))?;
        shard.version_count.fetch_add(1, Ordering::Relaxed);
        old.ok_or_else(|| DbError::Storage("delete of already-deleted tuple".into()))
    }

    fn annotate(&self, e: DbError) -> DbError {
        match e {
            DbError::WriteConflict { .. } => DbError::WriteConflict {
                table: self.name.clone(),
            },
            other => other,
        }
    }

    /// Stamp the uncommitted version of `txn` at `slot` with `commit_ts`.
    /// `delta_live` is +1 for inserts, -1 for deletes, 0 for updates.
    pub fn commit_slot(&self, slot: SlotId, txn: Ts, commit_ts: Ts, delta_live: i64) {
        // Slots in a commit/abort write set were produced by this table's
        // `insert`, so they are always in range; tolerate rather than panic.
        let _ = self.try_chain(slot, |c| c.commit(txn, commit_ts));
        let shard = &self.shards[self.shard_of(slot)];
        if delta_live > 0 {
            shard
                .live_tuples
                .fetch_add(delta_live as usize, Ordering::Relaxed);
        } else if delta_live < 0 {
            let d = (-delta_live) as usize;
            let mut cur = shard.live_tuples.load(Ordering::Relaxed);
            while cur > 0 {
                match shard.live_tuples.compare_exchange_weak(
                    cur,
                    cur.saturating_sub(d),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Roll back `txn`'s uncommitted version at `slot`.
    pub fn abort_slot(&self, slot: SlotId, txn: Ts) {
        if self
            .try_chain(slot, |c| {
                c.abort(txn);
            })
            .is_none()
        {
            return; // out-of-range slot: nothing to roll back
        }
        // Saturating for the same reason as `gc`: the gauge is advisory and
        // must never wrap, even if bookkeeping races make it momentarily
        // inconsistent with the heap.
        let _ = self.shards[self.shard_of(slot)].version_count.fetch_update(
            Ordering::Relaxed,
            Ordering::Relaxed,
            |v| Some(v.saturating_sub(1)),
        );
    }

    /// Visit every slot's visible version at `read_ts`. The callback gets the
    /// slot id and a borrowed tuple; returning `false` stops the scan early.
    pub fn scan_visible(&self, read_ts: Ts, own: Ts, mut f: impl FnMut(SlotId, &Tuple) -> bool) {
        self.scan_visible_from(0, read_ts, own, |slot, arc| f(slot, arc));
    }

    /// Resumable zero-copy scan: visit visible versions starting at global
    /// slot index `start`. The callback receives the slot id and the `Arc`'d
    /// version, so accepting a tuple is a refcount bump and rejecting one
    /// (a pushed-down predicate deciding inside the visitor) costs nothing —
    /// no tuple is ever deep-cloned by the scan itself. Returning `false` is
    /// the continuation signal: the scan stops *after* that tuple (batch
    /// full, LIMIT satisfied) and the returned global slot index can be
    /// passed back as `start` to resume where it left off. When the heap is
    /// exhausted the return value equals the slot count at scan time.
    pub fn scan_visible_from(
        &self,
        start: usize,
        read_ts: Ts,
        own: Ts,
        f: impl FnMut(SlotId, &Arc<Tuple>) -> bool,
    ) -> usize {
        self.scan_visible_range(start, usize::MAX, read_ts, own, f)
    }

    /// Bounded variant of [`PartitionedTable::scan_visible_from`]: visit
    /// visible versions in the half-open global slot range `[start, end)`.
    /// This is the morsel API — parallel scans carve the heap into
    /// fixed-size slot ranges and hand each to a worker. The bound applies
    /// to *slots*, not visible tuples, so disjoint ranges partition the
    /// heap exactly and the concatenation of per-range visits in range
    /// order equals one `scan_visible_from(start)` pass — at any shard
    /// count, because iteration follows the global slot order, not the
    /// shard layout. Returns the resume index exactly as the unbounded
    /// scan does, clamped to `end`.
    pub fn scan_visible_range(
        &self,
        start: usize,
        end: usize,
        read_ts: Ts,
        own: Ts,
        mut f: impl FnMut(SlotId, &Arc<Tuple>) -> bool,
    ) -> usize {
        let total = self.num_slots().min(end);
        if start >= total {
            return total;
        }
        let n = self.shards.len();
        let shard_blocks: Vec<Vec<Arc<Block>>> = self
            .shards
            .iter()
            .map(|s| s.blocks.read().clone())
            .collect();
        let mut idx = start;
        while idx < total {
            let unit = idx / SHARD_UNIT_SLOTS;
            let Some(block) = shard_blocks[unit % n].get(unit / n) else {
                // A fault-tripped insert can leave a whole-unit hole; skip
                // it like any other never-written slot.
                idx += 1;
                continue;
            };
            let off = idx % SHARD_UNIT_SLOTS;
            let chain = block.chains[off].lock();
            let sealed_hold;
            let data = match chain.visible(read_ts, own) {
                Some(data) => Some(data),
                // Empty chain: the slot may live in a sealed block. The
                // block must be fetched fresh under this chain lock (a
                // re-seal between slots can replace the published Arc).
                None if chain.is_empty() => {
                    sealed_hold = self.sealed_unit(unit);
                    sealed_hold
                        .as_ref()
                        .and_then(|b| b.row_visible(off, read_ts))
                }
                None => None,
            };
            if let Some(data) = data {
                let slot = SlotId {
                    segment: (idx / SEGMENT_SIZE) as u32,
                    offset: (idx % SEGMENT_SIZE) as u32,
                };
                if !f(slot, data) {
                    return idx + 1;
                }
            }
            idx += 1;
        }
        total
    }

    /// Garbage-collect one shard's version chains against the watermark.
    /// Returns the number of versions reclaimed. Shards are independent:
    /// a pass over one shard takes no lock any other shard's writers or
    /// readers contend on, which is what lets the collector interleave
    /// per-shard passes with fresh watermarks.
    pub fn gc_shard(&self, s: usize, watermark: Ts) -> usize {
        let n = self.shards.len();
        if s >= n {
            return 0;
        }
        let total = self.num_slots();
        let shard = &self.shards[s];
        let blocks = shard.blocks.read().clone();
        let mut reclaimed = 0usize;
        for (bi, block) in blocks.iter().enumerate() {
            let base = (bi * n + s) * SHARD_UNIT_SLOTS;
            if base >= total {
                break;
            }
            let upper = SHARD_UNIT_SLOTS.min(total - base);
            // Sealed units must keep lone tombstones: collapsing one leaves
            // an empty chain, and an empty chain falls back to the block —
            // which would resurrect the deleted row. Sealed status is
            // checked under the chain lock (sealing holds every chain lock
            // of the unit, so the check cannot race a mid-flight seal) and
            // is monotonic, so one positive check covers the rest of the
            // unit.
            let mut known_sealed = false;
            for off in 0..upper {
                let mut chain = block.chains[off].lock();
                if !known_sealed {
                    known_sealed = shard.sealed.read().get(bi).is_some_and(|b| b.is_some());
                }
                reclaimed += if known_sealed {
                    chain.prune_sealed(watermark)
                } else {
                    chain.prune(watermark)
                };
            }
        }
        if reclaimed > 0 {
            // Single atomic read-modify-write: a separate `load` + `fetch_sub`
            // is a TOCTOU race — a concurrent `abort_slot` decrement landing
            // between the two underflows the gauge and wraps it to huge
            // values. Saturate inside the CAS loop instead.
            let _ = shard
                .version_count
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(reclaimed))
                });
            shard
                .gc_pruned
                .fetch_add(reclaimed as u64, Ordering::Relaxed);
        }
        shard
            .last_gc_watermark
            .store(watermark.0, Ordering::Relaxed);
        reclaimed
    }

    /// Garbage-collect every shard against the watermark. Returns the
    /// number of versions reclaimed.
    pub fn gc(&self, watermark: Ts) -> usize {
        (0..self.shards.len())
            .map(|s| self.gc_shard(s, watermark))
            .sum()
    }

    // ------------------------------------------------------------------
    // Columnar block store
    // ------------------------------------------------------------------

    /// The sealed block covering global unit `unit`, if one is published.
    /// The returned snapshot is immutable; check [`SealedBlock::is_dirty`]
    /// before serving a whole unit from it.
    #[inline]
    pub fn sealed_unit(&self, unit: usize) -> Option<Arc<SealedBlock>> {
        let n = self.shards.len();
        self.shards[unit % n]
            .sealed
            .read()
            .get(unit / n)
            .cloned()
            .flatten()
    }

    /// Record that a block scan skipped global unit `unit` outright via
    /// its zone maps (feeds `SHOW BLOCKS` / `mb2_block_zone_skips`).
    pub fn note_zone_skip(&self, unit: usize) {
        let n = self.shards.len();
        self.shards[unit % n]
            .zone_skips
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Seal (or re-seal) shard-local unit `bi` of shard `s`. Holds every
    /// chain lock of the unit for the duration, which makes the pass atomic
    /// with respect to writers, readers, and GC: classify all 512 chains
    /// against the watermark (any hot chain bails the whole unit), build
    /// the columnar block, publish it, then clear the absorbed chains.
    /// Publication happens strictly before clearing, so a reader that finds
    /// an empty chain under its lock always finds the block. On a re-seal,
    /// offsets whose chains are still empty carry over from the existing
    /// block. Returns `(live rows sealed, versions evicted)`.
    fn try_seal_unit(&self, s: usize, bi: usize, watermark: Ts) -> Option<(usize, usize)> {
        let shard = &self.shards[s];
        let block = shard.blocks.read().get(bi).cloned()?;
        let mut guards: Vec<_> = block.chains.iter().map(|m| m.lock()).collect();
        let existing = shard.sealed.read().get(bi).cloned().flatten();
        let mut entries: Vec<Option<(Arc<Tuple>, Ts)>> = Vec::with_capacity(SHARD_UNIT_SLOTS);
        for (off, g) in guards.iter().enumerate() {
            let entry = match g.frozen(watermark) {
                FrozenState::Row(data, begin) => Some((data, begin)),
                FrozenState::Deleted => None,
                FrozenState::Empty => existing
                    .as_ref()
                    .and_then(|b| b.row(off).map(|(r, t)| (Arc::clone(r), t))),
                FrozenState::Hot => return None,
            };
            entries.push(entry);
        }
        let new_block = Arc::new(SealedBlock::build(&self.schema, entries));
        let tuples = new_block.n_valid();
        {
            let mut sealed = shard.sealed.write();
            if sealed.len() <= bi {
                sealed.resize_with(bi + 1, || None);
            }
            sealed[bi] = Some(new_block);
        }
        let mut evicted = 0usize;
        for g in guards.iter_mut() {
            if !g.is_empty() {
                evicted += g.len();
                **g = VersionChain::default();
            }
        }
        if evicted > 0 {
            let _ = shard
                .version_count
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(evicted))
                });
            shard
                .versions_evicted
                .fetch_add(evicted as u64, Ordering::Relaxed);
        }
        Some((tuples, evicted))
    }

    /// One compaction pass over shard `s`: seal every fully allocated unit
    /// whose chains are all frozen below `watermark`, and re-seal units a
    /// post-seal writer dirtied. Units with any hot chain are skipped and
    /// retried on a later pass. The tail fragment (a unit still taking
    /// inserts) is never sealed.
    pub fn compact_shard(&self, s: usize, watermark: Ts) -> CompactReport {
        let mut report = CompactReport::default();
        let n = self.shards.len();
        if s >= n {
            return report;
        }
        let shard = &self.shards[s];
        let _pass = shard.seal_lock.lock();
        let total = self.num_slots();
        let nblocks = shard.blocks.read().len();
        for bi in 0..nblocks {
            let base = (bi * n + s) * SHARD_UNIT_SLOTS;
            if base + SHARD_UNIT_SLOTS > total {
                break;
            }
            let wanted = match shard.sealed.read().get(bi) {
                Some(Some(b)) => b.is_dirty(),
                _ => true,
            };
            if !wanted {
                continue;
            }
            if let Some((tuples, evicted)) = self.try_seal_unit(s, bi, watermark) {
                report.units_sealed += 1;
                report.tuples_sealed += tuples;
                report.versions_evicted += evicted;
            }
        }
        report
    }

    /// One compaction pass over every shard. Returns the combined report.
    pub fn compact(&self, watermark: Ts) -> CompactReport {
        let mut report = CompactReport::default();
        for s in 0..self.shards.len() {
            report.absorb(self.compact_shard(s, watermark));
        }
        report
    }

    /// Point-in-time per-shard block-store statistics.
    pub fn block_stats(&self) -> Vec<BlockShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                let sealed = shard.sealed.read();
                let mut stats = BlockShardStats {
                    shard: s,
                    versions_evicted: shard.versions_evicted.load(Ordering::Relaxed),
                    zone_skips: shard.zone_skips.load(Ordering::Relaxed),
                    ..BlockShardStats::default()
                };
                for b in sealed.iter().flatten() {
                    stats.blocks += 1;
                    if b.is_dirty() {
                        stats.dirty_blocks += 1;
                    }
                    stats.sealed_tuples += b.n_valid();
                }
                stats
            })
            .collect()
    }

    /// Live rows currently served from sealed blocks, across all shards.
    pub fn sealed_tuples(&self) -> usize {
        self.block_stats().iter().map(|s| s.sealed_tuples).sum()
    }

    /// Approximate heap size in bytes (live + garbage versions, plus
    /// sealed columnar blocks).
    pub fn approx_bytes(&self) -> usize {
        let total = self.num_slots();
        let n = self.shards.len();
        let mut bytes = 0usize;
        for (s, shard) in self.shards.iter().enumerate() {
            let blocks = shard.blocks.read().clone();
            for (bi, block) in blocks.iter().enumerate() {
                let base = (bi * n + s) * SHARD_UNIT_SLOTS;
                if base >= total {
                    break;
                }
                let upper = SHARD_UNIT_SLOTS.min(total - base);
                for off in 0..upper {
                    bytes += block.chains[off].lock().approx_bytes();
                }
            }
            bytes += shard
                .sealed
                .read()
                .iter()
                .flatten()
                .map(|b| b.approx_bytes())
                .sum::<usize>();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::{Column, DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ])
    }

    fn table() -> Table {
        Table::new(TableId(1), "t", schema())
    }

    fn sharded(n: usize) -> Table {
        Table::with_shards(TableId(1), "t", schema(), n)
    }

    fn tup(a: i64, b: i64) -> Tuple {
        vec![Value::Int(a), Value::Int(b)]
    }

    #[test]
    fn insert_commit_read() {
        let t = table();
        let slot = t.insert(tup(1, 2), Ts::txn(1)).unwrap();
        t.commit_slot(slot, Ts::txn(1), Ts(10), 1);
        assert_eq!(t.read(slot, Ts(10), Ts::txn(2)).unwrap()[0], Value::Int(1));
        assert!(t.read(slot, Ts(9), Ts::txn(2)).is_none());
        assert_eq!(t.live_tuples(), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let t = table();
        assert!(t.insert(vec![Value::Int(1)], Ts::txn(1)).is_err());
    }

    #[test]
    fn update_and_abort_round_trip() {
        let t = table();
        let slot = t.insert(tup(1, 1), Ts::txn(1)).unwrap();
        t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        let old = t.update(slot, tup(2, 2), Ts::txn(2), Ts(6)).unwrap();
        assert_eq!(old[0], Value::Int(1));
        t.abort_slot(slot, Ts::txn(2));
        assert_eq!(t.read(slot, Ts(10), Ts::txn(3)).unwrap()[0], Value::Int(1));
    }

    #[test]
    fn conflict_names_table() {
        let t = table();
        let slot = t.insert(tup(1, 1), Ts::txn(1)).unwrap();
        t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        t.update(slot, tup(2, 2), Ts::txn(2), Ts(6)).unwrap();
        match t.update(slot, tup(3, 3), Ts::txn(3), Ts(6)) {
            Err(DbError::WriteConflict { table }) => assert_eq!(table, "t"),
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn scan_sees_committed_only() {
        let t = table();
        for i in 0..10 {
            let slot = t.insert(tup(i, i), Ts::txn(1)).unwrap();
            t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        }
        // One uncommitted insert from another transaction.
        t.insert(tup(99, 99), Ts::txn(2)).unwrap();
        let mut seen = Vec::new();
        t.scan_visible(Ts(5), Ts::txn(3), |_, tuple| {
            seen.push(tuple[0].as_i64().unwrap());
            true
        });
        assert_eq!(seen.len(), 10);
        assert!(!seen.contains(&99));
    }

    #[test]
    fn scan_early_stop() {
        let t = table();
        for i in 0..10 {
            let slot = t.insert(tup(i, i), Ts::txn(1)).unwrap();
            t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        }
        let mut count = 0;
        t.scan_visible(Ts(5), Ts::txn(2), |_, _| {
            count += 1;
            count < 3
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn segments_grow_across_boundary() {
        let t = table();
        let n = SEGMENT_SIZE + 10;
        for i in 0..n {
            let slot = t.insert(tup(i as i64, 0), Ts::txn(1)).unwrap();
            t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        }
        assert_eq!(t.num_slots(), n);
        let mut count = 0;
        t.scan_visible(Ts(5), Ts::txn(2), |_, _| {
            count += 1;
            true
        });
        assert_eq!(count, n);
    }

    #[test]
    fn resumable_scan_continues_where_it_stopped() {
        let t = table();
        for i in 0..10 {
            let slot = t.insert(tup(i, i), Ts::txn(1)).unwrap();
            t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        }
        // First batch of 4, stop, then resume for the rest.
        let mut seen = Vec::new();
        let pos = t.scan_visible_from(0, Ts(5), Ts::txn(2), |_, tuple| {
            seen.push(tuple[0].as_i64().unwrap());
            seen.len() < 4
        });
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(pos, 4);
        let end = t.scan_visible_from(pos, Ts(5), Ts::txn(2), |_, tuple| {
            seen.push(tuple[0].as_i64().unwrap());
            true
        });
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(end, 10);
        // Resuming at the end is a no-op.
        assert_eq!(t.scan_visible_from(end, Ts(5), Ts::txn(2), |_, _| true), 10);
    }

    #[test]
    fn range_scans_partition_the_heap_exactly() {
        let t = table();
        for i in 0..25 {
            let slot = t.insert(tup(i, i), Ts::txn(1)).unwrap();
            // Leave a third of the rows invisible at the read timestamp.
            let ts = if i % 3 == 0 { Ts(50) } else { Ts(5) };
            t.commit_slot(slot, Ts::txn(1), ts, 1);
        }
        let mut full = Vec::new();
        t.scan_visible_from(0, Ts(10), Ts::txn(2), |_, tuple| {
            full.push(tuple[0].as_i64().unwrap());
            true
        });
        // Concatenating disjoint morsel ranges in order must reproduce the
        // unbounded scan exactly, for any morsel size.
        for morsel in [1usize, 4, 7, 25, 100] {
            let mut pieced = Vec::new();
            let mut start = 0;
            while start < t.num_slots() {
                let end = start + morsel;
                let ret = t.scan_visible_range(start, end, Ts(10), Ts::txn(2), |_, tuple| {
                    pieced.push(tuple[0].as_i64().unwrap());
                    true
                });
                assert_eq!(ret, end.min(t.num_slots()));
                start = end;
            }
            assert_eq!(pieced, full, "morsel size {morsel}");
        }
    }

    #[test]
    fn range_scan_clamps_and_stops_early() {
        let t = table();
        for i in 0..10 {
            let slot = t.insert(tup(i, i), Ts::txn(1)).unwrap();
            t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        }
        // Range past the heap clamps to the slot count.
        let mut seen = Vec::new();
        let ret = t.scan_visible_range(8, 1000, Ts(5), Ts::txn(2), |_, tuple| {
            seen.push(tuple[0].as_i64().unwrap());
            true
        });
        assert_eq!(seen, vec![8, 9]);
        assert_eq!(ret, 10);
        // Early stop inside a range returns the resume index.
        let mut n = 0;
        let ret = t.scan_visible_range(2, 8, Ts(5), Ts::txn(2), |_, _| {
            n += 1;
            n < 2
        });
        assert_eq!(ret, 4);
        // Empty and inverted ranges visit nothing.
        let ret = t.scan_visible_range(5, 5, Ts(5), Ts::txn(2), |_, _| {
            panic!("empty range must not visit")
        });
        assert_eq!(ret, 5);
    }

    #[test]
    fn resumable_scan_skips_invisible_without_emitting() {
        let t = table();
        for i in 0..6 {
            let slot = t.insert(tup(i, i), Ts::txn(1)).unwrap();
            // Commit only even rows at ts 5; odd rows commit later.
            let ts = if i % 2 == 0 { Ts(5) } else { Ts(50) };
            t.commit_slot(slot, Ts::txn(1), ts, 1);
        }
        let mut seen = Vec::new();
        t.scan_visible_from(0, Ts(10), Ts::txn(2), |_, tuple| {
            seen.push(tuple[0].as_i64().unwrap());
            true
        });
        assert_eq!(seen, vec![0, 2, 4]);
    }

    #[test]
    fn gc_reclaims_old_versions() {
        let t = table();
        let slot = t.insert(tup(0, 0), Ts::txn(1)).unwrap();
        t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        for i in 0..5u64 {
            let txn = Ts::txn(10 + i);
            let ts = 10 + i;
            t.update(slot, tup(i as i64 + 1, 0), txn, Ts(ts - 1))
                .unwrap();
            t.commit_slot(slot, txn, Ts(ts), 0);
        }
        let before = t.version_count();
        let reclaimed = t.gc(Ts(14));
        assert!(reclaimed >= 4, "reclaimed {reclaimed}");
        assert!(t.version_count() < before);
        // Newest version still readable.
        assert_eq!(t.read(slot, Ts(20), Ts::txn(99)).unwrap()[0], Value::Int(5));
    }

    #[test]
    fn delete_decrements_live_count() {
        let t = table();
        let slot = t.insert(tup(1, 1), Ts::txn(1)).unwrap();
        t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        t.delete(slot, Ts::txn(2), Ts(6)).unwrap();
        t.commit_slot(slot, Ts::txn(2), Ts(7), -1);
        assert_eq!(t.live_tuples(), 0);
        assert!(t.read(slot, Ts(7), Ts::txn(3)).is_none());
    }

    #[test]
    fn concurrent_inserts_are_safe() {
        let t = Arc::new(table());
        let threads: Vec<_> = (0..4)
            .map(|ti| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let txn = Ts::txn((ti * 1000 + i) as u64 + 1);
                        let slot = t.insert(tup(i as i64, ti as i64), txn).unwrap();
                        t.commit_slot(slot, txn, Ts(100), 1);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.num_slots(), 2000);
        assert_eq!(t.live_tuples(), 2000);
    }

    #[test]
    fn gc_version_count_never_underflows_under_concurrent_aborts() {
        // Regression for the load+fetch_sub TOCTOU in `gc`: with GC racing
        // writers that abort (each abort decrements version_count), the old
        // two-step decrement could wrap the gauge to usize::MAX. Hammer the
        // race and assert the gauge stays sane throughout.
        let t = Arc::new(table());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        // Seed one committed row per writer thread so updates have a base.
        let mut slots = Vec::new();
        for i in 0..4i64 {
            let txn = Ts::txn(1000 + i as u64);
            let slot = t.insert(tup(i, 0), txn).unwrap();
            t.commit_slot(slot, txn, Ts(1), 1);
            slots.push(slot);
        }

        let writers: Vec<_> = (0..4usize)
            .map(|wi| {
                let t = t.clone();
                let stop = stop.clone();
                let slot = slots[wi];
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    let mut ts = 1u64;
                    while !stop.load(Ordering::Relaxed) {
                        let txn = Ts::txn(10_000 + wi as u64 * 1_000_000 + n);
                        if t.update(slot, tup(n as i64, 1), txn, Ts(ts)).is_ok() {
                            if n.is_multiple_of(2) {
                                // Committed garbage for GC to reclaim
                                // (batched fetch_update decrement) ...
                                ts += 1;
                                t.commit_slot(slot, txn, Ts(ts), 0);
                            } else {
                                // ... racing aborts (single decrements).
                                t.abort_slot(slot, txn);
                            }
                        }
                        n += 1;
                    }
                })
            })
            .collect();

        let gc_t = t.clone();
        let gc_stop = stop.clone();
        let gc_thread = std::thread::spawn(move || {
            while !gc_stop.load(Ordering::Relaxed) {
                gc_t.gc(Ts(u64::MAX >> 1));
                // The gauge must never wrap: anything close to usize::MAX
                // means a subtraction underflowed.
                assert!(
                    gc_t.version_count() < 1 << 32,
                    "version_count wrapped: {}",
                    gc_t.version_count()
                );
            }
        });

        std::thread::sleep(std::time::Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
        for th in writers {
            th.join().unwrap();
        }
        gc_thread.join().unwrap();
        assert!(t.version_count() < 1 << 32);
    }

    #[test]
    fn out_of_range_slot_errors_instead_of_panicking() {
        let t = table();
        let slot = t.insert(tup(1, 1), Ts::txn(1)).unwrap();
        t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        let bogus = SlotId {
            segment: 99,
            offset: 7,
        };
        assert!(t.read(bogus, Ts(10), Ts::txn(2)).is_none());
        assert!(matches!(
            t.update(bogus, tup(2, 2), Ts::txn(2), Ts(6)),
            Err(DbError::Storage(_))
        ));
        assert!(matches!(
            t.delete(bogus, Ts::txn(2), Ts(6)),
            Err(DbError::Storage(_))
        ));
        // Commit/abort of a bogus slot are tolerated no-ops.
        t.commit_slot(bogus, Ts::txn(2), Ts(7), 0);
        t.abort_slot(bogus, Ts::txn(2));
        // Offset beyond the segment width is also rejected.
        let wide = SlotId {
            segment: 0,
            offset: SEGMENT_SIZE as u32 + 1,
        };
        assert!(t.read(wide, Ts(10), Ts::txn(2)).is_none());
        // The real slot is untouched.
        assert_eq!(t.read(slot, Ts(10), Ts::txn(3)).unwrap()[0], Value::Int(1));
    }

    // ------------------------------------------------------------------
    // Shard-specific coverage
    // ------------------------------------------------------------------

    /// Fill `t` with `rows` committed tuples and return the slots.
    fn fill(t: &Table, rows: usize) -> Vec<SlotId> {
        (0..rows)
            .map(|i| {
                let slot = t.insert(tup(i as i64, (i % 7) as i64), Ts::txn(1)).unwrap();
                t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
                slot
            })
            .collect()
    }

    #[test]
    fn scan_order_is_identical_at_every_shard_count() {
        // The shard map must be invisible to scans: global slot order is
        // the scan order at any shard count, so full scans, resumable
        // scans, and arbitrary morsel partitions all agree with the
        // single-shard oracle.
        let rows = 3 * SHARD_UNIT_SLOTS + 123;
        let oracle = table();
        fill(&oracle, rows);
        let mut expect = Vec::new();
        oracle.scan_visible(Ts(10), Ts::txn(2), |_, tuple| {
            expect.push(tuple[0].as_i64().unwrap());
            true
        });
        assert_eq!(expect.len(), rows);

        for n in [2usize, 3, 8] {
            let t = sharded(n);
            fill(&t, rows);
            let mut got = Vec::new();
            t.scan_visible(Ts(10), Ts::txn(2), |_, tuple| {
                got.push(tuple[0].as_i64().unwrap());
                true
            });
            assert_eq!(got, expect, "shard_count {n}");
            // Morsel partitions reproduce the full scan too.
            let mut pieced = Vec::new();
            let mut start = 0;
            while start < t.num_slots() {
                let end = start + 2048;
                t.scan_visible_range(start, end, Ts(10), Ts::txn(2), |_, tuple| {
                    pieced.push(tuple[0].as_i64().unwrap());
                    true
                });
                start = end;
            }
            assert_eq!(pieced, expect, "morsel partition at shard_count {n}");
        }
    }

    #[test]
    fn slots_are_identical_at_every_shard_count() {
        // SlotIds are derived from the global tail, so the i-th insert
        // gets the same address at any shard count — the property WAL
        // replay into a different shard count depends on.
        let rows = SHARD_UNIT_SLOTS + 77;
        let oracle = table();
        let expect = fill(&oracle, rows);
        for n in [3usize, 8] {
            let t = sharded(n);
            let got = fill(&t, rows);
            assert_eq!(got, expect, "shard_count {n}");
        }
    }

    #[test]
    fn shard_stats_partition_the_heap() {
        let n = 4;
        let rows = 10 * SHARD_UNIT_SLOTS + 100;
        let t = sharded(n);
        fill(&t, rows);
        let stats = t.shard_stats();
        assert_eq!(stats.len(), n);
        assert_eq!(stats.iter().map(|s| s.slots).sum::<usize>(), rows);
        assert_eq!(stats.iter().map(|s| s.live_tuples).sum::<usize>(), rows);
        assert_eq!(stats.iter().map(|s| s.versions).sum::<usize>(), rows);
        // Interleaved units spread a 10-unit heap across every shard.
        for s in &stats {
            assert!(
                s.live_tuples > 0,
                "shard {} got no tuples: {stats:?}",
                s.shard
            );
        }
        assert_eq!(t.live_tuples(), rows);
        assert_eq!(t.version_count(), rows);
    }

    #[test]
    fn shard_of_matches_unit_interleaving() {
        let t = sharded(3);
        fill(&t, 2 * SHARD_UNIT_SLOTS + 5);
        assert_eq!(t.shard_of_index(0), 0);
        assert_eq!(t.shard_of_index(SHARD_UNIT_SLOTS - 1), 0);
        assert_eq!(t.shard_of_index(SHARD_UNIT_SLOTS), 1);
        assert_eq!(t.shard_of_index(2 * SHARD_UNIT_SLOTS), 2);
        assert_eq!(t.shard_of_index(3 * SHARD_UNIT_SLOTS), 0);
        let slot = SlotId {
            segment: 0,
            offset: SHARD_UNIT_SLOTS as u32,
        };
        assert_eq!(t.shard_of(slot), 1);
    }

    #[test]
    fn gc_shard_prunes_only_its_own_shard() {
        let n = 3;
        let t = sharded(n);
        let slots = fill(&t, 3 * SHARD_UNIT_SLOTS);
        // Create one garbage version on a slot of each shard.
        for (i, &slot) in slots.iter().step_by(SHARD_UNIT_SLOTS).take(n).enumerate() {
            let txn = Ts::txn(100 + i as u64);
            t.update(slot, tup(-1, -1), txn, Ts(6)).unwrap();
            t.commit_slot(slot, txn, Ts(7), 0);
        }
        let before: Vec<_> = t.shard_stats().iter().map(|s| s.versions).collect();
        let reclaimed = t.gc_shard(1, Ts(100));
        assert_eq!(reclaimed, 1);
        let after = t.shard_stats();
        assert_eq!(after[1].versions, before[1] - 1);
        assert_eq!(after[0].versions, before[0]);
        assert_eq!(after[2].versions, before[2]);
        assert_eq!(after[1].gc_pruned, 1);
        assert_eq!(after[0].gc_pruned, 0);
        assert_eq!(after[1].last_gc_watermark, 100);
        // The other shards' garbage falls to a later full pass.
        assert_eq!(t.gc(Ts(100)), 2);
    }

    #[test]
    fn sharded_mvcc_round_trip() {
        // Update/delete/abort bookkeeping lands on the right shard.
        let t = sharded(8);
        let slots = fill(&t, 4 * SHARD_UNIT_SLOTS);
        let victim = slots[SHARD_UNIT_SLOTS + 3]; // shard 1
        let old = t.update(victim, tup(7, 7), Ts::txn(50), Ts(10)).unwrap();
        assert_eq!(old[0], Value::Int(SHARD_UNIT_SLOTS as i64 + 3));
        t.commit_slot(victim, Ts::txn(50), Ts(20), 0);
        assert_eq!(
            t.read(victim, Ts(20), Ts::txn(51)).unwrap()[0],
            Value::Int(7)
        );
        t.delete(victim, Ts::txn(52), Ts(20)).unwrap();
        t.abort_slot(victim, Ts::txn(52));
        assert_eq!(
            t.read(victim, Ts(20), Ts::txn(53)).unwrap()[0],
            Value::Int(7)
        );
        let live = t.live_tuples();
        t.delete(victim, Ts::txn(54), Ts(20)).unwrap();
        t.commit_slot(victim, Ts::txn(54), Ts(21), -1);
        assert_eq!(t.live_tuples(), live - 1);
        assert_eq!(
            t.shard_stats()[1].live_tuples,
            SHARD_UNIT_SLOTS - 1,
            "delete must decrement the owning shard"
        );
    }

    // ------------------------------------------------------------------
    // Columnar block store
    // ------------------------------------------------------------------

    #[test]
    fn compact_seals_full_frozen_units_only() {
        let rows = 2 * SHARD_UNIT_SLOTS + 100;
        let t = sharded(3);
        fill(&t, rows);
        let report = t.compact(Ts(10));
        // Two full units seal; the 100-slot tail fragment does not.
        assert_eq!(report.units_sealed, 2);
        assert_eq!(report.tuples_sealed, 2 * SHARD_UNIT_SLOTS);
        assert_eq!(report.versions_evicted, 2 * SHARD_UNIT_SLOTS);
        assert_eq!(t.sealed_tuples(), 2 * SHARD_UNIT_SLOTS);
        assert_eq!(t.version_count(), 100);
        assert_eq!(t.live_tuples(), rows, "sealing must not change liveness");
        let stats = t.block_stats();
        assert_eq!(stats.iter().map(|s| s.blocks).sum::<usize>(), 2);
        assert_eq!(stats.iter().map(|s| s.dirty_blocks).sum::<usize>(), 0);
        // A second pass over already-clean blocks is a no-op.
        assert_eq!(t.compact(Ts(10)).units_sealed, 0);
    }

    #[test]
    fn sealed_rows_scan_and_read_identically() {
        let rows = 3 * SHARD_UNIT_SLOTS + 50;
        for n in [1usize, 3, 8] {
            let t = sharded(n);
            let slots = fill(&t, rows);
            let mut before = Vec::new();
            t.scan_visible(Ts(10), Ts::txn(2), |_, tuple| {
                before.push(tuple[0].as_i64().unwrap());
                true
            });
            t.compact(Ts(10));
            let mut after = Vec::new();
            t.scan_visible(Ts(10), Ts::txn(2), |_, tuple| {
                after.push(tuple[0].as_i64().unwrap());
                true
            });
            assert_eq!(after, before, "shard_count {n}");
            // Point reads hit the block fallback for sealed slots.
            assert_eq!(
                t.read(slots[7], Ts(10), Ts::txn(2)).unwrap()[0],
                Value::Int(7),
                "shard_count {n}"
            );
            // A pre-seal snapshot older than every commit still sees nothing.
            assert!(t.read(slots[7], Ts(4), Ts::txn(2)).is_none());
        }
    }

    #[test]
    fn hot_chains_bail_the_unit() {
        let t = table();
        let slots = fill(&t, 2 * SHARD_UNIT_SLOTS);
        // An uncommitted update keeps unit 0 hot; unit 1 still seals.
        t.update(slots[3], tup(-1, -1), Ts::txn(50), Ts(10))
            .unwrap();
        let report = t.compact(Ts(10));
        assert_eq!(report.units_sealed, 1);
        assert!(t.sealed_unit(0).is_none());
        assert!(t.sealed_unit(1).is_some());
        // Commit the straggler and let GC trim the superseded version;
        // the next pass picks unit 0 up.
        t.commit_slot(slots[3], Ts::txn(50), Ts(11), 0);
        t.gc(Ts(12));
        assert_eq!(t.compact(Ts(12)).units_sealed, 1);
        assert!(t.sealed_unit(0).is_some());
    }

    #[test]
    fn post_seal_update_revives_marks_dirty_and_reseals() {
        let t = table();
        let slots = fill(&t, SHARD_UNIT_SLOTS);
        t.compact(Ts(10));
        let victim = slots[9];
        // Update a sealed row: the chain revives from the block.
        let old = t.update(victim, tup(900, 0), Ts::txn(60), Ts(10)).unwrap();
        assert_eq!(old[0], Value::Int(9));
        t.commit_slot(victim, Ts::txn(60), Ts(20), 0);
        assert!(t.sealed_unit(0).unwrap().is_dirty());
        assert_eq!(t.block_stats()[0].dirty_blocks, 1);
        // Old and new snapshots both resolve through the revived chain.
        assert_eq!(
            t.read(victim, Ts(10), Ts::txn(61)).unwrap()[0],
            Value::Int(9)
        );
        assert_eq!(
            t.read(victim, Ts(20), Ts::txn(61)).unwrap()[0],
            Value::Int(900)
        );
        // Scans agree.
        let mut seen = Vec::new();
        t.scan_visible(Ts(20), Ts::txn(61), |_, tuple| {
            seen.push(tuple[0].as_i64().unwrap());
            true
        });
        assert_eq!(seen.len(), SHARD_UNIT_SLOTS);
        assert_eq!(seen[9], 900);
        // Once GC trims the garbage, compaction re-seals the unit clean.
        t.gc(Ts(21));
        let report = t.compact(Ts(21));
        assert_eq!(report.units_sealed, 1);
        let block = t.sealed_unit(0).unwrap();
        assert!(!block.is_dirty());
        assert_eq!(
            t.read(victim, Ts(21), Ts::txn(62)).unwrap()[0],
            Value::Int(900)
        );
    }

    #[test]
    fn post_seal_delete_does_not_resurrect() {
        let t = table();
        let slots = fill(&t, SHARD_UNIT_SLOTS);
        t.compact(Ts(10));
        let victim = slots[100];
        t.delete(victim, Ts::txn(70), Ts(10)).unwrap();
        t.commit_slot(victim, Ts::txn(70), Ts(20), -1);
        assert!(t.read(victim, Ts(20), Ts::txn(71)).is_none());
        // GC on the sealed unit keeps the lone tombstone (collapsing it
        // would expose the block row again) ...
        t.gc(Ts(30));
        assert!(t.read(victim, Ts(30), Ts::txn(72)).is_none());
        let mut count = 0;
        t.scan_visible(Ts(30), Ts::txn(72), |_, _| {
            count += 1;
            true
        });
        assert_eq!(count, SHARD_UNIT_SLOTS - 1);
        // ... and the re-seal retires both the tombstone and the block row.
        t.compact(Ts(30));
        assert!(t.read(victim, Ts(30), Ts::txn(73)).is_none());
        assert_eq!(t.sealed_tuples(), SHARD_UNIT_SLOTS - 1);
        assert!(!t.sealed_unit(0).unwrap().is_dirty());
        count = 0;
        t.scan_visible(Ts(30), Ts::txn(73), |_, _| {
            count += 1;
            true
        });
        assert_eq!(count, SHARD_UNIT_SLOTS - 1);
    }

    #[test]
    fn scans_race_compaction_without_losing_rows() {
        // Scan continuously while compaction seals units and writers churn
        // a few sealed rows: every scan must see exactly one version of
        // every row.
        let rows = 4 * SHARD_UNIT_SLOTS;
        let t = Arc::new(sharded(3));
        fill(&t, rows);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let compactor = {
            let t = t.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut wm = 10u64;
                while !stop.load(Ordering::Relaxed) {
                    t.gc(Ts(wm));
                    t.compact(Ts(wm));
                    wm += 1;
                }
            })
        };
        let writer = {
            let t = t.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let txn = Ts::txn(1000 + n);
                    let idx = (n as usize * 97) % rows;
                    let slot = SlotId {
                        segment: (idx / SEGMENT_SIZE) as u32,
                        offset: (idx % SEGMENT_SIZE) as u32,
                    };
                    // Rewrite the row with its own key so scans can't tell.
                    if t.update(slot, tup(idx as i64, 0), txn, Ts(5_000_000))
                        .is_ok()
                    {
                        t.commit_slot(slot, txn, Ts(2000 + n), 0);
                    }
                    n += 1;
                }
            })
        };

        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(200);
        while std::time::Instant::now() < deadline {
            let mut seen = Vec::with_capacity(rows);
            t.scan_visible(Ts(5_000_000), Ts::txn(999), |_, tuple| {
                seen.push(tuple[0].as_i64().unwrap());
                true
            });
            let expect: Vec<i64> = (0..rows as i64).collect();
            assert_eq!(seen, expect, "scan lost or duplicated rows");
        }
        stop.store(true, Ordering::Relaxed);
        compactor.join().unwrap();
        writer.join().unwrap();
    }

    #[test]
    fn concurrent_inserts_spread_across_shards() {
        let t = Arc::new(sharded(4));
        let threads: Vec<_> = (0..4)
            .map(|ti| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for i in 0..SHARD_UNIT_SLOTS {
                        let txn = Ts::txn((ti * 100_000 + i) as u64 + 1);
                        let slot = t.insert(tup(i as i64, ti as i64), txn).unwrap();
                        t.commit_slot(slot, txn, Ts(100), 1);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let total = 4 * SHARD_UNIT_SLOTS;
        assert_eq!(t.num_slots(), total);
        assert_eq!(t.live_tuples(), total);
        let stats = t.shard_stats();
        assert_eq!(stats.iter().map(|s| s.live_tuples).sum::<usize>(), total);
        for s in &stats {
            assert_eq!(s.live_tuples, SHARD_UNIT_SLOTS, "{stats:?}");
        }
    }
}
