//! Candidate-action enumeration.
//!
//! Each tick the pilot derives a bounded, deterministic set of candidate
//! [`Action`]s from the current forecast and engine state:
//!
//! * **Index builds** — for every sequential scan in a forecast plan
//!   whose filter contains an equality predicate on a column, propose a
//!   secondary index on that column (unless one already covers it).
//!   Pilot-built indexes are named `pilot_<table>_<column>` so they are
//!   recognizable and safely droppable later.
//! * **Index drops** — pilot-built indexes that no plan in the current
//!   forecast scans. The pilot only ever proposes dropping indexes it
//!   built itself; user-created indexes are out of bounds.
//! * **Knob flips** — execution mode, batch size, parallelism, columnar
//!   scans, WAL flush interval, GC cadence, and compaction cadence, each
//!   stepped up/down (or toggled) from its current value. Plan-shaped
//!   knobs (execution mode, batch size, parallelism, columnar) are priced
//!   by re-predicting the forecast plans under the flipped knobs; cadence
//!   knobs are priced through their background OUs' recurring cost (see
//!   the [`Action`] docs). Knobs whose OU-models are untrained price
//!   honestly to zero gain.

use std::collections::BTreeSet;
use std::time::Duration;

use mb2_core::planner::Action;
use mb2_core::WorkloadForecast;
use mb2_engine::exec::ExecutionMode;
use mb2_engine::sql::{BinOp, BoundExpr, PlanNode};
use mb2_engine::Database;

use crate::config::PilotConfig;

/// Collect `(table, column_position)` pairs of equality predicates under
/// sequential scans anywhere in the plan tree.
fn seq_scan_eq_columns(plan: &PlanNode, out: &mut BTreeSet<(String, usize)>) {
    match plan {
        PlanNode::SeqScan { table, filter, .. } => {
            if let Some(expr) = filter {
                collect_eq_cols(expr, table, out);
            }
        }
        PlanNode::IndexScan { .. } | PlanNode::Insert { .. } | PlanNode::CreateIndex { .. } => {}
        PlanNode::HashJoin { build, probe, .. } => {
            seq_scan_eq_columns(build, out);
            seq_scan_eq_columns(probe, out);
        }
        PlanNode::NestedLoopJoin { outer, inner, .. } => {
            seq_scan_eq_columns(outer, out);
            seq_scan_eq_columns(inner, out);
        }
        PlanNode::Aggregate { input, .. }
        | PlanNode::Filter { input, .. }
        | PlanNode::Sort { input, .. }
        | PlanNode::Project { input, .. }
        | PlanNode::Limit { input, .. }
        | PlanNode::Output { input, .. } => seq_scan_eq_columns(input, out),
        PlanNode::Update { scan, .. } | PlanNode::Delete { scan, .. } => {
            seq_scan_eq_columns(scan, out)
        }
    }
}

/// Find `col = literal` (or `literal = col`) conjuncts in a scan filter.
fn collect_eq_cols(expr: &BoundExpr, table: &str, out: &mut BTreeSet<(String, usize)>) {
    if let BoundExpr::Binary { op, left, right } = expr {
        match op {
            BinOp::Eq => match (left.as_ref(), right.as_ref()) {
                (BoundExpr::Col(i), BoundExpr::Lit(_)) | (BoundExpr::Lit(_), BoundExpr::Col(i)) => {
                    out.insert((table.to_string(), *i));
                }
                _ => {}
            },
            BinOp::And | BinOp::Or => {
                collect_eq_cols(left, table, out);
                collect_eq_cols(right, table, out);
            }
            _ => {}
        }
    }
}

/// Index names referenced by index scans anywhere in the plan tree.
fn referenced_indexes(plan: &PlanNode, out: &mut BTreeSet<String>) {
    match plan {
        PlanNode::IndexScan { index, .. } => {
            out.insert(index.to_ascii_lowercase());
        }
        PlanNode::SeqScan { .. } | PlanNode::Insert { .. } | PlanNode::CreateIndex { .. } => {}
        PlanNode::HashJoin { build, probe, .. } => {
            referenced_indexes(build, out);
            referenced_indexes(probe, out);
        }
        PlanNode::NestedLoopJoin { outer, inner, .. } => {
            referenced_indexes(outer, out);
            referenced_indexes(inner, out);
        }
        PlanNode::Aggregate { input, .. }
        | PlanNode::Filter { input, .. }
        | PlanNode::Sort { input, .. }
        | PlanNode::Project { input, .. }
        | PlanNode::Limit { input, .. }
        | PlanNode::Output { input, .. } => referenced_indexes(input, out),
        PlanNode::Update { scan, .. } | PlanNode::Delete { scan, .. } => {
            referenced_indexes(scan, out)
        }
    }
}

/// Enumerate the candidate actions for one tick. `built_indexes` is the
/// set of `(index_name, table)` pairs the pilot itself created and still
/// owns; only those are eligible for drop candidates. The output order is
/// deterministic (index actions sorted, then knobs in a fixed order) so a
/// given seed always breaks gain ties the same way.
pub fn enumerate(
    db: &Database,
    forecast: &WorkloadForecast,
    built_indexes: &[(String, String)],
    config: &PilotConfig,
) -> Vec<Action> {
    let mut actions = Vec::new();
    let knobs = db.knobs();

    // Index builds: seq-scanned equality columns without a covering index.
    let mut eq_cols = BTreeSet::new();
    let mut used_indexes = BTreeSet::new();
    for t in &forecast.templates {
        seq_scan_eq_columns(&t.plan, &mut eq_cols);
        referenced_indexes(&t.plan, &mut used_indexes);
    }
    for (table, col) in &eq_cols {
        let Ok(entry) = db.catalog().get(table) else {
            continue;
        };
        // Skip when any existing index already leads with this column.
        if entry
            .indexes()
            .iter()
            .any(|idx| idx.key_columns.first() == Some(col))
        {
            continue;
        }
        let col_name = entry.table.schema().column(*col).name.clone();
        let index = format!("pilot_{table}_{col_name}");
        if entry.index_named(&index).is_some() {
            continue;
        }
        actions.push(Action::BuildIndex {
            sql: format!(
                "CREATE INDEX {index} ON {table} ({col_name}) WITH (THREADS = {})",
                config.index_build_threads
            ),
            table: table.clone(),
            index,
            columns: vec![col_name],
            threads: config.index_build_threads,
        });
    }

    // Index drops: pilot-built indexes no forecast plan scans.
    let mut drops: Vec<&(String, String)> = built_indexes
        .iter()
        .filter(|(index, _)| !used_indexes.contains(&index.to_ascii_lowercase()))
        .collect();
    drops.sort();
    for (index, table) in drops {
        // The index may have been dropped out from under us by a user.
        let still_there = db
            .catalog()
            .get(table)
            .map(|e| e.index_named(index).is_some())
            .unwrap_or(false);
        if still_there {
            actions.push(Action::DropIndex {
                table: table.clone(),
                index: index.clone(),
            });
        }
    }

    // Knob flips, fixed order. Execution mode: try the other mode.
    actions.push(Action::SetExecutionMode(match knobs.execution_mode {
        ExecutionMode::Interpret => ExecutionMode::Compiled,
        ExecutionMode::Compiled => ExecutionMode::Interpret,
    }));
    for n in [knobs.batch_size * 2, knobs.batch_size / 2] {
        if n >= 1 && n != knobs.batch_size {
            actions.push(Action::SetBatchSize(n));
        }
    }
    for n in [
        (knobs.parallelism * 2).min(config.max_parallelism),
        knobs.parallelism / 2,
    ] {
        if n >= 1 && n != knobs.parallelism {
            actions.push(Action::SetParallelism(n));
        }
    }
    if db.wal().is_some() {
        let cur = knobs.wal_flush_interval;
        for d in [cur * 2, cur / 2] {
            if d >= Duration::from_millis(1) && d != cur {
                actions.push(Action::SetWalFlushInterval(d));
            }
        }
    }
    let gc = db.gc().interval();
    if gc > Duration::ZERO {
        for d in [gc * 2, gc / 2] {
            if d >= Duration::from_millis(1) && d != gc {
                actions.push(Action::SetGcInterval(d));
            }
        }
    }
    actions.push(Action::SetColumnarEnabled(!knobs.columnar_enabled));
    let compaction = db.compactor().interval();
    if compaction > Duration::ZERO {
        for d in [compaction * 2, compaction / 2] {
            if d >= Duration::from_millis(1) && d != compaction {
                actions.push(Action::SetCompactionInterval(d));
            }
        }
    }

    actions
}
