//! Fig. 1 — Index Build Example.
//!
//! TPC-C query latency over time while the DBMS rebuilds the CUSTOMER
//! secondary index with 4 vs. 8 threads. Reproduces the paper's headline
//! trade-off: more build threads finish sooner but degrade the workload
//! more while running.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mb2_engine::Database;
use mb2_workloads::tpcc::Tpcc;
use mb2_workloads::Workload;

use crate::experiments::common::run_phase;
use crate::report::{fmt, Table};
use crate::Scale;

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Fig. 1 — TPC-C latency during index build (4 vs 8 threads)\n\n");
    let interval = Duration::from_millis(500);
    let phase_s = scale.pick(3u64, 6);
    let customers = scale.pick(400, 2000);

    let mut table = Table::new(
        "average TPC-C latency per 0.5s bucket",
        &["threads", "phase", "bucket", "avg latency (us)"],
    );
    let mut build_times = Vec::new();
    for threads in [4usize, 8] {
        let tpcc = Tpcc {
            customers_per_district: customers,
            customer_last_name_index: false, // start degraded, like the paper
            ..Tpcc::default()
        };
        let db = Arc::new(Database::open());
        tpcc.load(&db).expect("load tpcc");

        // Phase 1: workload without the index.
        let before =
            run_phase(&db, &tpcc, 4, Duration::from_secs(phase_s), interval, 1).expect("phase");
        // Phase 2: workload while the index builds on its own thread pool.
        let db2 = db.clone();
        let sql = tpcc.customer_index_sql(threads);
        let builder = std::thread::spawn(move || {
            let t0 = Instant::now();
            db2.execute(&sql).expect("index build");
            t0.elapsed()
        });
        let during =
            run_phase(&db, &tpcc, 4, Duration::from_secs(phase_s), interval, 2).expect("phase");
        let build_time = builder.join().expect("builder");
        build_times.push((threads, build_time));
        // Phase 3: workload with the index.
        let after =
            run_phase(&db, &tpcc, 4, Duration::from_secs(phase_s), interval, 3).expect("phase");

        for (phase, outcome) in [
            ("no-index", &before),
            ("building", &during),
            ("indexed", &after),
        ] {
            for (b, avg) in outcome.bucket_avg_us.iter().enumerate() {
                table.row(&[
                    threads.to_string(),
                    phase.to_string(),
                    b.to_string(),
                    fmt(*avg),
                ]);
            }
        }
    }
    out.push_str(&table.render());
    out.push('\n');
    let mut summary = Table::new("index build times", &["threads", "build time (ms)"]);
    for (threads, t) in &build_times {
        summary.row(&[threads.to_string(), fmt(t.as_secs_f64() * 1000.0)]);
    }
    out.push_str(&summary.render());
    out.push_str(
        "\nExpected shape (paper Fig. 1): latency rises while the build runs, \
         more with 8 threads than with 4, but the 8-thread build finishes \
         in roughly half the time; post-build latency drops well below the \
         no-index phase.\n",
    );
    out
}
