//! Fig. 10 — Hardware context: append the CPU frequency to every OU-model's
//! input features and test generalization to unseen frequencies.
//!
//! Model A trains at the base frequency only; model B trains across a
//! frequency range; both are tested at frequencies neither saw. Frequency
//! scaling is emulated by the engine's hardware profile (see
//! `mb2_common::HardwareProfile` and DESIGN.md).

use mb2_common::HardwareProfile;
use mb2_core::collect::TrainingRepo;
use mb2_core::training::train_all;
use mb2_core::{BehaviorModels, OuTranslator, TranslatorConfig};
use mb2_engine::{Database, Knobs};
use mb2_workloads::tpcc::Tpcc;
use mb2_workloads::tpch::Tpch;
use mb2_workloads::Workload;

use crate::pipeline::PipelineConfig;
use crate::report::{fmt, Table};
use crate::Scale;

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Fig. 10 — hardware context (CPU-frequency feature)\n\n");

    let hw_translator = TranslatorConfig {
        include_hw_context: true,
        cardinality_noise: None,
    };
    let mut cfg = PipelineConfig::for_scale(scale);
    // Hardware sweeps multiply runner cost; shrink the per-frequency sweep.
    cfg.exec.max_rows = scale.pick(512, 4096);
    cfg.exec.translator = hw_translator.clone();

    let train_single = [2.2];
    let train_range = scale.pick(vec![1.8, 3.1], vec![1.2, 1.8, 2.2, 2.6, 3.1]);
    let test_freqs = scale.pick(vec![2.0, 2.8], vec![1.6, 2.0, 2.4, 2.8]);

    let train_at = |freqs: &[f64]| -> TrainingRepo {
        let mut repo = TrainingRepo::new();
        for &f in freqs {
            let mut c = cfg.exec.clone();
            c.hw = HardwareProfile::new(f);
            repo.merge(mb2_core::runners::execution::run_execution_runners(&c).expect("runner"));
        }
        repo
    };
    let repo_a = train_at(&train_single);
    let repo_b = train_at(&train_range);
    let make = |repo: &TrainingRepo| -> BehaviorModels {
        let (models, _) = train_all(repo, &cfg.training).expect("train");
        let mut b = BehaviorModels::new(models, None);
        b.translator = OuTranslator::new(hw_translator.clone());
        b
    };
    let model_a = make(&repo_a);
    let model_b = make(&repo_b);

    // 10a: TPC-H relative error across test frequencies.
    let tpch = Tpch::with_scale(scale.pick(0.02, 0.25));
    let db = Database::open();
    tpch.load(&db).expect("tpch");
    let reps = scale.pick(3, 5);
    let mut table = Table::new(
        "Fig. 10a — TPC-H avg relative error at unseen CPU frequencies",
        &["freq (GHz)", "train 2.2 only", "train range"],
    );
    for &f in &test_freqs {
        db.set_hw(HardwareProfile::new(f));
        let knobs = Knobs {
            hw: HardwareProfile::new(f),
            ..db.knobs()
        };
        let mut errs = [0.0f64; 2];
        let mut n = 0;
        for (_, sql) in tpch.fixed_queries() {
            let plan = db.prepare(&sql).expect("plan");
            let actual = crate::pipeline::measure_latency_us(&db, &plan, reps).max(1.0);
            let preds = [
                model_a.predict_query_elapsed_us(&plan, &knobs),
                model_b.predict_query_elapsed_us(&plan, &knobs),
            ];
            for (e, p) in errs.iter_mut().zip(preds) {
                *e += (actual - p).abs() / actual;
            }
            n += 1;
        }
        table.row(&[
            format!("{f}"),
            fmt(errs[0] / n as f64),
            fmt(errs[1] / n as f64),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');

    // 10b: TPC-C absolute error across test frequencies.
    let tpcc = Tpcc::small();
    let db2 = Database::open();
    tpcc.load(&db2).expect("tpcc");
    let mut rng = mb2_common::Prng::new(51);
    let mut statements = Vec::new();
    for template in tpcc.template_names() {
        let stmts = tpcc.sample_transaction(template, &mut rng);
        statements.push(stmts[0].clone());
    }
    let mut table = Table::new(
        "Fig. 10b — TPC-C avg absolute error per template (us) at unseen frequencies",
        &["freq (GHz)", "train 2.2 only", "train range"],
    );
    for &f in &test_freqs {
        db2.set_hw(HardwareProfile::new(f));
        let knobs = Knobs {
            hw: HardwareProfile::new(f),
            ..db2.knobs()
        };
        let mut errs = [0.0f64; 2];
        let mut n = 0;
        for sql in &statements {
            let Ok(plan) = db2.prepare(sql) else { continue };
            let actual = crate::pipeline::measure_latency_us(&db2, &plan, reps);
            let preds = [
                model_a.predict_query_elapsed_us(&plan, &knobs),
                model_b.predict_query_elapsed_us(&plan, &knobs),
            ];
            for (e, p) in errs.iter_mut().zip(preds) {
                *e += (actual - p).abs();
            }
            n += 1;
        }
        table.row(&[
            format!("{f}"),
            fmt(errs[0] / n as f64),
            fmt(errs[1] / n as f64),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape (paper Fig. 10): the range-trained model generalizes \
         to unseen frequencies better than the single-frequency model in most \
         cells (the paper also observes occasional inversions on TPC-C).\n",
    );
    out
}
