//! In-memory MVCC row storage.
//!
//! The NoisePage-analog storage layer: tables are segmented slot arrays where
//! each slot holds a newest-first version chain. Transactions (managed by
//! `mb2-txn`) install uncommitted versions tagged with their transaction id,
//! stamp them with a commit timestamp on commit, and unlink them on abort.
//! Visibility follows snapshot isolation: a reader at timestamp `t` sees the
//! newest version whose begin timestamp is committed and `<= t`.

mod proptests;
pub mod table;
pub mod ts;
pub mod version;

pub use table::{
    PartitionedTable, ShardStats, SlotId, Table, TableId, SEGMENT_SIZE, SHARD_UNIT_SLOTS,
};
pub use ts::{Ts, TXN_FLAG};
pub use version::{Version, VersionChain};
