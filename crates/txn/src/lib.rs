//! Transactions and garbage collection.
//!
//! Implements the MVCC transaction manager (snapshot isolation over
//! `mb2-storage` version chains, WAL integration) and the background version
//! garbage collector. These back three of paper Table 1's OUs:
//! **Transaction Begin** and **Transaction Commit** (contending — they
//! serialize on the shared active-transaction table, so their cost grows with
//! arrival rate) and **Garbage Collection** (batch).

pub mod compact;
pub mod gc;
pub mod manager;

pub use compact::{CompactionReport, Compactor};
pub use gc::{GarbageCollector, GcReport};
pub use manager::{Transaction, TxnManager, TxnState};
