//! Model persistence: a line-oriented textual format for every regressor.
//!
//! Trained models save to a self-describing text document (`save_model`) and
//! load back into a `Box<dyn Regressor>` (`load_model`). The format is
//! deliberately simple — one `key value...` record per line, vectors as
//! space-separated decimal floats — so saved models are diffable and stable
//! across versions.

use mb2_common::{DbError, DbResult};

use crate::data::StandardScaler;
use crate::forest::{ForestConfig, RandomForest};
use crate::gbm::{GbmConfig, GradientBoosting};
use crate::kernel::KernelRegression;
use crate::linear::{HuberRegression, LinearRegression};
use crate::nn::MlpRegressor;
use crate::svr::LinearSvr;
use crate::tree::{DecisionTree, Node, TreeConfig};
use crate::Regressor;

// ----------------------------------------------------------------------
// Low-level line writer/reader
// ----------------------------------------------------------------------

/// Line-oriented serialization sink (opaque to implementors outside this
/// crate; constructed only by [`save_model`]).
pub struct Writer {
    out: String,
}

impl Writer {
    fn new() -> Writer {
        Writer { out: String::new() }
    }

    fn line(&mut self, key: &str, values: &[f64]) {
        self.out.push_str(key);
        for v in values {
            self.out.push(' ');
            self.out.push_str(&format!("{v:?}"));
        }
        self.out.push('\n');
    }

    fn tag(&mut self, key: &str) {
        self.out.push_str(key);
        self.out.push('\n');
    }
}

struct Reader<'a> {
    lines: std::iter::Peekable<std::str::Lines<'a>>,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Reader<'a> {
        Reader {
            lines: text.lines().peekable(),
        }
    }

    /// Consume the next line, verifying its key, and return its values.
    fn expect(&mut self, key: &str) -> DbResult<Vec<f64>> {
        let line = self
            .lines
            .next()
            .ok_or_else(|| DbError::Model(format!("model file ended, wanted '{key}'")))?;
        let mut parts = line.split(' ');
        let got = parts.next().unwrap_or("");
        if got != key {
            return Err(DbError::Model(format!("expected '{key}', found '{got}'")));
        }
        parts
            .map(|p| {
                p.parse::<f64>()
                    .map_err(|e| DbError::Model(format!("bad float '{p}' in '{key}': {e}")))
            })
            .collect()
    }

    fn peek_key(&mut self) -> Option<&str> {
        self.lines.peek().map(|l| l.split(' ').next().unwrap_or(""))
    }
}

fn one(values: &[f64], key: &str) -> DbResult<f64> {
    values
        .first()
        .copied()
        .ok_or_else(|| DbError::Model(format!("'{key}' needs a value")))
}

// ----------------------------------------------------------------------
// Scalers and trees
// ----------------------------------------------------------------------

fn write_scaler(w: &mut Writer, prefix: &str, s: &StandardScaler) {
    w.line(&format!("{prefix}.means"), &s.means);
    w.line(&format!("{prefix}.scales"), &s.scales);
}

fn read_scaler(r: &mut Reader<'_>, prefix: &str) -> DbResult<StandardScaler> {
    Ok(StandardScaler {
        means: r.expect(&format!("{prefix}.means"))?,
        scales: r.expect(&format!("{prefix}.scales"))?,
    })
}

fn write_tree(w: &mut Writer, tree: &DecisionTree) {
    w.line("tree.nodes", &[tree.nodes.len() as f64]);
    for node in &tree.nodes {
        match node {
            Node::Leaf { value } => w.line("leaf", value),
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => w.line(
                "split",
                &[*feature as f64, *threshold, *left as f64, *right as f64],
            ),
        }
    }
    w.line("tree.y_means", &tree.y_means);
    w.line("tree.y_scales", &tree.y_scales);
}

fn read_tree(r: &mut Reader<'_>) -> DbResult<DecisionTree> {
    let n = one(&r.expect("tree.nodes")?, "tree.nodes")? as usize;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        match r.peek_key() {
            Some("leaf") => nodes.push(Node::Leaf {
                value: r.expect("leaf")?,
            }),
            Some("split") => {
                let v = r.expect("split")?;
                if v.len() != 4 {
                    return Err(DbError::Model("split needs 4 values".into()));
                }
                nodes.push(Node::Split {
                    feature: v[0] as usize,
                    threshold: v[1],
                    left: v[2] as usize,
                    right: v[3] as usize,
                });
            }
            other => return Err(DbError::Model(format!("unexpected tree line {other:?}"))),
        }
    }
    let y_means = r.expect("tree.y_means")?;
    let y_scales = r.expect("tree.y_scales")?;
    Ok(DecisionTree {
        config: TreeConfig::default(),
        nodes,
        y_means,
        y_scales,
    })
}

fn write_matrix(w: &mut Writer, key: &str, rows: &[Vec<f64>]) {
    w.line(&format!("{key}.rows"), &[rows.len() as f64]);
    for row in rows {
        w.line(key, row);
    }
}

fn read_matrix(r: &mut Reader<'_>, key: &str) -> DbResult<Vec<Vec<f64>>> {
    let n = one(&r.expect(&format!("{key}.rows"))?, key)? as usize;
    (0..n).map(|_| r.expect(key)).collect()
}

// ----------------------------------------------------------------------
// Public API
// ----------------------------------------------------------------------

/// Serialize a trained model to its textual form.
pub fn save_model(model: &dyn SaveableRegressor) -> String {
    let mut w = Writer::new();
    w.tag(&format!("mb2-model {}", model.name()));
    model.write(&mut w);
    w.out
}

/// Load a model saved by [`save_model`].
pub fn load_model(text: &str) -> DbResult<Box<dyn Regressor>> {
    let mut r = Reader::new(text);
    let header = r
        .lines
        .next()
        .ok_or_else(|| DbError::Model("empty model file".into()))?;
    let kind = header
        .strip_prefix("mb2-model ")
        .ok_or_else(|| DbError::Model(format!("bad model header '{header}'")))?;
    match kind {
        "linear_regression" => Ok(Box::new(LinearRegression::read(&mut r)?)),
        "huber_regression" => Ok(Box::new(HuberRegression::read(&mut r)?)),
        "svr" => Ok(Box::new(LinearSvr::read(&mut r)?)),
        "kernel_regression" => Ok(Box::new(KernelRegression::read(&mut r)?)),
        "decision_tree" => Ok(Box::new(read_tree(&mut r)?)),
        "random_forest" => Ok(Box::new(RandomForest::read(&mut r)?)),
        "gradient_boosting" => Ok(Box::new(GradientBoosting::read(&mut r)?)),
        "neural_network" => Ok(Box::new(MlpRegressor::read(&mut r)?)),
        other => Err(DbError::Model(format!("unknown model kind '{other}'"))),
    }
}

/// A regressor that can serialize itself. Implemented by every model in
/// this crate; object-safe so `Box<dyn Regressor>` can be saved through
/// [`crate::selection::SelectionReport`] results.
pub trait SaveableRegressor: Regressor {
    fn write(&self, w: &mut Writer);
}

use Writer as W;

impl SaveableRegressor for LinearRegression {
    fn write(&self, w: &mut W) {
        w.line("lambda", &[self.lambda]);
        write_scaler(w, "x", &self.scaler);
        write_matrix(w, "weights", &self.weights);
    }
}

impl LinearRegression {
    fn read(r: &mut Reader<'_>) -> DbResult<LinearRegression> {
        let mut m = LinearRegression::new(one(&r.expect("lambda")?, "lambda")?);
        m.scaler = read_scaler(r, "x")?;
        m.weights = read_matrix(r, "weights")?;
        Ok(m)
    }
}

impl SaveableRegressor for HuberRegression {
    fn write(&self, w: &mut W) {
        w.line("delta", &[self.delta]);
        w.line("lambda", &[self.lambda]);
        write_scaler(w, "x", &self.scaler);
        write_matrix(w, "weights", &self.weights);
    }
}

impl HuberRegression {
    fn read(r: &mut Reader<'_>) -> DbResult<HuberRegression> {
        let delta = one(&r.expect("delta")?, "delta")?;
        let lambda = one(&r.expect("lambda")?, "lambda")?;
        let mut m = HuberRegression::new(delta, lambda);
        m.scaler = read_scaler(r, "x")?;
        m.weights = read_matrix(r, "weights")?;
        Ok(m)
    }
}

impl SaveableRegressor for LinearSvr {
    fn write(&self, w: &mut W) {
        w.line("epsilon", &[self.epsilon]);
        w.line("c", &[self.c]);
        write_scaler(w, "x", &self.x_scaler);
        w.line("y_means", &self.y_means);
        w.line("y_scales", &self.y_scales);
        write_matrix(w, "weights", &self.weights);
    }
}

impl LinearSvr {
    fn read(r: &mut Reader<'_>) -> DbResult<LinearSvr> {
        let epsilon = one(&r.expect("epsilon")?, "epsilon")?;
        let c = one(&r.expect("c")?, "c")?;
        let mut m = LinearSvr::new(epsilon, c, 0);
        m.x_scaler = read_scaler(r, "x")?;
        m.y_means = r.expect("y_means")?;
        m.y_scales = r.expect("y_scales")?;
        m.weights = read_matrix(r, "weights")?;
        Ok(m)
    }
}

impl SaveableRegressor for KernelRegression {
    fn write(&self, w: &mut W) {
        w.line("bandwidth", &[self.bandwidth]);
        write_scaler(w, "x", &self.scaler);
        write_matrix(w, "ref_x", &self.ref_x);
        write_matrix(w, "ref_y", &self.ref_y);
    }
}

impl KernelRegression {
    fn read(r: &mut Reader<'_>) -> DbResult<KernelRegression> {
        let bandwidth = one(&r.expect("bandwidth")?, "bandwidth")?;
        let mut m = KernelRegression::new(bandwidth, usize::MAX);
        m.scaler = read_scaler(r, "x")?;
        m.ref_x = read_matrix(r, "ref_x")?;
        m.ref_y = read_matrix(r, "ref_y")?;
        Ok(m)
    }
}

impl SaveableRegressor for DecisionTree {
    fn write(&self, w: &mut W) {
        write_tree(w, self);
    }
}

impl SaveableRegressor for RandomForest {
    fn write(&self, w: &mut W) {
        w.line("n_trees", &[self.trees.len() as f64]);
        for tree in &self.trees {
            write_tree(w, tree);
        }
    }
}

impl RandomForest {
    fn read(r: &mut Reader<'_>) -> DbResult<RandomForest> {
        let n = one(&r.expect("n_trees")?, "n_trees")? as usize;
        let mut forest = RandomForest::new(ForestConfig::default());
        forest.trees = (0..n).map(|_| read_tree(r)).collect::<DbResult<_>>()?;
        Ok(forest)
    }
}

impl SaveableRegressor for GradientBoosting {
    fn write(&self, w: &mut W) {
        w.line("learning_rate", &[self.config.learning_rate]);
        w.line("base", &self.base);
        w.line("n_outputs", &[self.stages.len() as f64]);
        for stage in &self.stages {
            w.line("n_trees", &[stage.len() as f64]);
            for tree in stage {
                write_tree(w, tree);
            }
        }
    }
}

impl GradientBoosting {
    fn read(r: &mut Reader<'_>) -> DbResult<GradientBoosting> {
        let lr = one(&r.expect("learning_rate")?, "learning_rate")?;
        let mut gbm = GradientBoosting::new(GbmConfig {
            learning_rate: lr,
            ..GbmConfig::default()
        });
        gbm.base = r.expect("base")?;
        let n_outputs = one(&r.expect("n_outputs")?, "n_outputs")? as usize;
        gbm.stages = (0..n_outputs)
            .map(|_| {
                let n = one(&r.expect("n_trees")?, "n_trees")? as usize;
                (0..n).map(|_| read_tree(r)).collect::<DbResult<Vec<_>>>()
            })
            .collect::<DbResult<_>>()?;
        Ok(gbm)
    }
}

impl SaveableRegressor for MlpRegressor {
    fn write(&self, w: &mut W) {
        write_scaler(w, "x", &self.x_scaler);
        w.line("y_means", &self.y_means);
        w.line("y_scales", &self.y_scales);
        let net = self.net.as_ref().expect("save of untrained mlp");
        w.line("n_layers", &[net.layers.len() as f64]);
        for layer in &net.layers {
            w.line("dims", &[layer.in_dim as f64, layer.out_dim as f64]);
            w.line("w", &layer.w);
            w.line("b", &layer.b);
        }
    }
}

impl MlpRegressor {
    fn read(r: &mut Reader<'_>) -> DbResult<MlpRegressor> {
        let mut m = MlpRegressor::new(Vec::new(), 0);
        m.x_scaler = read_scaler(r, "x")?;
        m.y_means = r.expect("y_means")?;
        m.y_scales = r.expect("y_scales")?;
        let n_layers = one(&r.expect("n_layers")?, "n_layers")? as usize;
        let mut layers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            let dims = r.expect("dims")?;
            if dims.len() != 2 {
                return Err(DbError::Model("dims needs 2 values".into()));
            }
            let w = r.expect("w")?;
            let b = r.expect("b")?;
            layers.push(crate::nn::Dense::from_params(
                dims[0] as usize,
                dims[1] as usize,
                w,
                b,
            )?);
        }
        m.net = Some(crate::nn::Mlp { layers });
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::Prng;

    fn data() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut rng = Prng::new(2);
        let x: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.next_f64() * 8.0, rng.next_f64() * 3.0])
            .collect();
        let y: Vec<Vec<f64>> = x
            .iter()
            .map(|r| vec![2.0 * r[0] + r[1] * r[1], r[0] - r[1]])
            .collect();
        (x, y)
    }

    fn round_trip(model: &dyn SaveableRegressor, x: &[Vec<f64>]) {
        let text = save_model(model);
        let loaded = load_model(&text).unwrap();
        assert_eq!(loaded.name(), model.name());
        for row in x.iter().take(20) {
            let a = model.predict_one(row);
            let b = loaded.predict_one(row);
            for (p, q) in a.iter().zip(&b) {
                assert!(
                    (p - q).abs() < 1e-9 * p.abs().max(1.0),
                    "{}: {p} vs {q}",
                    model.name()
                );
            }
        }
    }

    #[test]
    fn every_model_round_trips() {
        let (x, y) = data();
        let mut linear = LinearRegression::default();
        linear.fit(&x, &y).unwrap();
        round_trip(&linear, &x);

        let mut huber = HuberRegression::default();
        huber.fit(&x, &y).unwrap();
        round_trip(&huber, &x);

        let mut svr = LinearSvr {
            epochs: 10,
            ..LinearSvr::default()
        };
        svr.fit(&x, &y).unwrap();
        round_trip(&svr, &x);

        let mut kernel = KernelRegression::default();
        kernel.fit(&x, &y).unwrap();
        round_trip(&kernel, &x);

        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&x, &y).unwrap();
        round_trip(&tree, &x);

        let mut forest = RandomForest::new(ForestConfig {
            n_estimators: 5,
            ..ForestConfig::default()
        });
        forest.fit(&x, &y).unwrap();
        round_trip(&forest, &x);

        let mut gbm = GradientBoosting::new(GbmConfig {
            n_estimators: 5,
            ..GbmConfig::default()
        });
        gbm.fit(&x, &y).unwrap();
        round_trip(&gbm, &x);

        let mut mlp = MlpRegressor::new(vec![8], 20);
        mlp.fit(&x, &y).unwrap();
        round_trip(&mlp, &x);
    }

    #[test]
    fn corrupt_input_is_an_error() {
        assert!(load_model("").is_err());
        assert!(load_model("mb2-model nonsense\n").is_err());
        assert!(load_model("mb2-model linear_regression\nlambda not-a-float\n").is_err());
        // Truncated body.
        let (x, y) = data();
        let mut linear = LinearRegression::default();
        linear.fit(&x, &y).unwrap();
        let text = save_model(&linear);
        let truncated: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
        assert!(load_model(&truncated).is_err());
    }
}
