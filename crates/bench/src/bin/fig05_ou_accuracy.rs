//! Regenerates one paper result; see `mb2_bench::experiments::fig05_ou_accuracy`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::fig05_ou_accuracy::run(scale);
    mb2_bench::report::emit("fig05_ou_accuracy", &report);
}
