//! Span-style timing that is near-free when observability is off.
//!
//! A [`SpanTimer`] wraps the "read the clock twice, record the difference"
//! pattern. When the owning registry is disabled (the paper's turn-off-the-
//! tracker mode), [`MetricsRegistry::span`] hands out a dead timer: no
//! `Instant::now()` call is made at either end, so the entire cost of an
//! instrumented span collapses to one relaxed atomic load.
//!
//! [`MetricsRegistry::span`]: crate::registry::MetricsRegistry::span

use std::time::Instant;

use crate::histogram::Histogram;

/// An in-flight timed span. Obtain from [`MetricsRegistry::span`] (gated on
/// the enable flag) or [`SpanTimer::started`] (always live).
///
/// [`MetricsRegistry::span`]: crate::registry::MetricsRegistry::span
#[derive(Debug)]
pub struct SpanTimer {
    start: Option<Instant>,
}

impl SpanTimer {
    /// A live timer: the clock is read now.
    #[inline]
    pub fn started() -> SpanTimer {
        SpanTimer {
            start: Some(Instant::now()),
        }
    }

    /// A dead timer: both ends are no-ops.
    #[inline]
    pub fn disabled() -> SpanTimer {
        SpanTimer { start: None }
    }

    /// Whether this timer is live.
    pub fn is_live(&self) -> bool {
        self.start.is_some()
    }

    /// Close the span into `histogram` (elapsed microseconds). Returns the
    /// recorded value, or `None` for a dead timer.
    #[inline]
    pub fn observe(self, histogram: &Histogram) -> Option<u64> {
        let start = self.start?;
        let us = start.elapsed().as_micros() as u64;
        histogram.record(us);
        Some(us)
    }

    /// Elapsed microseconds without recording (`None` for a dead timer).
    pub fn elapsed_us(&self) -> Option<u64> {
        self.start.map(|s| s.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_span_records() {
        let h = Histogram::new();
        let t = SpanTimer::started();
        assert!(t.is_live());
        let v = t.observe(&h);
        assert!(v.is_some());
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn dead_span_is_a_noop() {
        let h = Histogram::new();
        let t = SpanTimer::disabled();
        assert!(!t.is_live());
        assert_eq!(t.observe(&h), None);
        assert_eq!(h.count(), 0);
    }
}
