//! Ordered secondary indexes: an in-memory B+Tree plus the parallel
//! sort-merge bulk builder behind the **Index Build** contending OU.
//!
//! Keys are composite [`Value`] vectors ordered by `Value::cmp_total`.
//! Values are generic (the catalog instantiates trees over tuple slot ids).
//! The tree itself is single-writer / multi-reader behind a `RwLock` in
//! [`Index`]; parallel builds scale via per-thread partition sorting followed
//! by a k-way merge and a bulk load, with latch acquisitions on a shared
//! progress structure providing the contention the OU's thread-count feature
//! models.

pub mod btree;
pub mod build;
pub mod obs;

pub use btree::BPlusTree;
pub use build::{parallel_build, parallel_build_observed, BuildReport};
pub use obs::IndexObs;

use std::sync::Arc;

use parking_lot::{RwLock, RwLockWriteGuard};

use mb2_common::Value;

/// A thread-safe ordered index from composite keys to values.
pub struct Index<V: Clone> {
    pub name: String,
    /// Column positions (in the base table) forming the key.
    pub key_columns: Vec<usize>,
    tree: RwLock<BPlusTree<V>>,
    /// Latch instrumentation; `None` means uninstrumented (zero overhead).
    obs: Option<Arc<IndexObs>>,
}

impl<V: Clone> Index<V> {
    pub fn new(name: impl Into<String>, key_columns: Vec<usize>) -> Index<V> {
        Index {
            name: name.into(),
            key_columns,
            tree: RwLock::new(BPlusTree::new()),
            obs: None,
        }
    }

    /// Like [`Index::new`], but counting write-latch acquisitions and
    /// contention into `obs`.
    pub fn with_obs(
        name: impl Into<String>,
        key_columns: Vec<usize>,
        obs: Option<Arc<IndexObs>>,
    ) -> Index<V> {
        Index {
            name: name.into(),
            key_columns,
            tree: RwLock::new(BPlusTree::new()),
            obs,
        }
    }

    /// Take the write latch, counting the acquisition — and, when the latch
    /// is already held, the contention — into `obs`.
    fn write_tree(&self) -> RwLockWriteGuard<'_, BPlusTree<V>> {
        if let Some(obs) = &self.obs {
            obs.latch_acquires.inc();
            match self.tree.try_write() {
                Some(guard) => return guard,
                None => obs.latch_contended.inc(),
            }
        }
        self.tree.write()
    }

    /// Extract this index's key from a full base-table tuple.
    pub fn key_of(&self, tuple: &[Value]) -> Vec<Value> {
        self.key_columns.iter().map(|&i| tuple[i].clone()).collect()
    }

    pub fn insert(&self, key: Vec<Value>, value: V) {
        self.write_tree().insert(key, value);
    }

    pub fn remove(&self, key: &[Value], pred: impl Fn(&V) -> bool) -> usize {
        self.write_tree().remove(key, pred)
    }

    /// All values for an exact key.
    pub fn get(&self, key: &[Value]) -> Vec<V> {
        self.tree.read().get(key)
    }

    /// Visit every (key, value) with `lo <= key <= hi`; return `false` from
    /// the callback to stop.
    pub fn range(&self, lo: &[Value], hi: &[Value], f: impl FnMut(&[Value], &V) -> bool) {
        self.tree.read().range(lo, hi, f)
    }

    /// Prefix-range scan (see [`BPlusTree::range_prefix`]): bounds shorter
    /// than the key compare on their own length only.
    pub fn range_prefix(&self, lo: &[Value], hi: &[Value], f: impl FnMut(&[Value], &V) -> bool) {
        self.tree.read().range_prefix(lo, hi, f)
    }

    pub fn len(&self) -> usize {
        self.tree.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replace the tree wholesale (bulk build).
    pub fn replace_tree(&self, tree: BPlusTree<V>) {
        *self.write_tree() = tree;
    }

    /// Approximate memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.tree.read().approx_bytes()
    }
}
