//! Server lifecycle: handshake, admission control, idle timeout, and
//! graceful drain-then-shutdown.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mb2_common::DbError;
use mb2_engine::{Database, DatabaseConfig};
use mb2_server::{Client, Server, ServerConfig};

fn start_server(db_cfg: DatabaseConfig, srv_cfg: ServerConfig) -> Server {
    let db = Arc::new(Database::new(db_cfg).expect("database"));
    Server::start(db, srv_cfg).expect("server start")
}

fn addr_of(server: &Server) -> String {
    server.local_addr().to_string()
}

#[test]
fn handshake_and_query_roundtrip() {
    let server = start_server(DatabaseConfig::default(), ServerConfig::default());
    let mut client = Client::connect(addr_of(&server)).expect("connect");

    client.query("CREATE TABLE t (id INT, v INT)").expect("ddl");
    let ins = client
        .query("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
        .expect("insert");
    assert_eq!(ins.count, 3);

    let resp = client
        .query("SELECT id, v FROM t ORDER BY id")
        .expect("select");
    assert_eq!(resp.count, 3);
    assert_eq!(resp.rows.len(), 3);

    // Typed engine errors arrive in-band and leave the connection usable.
    let err = client.query("SELECT * FROM missing").unwrap_err();
    assert!(matches!(err, DbError::Catalog(_)), "got {err:?}");
    let resp = client
        .query("SELECT id FROM t WHERE id = 2")
        .expect("after error");
    assert_eq!(resp.rows.len(), 1);

    server.shutdown();
}

#[test]
fn explicit_transactions_span_requests() {
    let server = start_server(DatabaseConfig::default(), ServerConfig::default());
    let addr = addr_of(&server);
    let mut writer = Client::connect(&addr).expect("connect");
    writer.query("CREATE TABLE acct (id INT, bal INT)").unwrap();
    writer.query("INSERT INTO acct VALUES (1, 100)").unwrap();

    writer.query("BEGIN").unwrap();
    writer
        .query("UPDATE acct SET bal = 50 WHERE id = 1")
        .unwrap();

    // Snapshot isolation: a second connection (its own session) must not
    // see the uncommitted write.
    let mut reader = Client::connect(&addr).expect("connect 2");
    let before = reader.query("SELECT bal FROM acct WHERE id = 1").unwrap();
    assert_eq!(before.rows, vec![vec![mb2_common::Value::Int(100)]]);

    writer.query("COMMIT").unwrap();
    let after = reader.query("SELECT bal FROM acct WHERE id = 1").unwrap();
    assert_eq!(after.rows, vec![vec![mb2_common::Value::Int(50)]]);

    server.shutdown();
}

#[test]
fn connection_limit_rejects_with_typed_busy() {
    let server = start_server(
        DatabaseConfig::default(),
        ServerConfig {
            max_connections: 2,
            ..ServerConfig::default()
        },
    );
    let addr = addr_of(&server);
    let _c1 = Client::connect(&addr).expect("conn 1");
    let _c2 = Client::connect(&addr).expect("conn 2");
    let err = match Client::connect(&addr) {
        Ok(_) => panic!("third connection must be shed"),
        Err(e) => e,
    };
    assert!(matches!(err, DbError::ServerBusy(_)), "got {err:?}");
    server.shutdown();
}

#[test]
fn overload_sheds_queries_with_server_busy_not_queueing() {
    let server = start_server(
        DatabaseConfig::default(),
        ServerConfig {
            max_inflight_queries: 2,
            ..ServerConfig::default()
        },
    );
    let addr = addr_of(&server);

    // Seed a table big enough that a scan occupies its permit for a
    // measurable time.
    {
        let mut admin = Client::connect(&addr).expect("admin");
        admin.query("CREATE TABLE big (id INT, v INT)").unwrap();
        for chunk in 0..40 {
            let rows: Vec<String> = (0..250)
                .map(|i| format!("({}, {})", chunk * 250 + i, i % 97))
                .collect();
            admin
                .query(&format!("INSERT INTO big VALUES {}", rows.join(", ")))
                .unwrap();
        }
    }

    let busy = Arc::new(AtomicUsize::new(0));
    let ok = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            let busy = busy.clone();
            let ok = ok.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("client");
                let deadline = Instant::now() + Duration::from_millis(400);
                while Instant::now() < deadline {
                    match c.query("SELECT COUNT(*), SUM(v) FROM big") {
                        Ok(resp) => {
                            assert_eq!(resp.rows.len(), 1);
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(DbError::ServerBusy(_)) => {
                            busy.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error: {e:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let busy = busy.load(Ordering::Relaxed);
    let ok = ok.load(Ordering::Relaxed);
    assert!(ok > 0, "some queries must be admitted");
    assert!(
        busy > 0,
        "8 clients against max_inflight_queries=2 must trip admission control (ok={ok})"
    );

    // Rejections are visible in the registry, and rejected work was never
    // queued: the in-flight gauge cannot exceed the bound.
    let prom = server.db().metrics_prometheus();
    let rejected = prom
        .lines()
        .find(|l| l.starts_with("mb2_server_queries_rejected_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse::<f64>().ok())
        .expect("rejected counter exported");
    assert!(rejected >= busy as f64);
    server.shutdown();
}

#[test]
fn idle_connections_are_closed_after_timeout() {
    let server = start_server(
        DatabaseConfig::default(),
        ServerConfig {
            idle_timeout: Duration::from_millis(100),
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(addr_of(&server)).expect("connect");
    client.query("CREATE TABLE t (id INT)").unwrap();
    std::thread::sleep(Duration::from_millis(400));
    let err = client
        .query("SELECT * FROM t")
        .expect_err("idle-timed-out connection must not serve");
    assert!(matches!(err, DbError::Net(_)), "got {err:?}");
    server.shutdown();
}

/// The headline drain requirement: with the GC and WAL flusher parked in
/// 30-second waits and idle clients connected, a full drain-then-shutdown
/// (server workers + acceptor + engine background threads) completes in
/// under 250ms. Exercises both the condvar-interruptible background waits
/// and the server's poll-based workers.
#[test]
fn graceful_shutdown_drains_and_joins_quickly() {
    let mut db_cfg = DatabaseConfig {
        gc_interval: Some(Duration::from_secs(30)),
        wal_background: true,
        ..DatabaseConfig::default()
    };
    db_cfg.knobs.wal_flush_interval = Duration::from_secs(30);
    let server = start_server(
        db_cfg,
        ServerConfig {
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        },
    );
    let addr = addr_of(&server);

    let mut clients: Vec<Client> = (0..4)
        .map(|_| Client::connect(&addr).expect("connect"))
        .collect();
    clients[0].query("CREATE TABLE t (id INT, v INT)").unwrap();
    for (i, c) in clients.iter_mut().enumerate() {
        c.query(&format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
    }
    // Leave all four connections open and idle; drain must not wait for
    // them to disconnect on their own.
    let started = Instant::now();
    server.shutdown();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(250),
        "drain-then-shutdown took {elapsed:?} (budget 250ms)"
    );
}

#[test]
fn shutdown_finishes_inflight_query_before_closing() {
    let server = start_server(DatabaseConfig::default(), ServerConfig::default());
    let addr = addr_of(&server);
    {
        let mut admin = Client::connect(&addr).expect("admin");
        admin.query("CREATE TABLE big (id INT, v INT)").unwrap();
        for chunk in 0..40 {
            let rows: Vec<String> = (0..250)
                .map(|i| format!("({}, {})", chunk * 250 + i, i))
                .collect();
            admin
                .query(&format!("INSERT INTO big VALUES {}", rows.join(", ")))
                .unwrap();
        }
    }

    // Run scans continuously on a worker thread while the main thread
    // shuts the server down: every query must either complete correctly
    // or fail with a network error (connection closed between requests) —
    // never a torn result.
    let worker = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("client");
            let mut completed = 0u32;
            loop {
                match c.query("SELECT COUNT(*) FROM big") {
                    Ok(resp) => {
                        assert_eq!(resp.rows, vec![vec![mb2_common::Value::Int(10_000)]]);
                        completed += 1;
                    }
                    Err(DbError::Net(_)) => return completed,
                    Err(e) => panic!("unexpected error: {e:?}"),
                }
            }
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();
    let completed = worker.join().unwrap();
    assert!(
        completed > 0,
        "worker should have completed queries before drain"
    );
}
