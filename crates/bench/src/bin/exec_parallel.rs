//! Morsel-parallel throughput; see `mb2_bench::experiments::exec_parallel`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::exec_parallel::run(scale);
    mb2_bench::report::emit("exec_parallel", &report);
}
