//! Differential test: the batch pipeline vs a row-at-a-time oracle.
//!
//! The oracle is an independent interpreter over the physical plan that
//! materializes every operator fully (the pre-batching execution model) and
//! accounts per-OU tuple/byte work with the documented formulas. For every
//! randomized query, at several batch sizes, the pipeline must produce
//! byte-identical result rows — and, for LIMIT-free queries, per-(node, OU)
//! tuple/byte features identical to the oracle's totals (LIMIT legitimately
//! changes features: early termination is the optimization).

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mb2_catalog::Catalog;
use mb2_common::types::{tuple_size_bytes, Tuple};
use mb2_common::{Column, Metrics, OuKind, Prng, Schema, Value};
use mb2_exec::{execute, ExecContext, ExecPool, OuRecorder, WorkCounts};
use mb2_sql::plan::{AggSpec, OutputSink, SortKey};
use mb2_sql::{parse, AggFunc, BoundExpr, PlanNode, Planner, Statement};
use mb2_storage::SHARD_UNIT_SLOTS;
use mb2_txn::{Compactor, GarbageCollector, TxnManager};

// ----------------------------------------------------------------------
// Harness
// ----------------------------------------------------------------------

struct Harness {
    catalog: Catalog,
    txns: Arc<TxnManager>,
    shard_count: usize,
}

impl Harness {
    fn with_shards(shard_count: usize) -> Harness {
        Harness {
            catalog: Catalog::new(),
            txns: TxnManager::new(None),
            shard_count,
        }
    }

    fn ddl(&self, sql: &str) {
        match parse(sql).unwrap() {
            Statement::CreateTable { name, columns } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|c| {
                            let mut col = Column::new(c.name, c.ty);
                            if let Some(len) = c.varchar_len {
                                col = col.with_varchar_len(len);
                            }
                            col
                        })
                        .collect(),
                );
                self.catalog
                    .create_table_with_shards(&name, schema, self.shard_count)
                    .unwrap();
            }
            other => panic!("not ddl: {other:?}"),
        }
    }

    fn run(&self, sql: &str) {
        let stmt = parse(sql).unwrap();
        let plan = Planner::new(&self.catalog).plan(&stmt).unwrap();
        let mut txn = self.txns.begin();
        {
            let mut ctx = ExecContext::new(&self.catalog, &mut txn);
            execute(&plan, &mut ctx).unwrap();
        }
        txn.commit().unwrap();
    }

    fn plan(&self, sql: &str) -> PlanNode {
        let stmt = parse(sql).unwrap();
        Planner::new(&self.catalog).plan(&stmt).unwrap()
    }
}

/// Per-(node, OU) tuple/byte work totals.
type Feats = HashMap<(u32, OuKind), (u64, u64)>;

#[derive(Default)]
struct WorkRec(Mutex<Feats>);

impl OuRecorder for WorkRec {
    fn record(&self, _: u32, _: OuKind, _: Metrics) {}
    fn record_work(&self, id: u32, ou: OuKind, w: WorkCounts) {
        let mut m = self.0.lock();
        let e = m.entry((id, ou)).or_insert((0, 0));
        e.0 += w.tuples;
        e.1 += w.bytes;
    }
}

/// Morsel size for parallel runs: small enough that the 157-row table
/// splits into several morsels (the default 2048 would leave every test
/// table single-morsel, silently exercising the serial path).
const TEST_MORSEL_SLOTS: usize = 32;

fn run_engine(h: &Harness, plan: &PlanNode, batch_size: usize) -> (Vec<Tuple>, Feats) {
    run_engine_pooled(h, plan, batch_size, None)
}

fn run_engine_pooled(
    h: &Harness,
    plan: &PlanNode,
    batch_size: usize,
    pool: Option<&Arc<ExecPool>>,
) -> (Vec<Tuple>, Feats) {
    run_engine_cfg(h, plan, batch_size, pool, false)
}

fn run_engine_cfg(
    h: &Harness,
    plan: &PlanNode,
    batch_size: usize,
    pool: Option<&Arc<ExecPool>>,
    columnar: bool,
) -> (Vec<Tuple>, Feats) {
    let rec = WorkRec::default();
    let mut txn = h.txns.begin();
    let rows = {
        let mut ctx = ExecContext::new(&h.catalog, &mut txn)
            .with_recorder(&rec)
            .with_batch_size(batch_size)
            .with_morsel_slots(TEST_MORSEL_SLOTS)
            .with_columnar(columnar);
        if let Some(pool) = pool {
            ctx = ctx.with_pool(pool.clone());
        }
        execute(plan, &mut ctx).unwrap().rows
    };
    txn.commit().unwrap();
    (rows, rec.0.into_inner())
}

// ----------------------------------------------------------------------
// Row-at-a-time oracle
// ----------------------------------------------------------------------

struct Oracle<'a> {
    h: &'a Harness,
    feats: Feats,
}

impl<'a> Oracle<'a> {
    fn run(h: &'a Harness, plan: &PlanNode) -> (Vec<Tuple>, Feats) {
        let mut o = Oracle {
            h,
            feats: HashMap::new(),
        };
        let rows = o.eval_node(plan, 0);
        (rows, o.feats)
    }

    fn add(&mut self, id: u32, ou: OuKind, tuples: u64, bytes: u64) {
        let e = self.feats.entry((id, ou)).or_insert((0, 0));
        e.0 += tuples;
        e.1 += bytes;
    }

    fn eval_expr(row: &[Value], e: &BoundExpr) -> Value {
        e.eval(row).unwrap()
    }

    fn eval_pred(row: &[Value], e: &BoundExpr) -> bool {
        match Self::eval_expr(row, e) {
            Value::Null => false,
            v => v.as_bool().unwrap(),
        }
    }

    fn bytes_of(rows: &[Tuple]) -> u64 {
        rows.iter().map(|r| tuple_size_bytes(r) as u64).sum()
    }

    fn subtree(node: &PlanNode) -> u32 {
        1 + node
            .children()
            .iter()
            .map(|c| Self::subtree(c))
            .sum::<u32>()
    }

    fn eval_node(&mut self, node: &PlanNode, id: u32) -> Vec<Tuple> {
        match node {
            PlanNode::SeqScan { table, filter, .. } => {
                let entry = self.h.catalog.get(table).unwrap();
                let txn = self.h.txns.begin();
                let mut rows: Vec<Tuple> = Vec::new();
                entry.table.scan_visible(txn.read_ts(), txn.id(), |_, t| {
                    rows.push(t.clone());
                    true
                });
                txn.commit().unwrap();
                self.add(
                    id,
                    OuKind::SeqScan,
                    rows.len() as u64,
                    Self::bytes_of(&rows),
                );
                if let Some(f) = filter {
                    let n_in = rows.len() as u64;
                    rows.retain(|r| Self::eval_pred(r, f));
                    self.add(id, OuKind::ArithmeticFilter, n_in, 0);
                }
                rows
            }
            PlanNode::HashJoin {
                build,
                probe,
                build_keys,
                probe_keys,
                filter,
                ..
            } => {
                let build_id = id + 1;
                let probe_id = id + 1 + Self::subtree(build);
                let build_rows = self.eval_node(build, build_id);
                let probe_rows = self.eval_node(probe, probe_id);
                self.add(
                    id,
                    OuKind::JoinHashBuild,
                    build_rows.len() as u64,
                    Self::bytes_of(&build_rows),
                );
                // Match via linear key comparison (independent of the
                // engine's hash table) but emit in the same probe-major,
                // build-insertion-order sequence.
                let mut out: Vec<Tuple> = Vec::new();
                for p in &probe_rows {
                    let pk: Vec<&Value> = probe_keys.iter().map(|&k| &p[k]).collect();
                    for b in &build_rows {
                        let bk: Vec<&Value> = build_keys.iter().map(|&k| &b[k]).collect();
                        if pk == bk {
                            let mut combined = p.clone();
                            combined.extend(b.iter().cloned());
                            out.push(combined);
                        }
                    }
                }
                self.add(
                    id,
                    OuKind::JoinHashProbe,
                    probe_rows.len() as u64,
                    Self::bytes_of(&probe_rows) + Self::bytes_of(&out),
                );
                if let Some(f) = filter {
                    let n_in = out.len() as u64;
                    out.retain(|r| Self::eval_pred(r, f));
                    self.add(id, OuKind::ArithmeticFilter, n_in, 0);
                }
                out
            }
            PlanNode::NestedLoopJoin {
                outer,
                inner,
                filter,
                ..
            } => {
                let outer_id = id + 1;
                let inner_id = id + 1 + Self::subtree(outer);
                let outer_rows = self.eval_node(outer, outer_id);
                let inner_rows = self.eval_node(inner, inner_id);
                let mut out = Vec::new();
                for o in &outer_rows {
                    for i in &inner_rows {
                        let mut combined = o.clone();
                        combined.extend(i.iter().cloned());
                        let pass = match filter {
                            Some(f) => Self::eval_pred(&combined, f),
                            None => true,
                        };
                        if pass {
                            out.push(combined);
                        }
                    }
                }
                let pairs = outer_rows.len() as u64 * inner_rows.len() as u64;
                self.add(id, OuKind::ArithmeticFilter, pairs, 0);
                out
            }
            PlanNode::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => {
                let rows = self.eval_node(input, id + 1);
                self.add(
                    id,
                    OuKind::AggBuild,
                    rows.len() as u64,
                    Self::bytes_of(&rows),
                );
                // Group with linear key search (independent of HashMap),
                // then fold each aggregate over the group's rows in input
                // order (same fold order as the engine, so float sums are
                // bit-identical).
                let mut groups: Vec<(Vec<Value>, Vec<Tuple>)> = Vec::new();
                for row in &rows {
                    let key: Vec<Value> =
                        group_by.iter().map(|g| Self::eval_expr(row, g)).collect();
                    match groups.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, members)) => members.push(row.clone()),
                        None => groups.push((key, vec![row.clone()])),
                    }
                }
                if groups.is_empty() && group_by.is_empty() {
                    groups.push((Vec::new(), Vec::new()));
                }
                let mut out: Vec<Tuple> = Vec::new();
                for (key, members) in groups {
                    let mut row = key;
                    for spec in aggs {
                        row.push(Self::fold_agg(spec, &members));
                    }
                    out.push(row);
                }
                self.add(id, OuKind::AggProbe, out.len() as u64, Self::bytes_of(&out));
                out
            }
            PlanNode::Filter {
                input, predicate, ..
            } => {
                let mut rows = self.eval_node(input, id + 1);
                let n_in = rows.len() as u64;
                rows.retain(|r| Self::eval_pred(r, predicate));
                self.add(id, OuKind::ArithmeticFilter, n_in, 0);
                rows
            }
            PlanNode::Sort { input, keys, .. } => {
                let rows = self.eval_node(input, id + 1);
                let bytes = Self::bytes_of(&rows);
                let n = rows.len() as u64;
                let mut keyed: Vec<(Vec<Value>, Tuple)> = rows
                    .into_iter()
                    .map(|r| {
                        let k: Vec<Value> = keys
                            .iter()
                            .map(|sk| Self::eval_expr(&r, &sk.expr))
                            .collect();
                        (k, r)
                    })
                    .collect();
                keyed.sort_by(|a, b| Self::cmp_keyed(a, b, keys));
                self.add(id, OuKind::SortBuild, n, bytes);
                self.add(id, OuKind::SortIter, n, bytes);
                keyed.into_iter().map(|(_, r)| r).collect()
            }
            PlanNode::Project { input, exprs, .. } => {
                let rows = self.eval_node(input, id + 1);
                self.add(id, OuKind::ArithmeticFilter, rows.len() as u64, 0);
                rows.iter()
                    .map(|r| exprs.iter().map(|e| Self::eval_expr(r, e)).collect())
                    .collect()
            }
            PlanNode::Limit { input, n, .. } => {
                let mut rows = self.eval_node(input, id + 1);
                rows.truncate(*n);
                rows
            }
            PlanNode::Output { input, sink, .. } => {
                let rows = self.eval_node(input, id + 1);
                let bytes = Self::bytes_of(&rows);
                match sink {
                    OutputSink::Client => {
                        self.add(id, OuKind::OutputResult, rows.len() as u64, bytes);
                        rows
                    }
                    OutputSink::Discard => {
                        self.add(id, OuKind::OutputResult, 0, bytes);
                        Vec::new()
                    }
                }
            }
            other => panic!("oracle cannot evaluate {}", other.label()),
        }
    }

    fn cmp_keyed(
        a: &(Vec<Value>, Tuple),
        b: &(Vec<Value>, Tuple),
        keys: &[SortKey],
    ) -> std::cmp::Ordering {
        for (i, k) in keys.iter().enumerate() {
            let ord = a.0[i].cmp_total(&b.0[i]);
            let ord = if k.desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        for (x, y) in a.1.iter().zip(&b.1) {
            let ord = x.cmp_total(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    }

    fn fold_agg(spec: &AggSpec, rows: &[Tuple]) -> Value {
        let arg =
            |row: &Tuple| -> Option<Value> { spec.arg.as_ref().map(|e| Self::eval_expr(row, e)) };
        match spec.func {
            AggFunc::Count => {
                let mut c = 0i64;
                for row in rows {
                    match arg(row) {
                        Some(v) if v.is_null() => {}
                        _ => c += 1,
                    }
                }
                Value::Int(c)
            }
            AggFunc::Sum => {
                let mut total = 0.0f64;
                let mut all_int = true;
                let mut seen = false;
                for row in rows {
                    if let Some(v) = arg(row) {
                        if !v.is_null() {
                            if !matches!(v, Value::Int(_)) {
                                all_int = false;
                            }
                            total += v.as_f64().unwrap();
                            seen = true;
                        }
                    }
                }
                if !seen {
                    Value::Null
                } else if all_int {
                    Value::Int(total as i64)
                } else {
                    Value::Float(total)
                }
            }
            AggFunc::Avg => {
                let mut total = 0.0f64;
                let mut n = 0i64;
                for row in rows {
                    if let Some(v) = arg(row) {
                        if !v.is_null() {
                            total += v.as_f64().unwrap();
                            n += 1;
                        }
                    }
                }
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(total / n as f64)
                }
            }
            AggFunc::Min | AggFunc::Max => {
                let mut best: Option<Value> = None;
                for row in rows {
                    if let Some(v) = arg(row) {
                        if v.is_null() {
                            continue;
                        }
                        let better = match &best {
                            None => true,
                            Some(cur) => {
                                let ord = v.cmp_total(cur);
                                if spec.func == AggFunc::Min {
                                    ord == std::cmp::Ordering::Less
                                } else {
                                    ord == std::cmp::Ordering::Greater
                                }
                            }
                        };
                        if better {
                            best = Some(v);
                        }
                    }
                }
                best.unwrap_or(Value::Null)
            }
        }
    }
}

// ----------------------------------------------------------------------
// Test driver
// ----------------------------------------------------------------------

fn setup(seed: u64) -> Harness {
    setup_with_shards(seed, 1)
}

fn setup_with_shards(seed: u64, shards: usize) -> Harness {
    let mut rng = Prng::new(seed);
    let h = Harness::with_shards(shards);
    h.ddl("CREATE TABLE t (a INT, b INT, c FLOAT)");
    h.ddl("CREATE TABLE u (k INT, v INT)");
    for i in 0..157 {
        let b = rng.range_i64(0, 10);
        let c = rng.range_i64(0, 1000) as f64 / 4.0;
        h.run(&format!("INSERT INTO t VALUES ({i}, {b}, {c})"));
    }
    for i in 0..41 {
        let k = rng.range_i64(0, 10);
        h.run(&format!("INSERT INTO u VALUES ({k}, {i})"));
    }
    h
}

/// Whether the plan has a top-level ordering (rows arrive in a guaranteed
/// order). Without one, hash-operator iteration order is unspecified and
/// rows are compared canonically sorted.
fn has_top_order(plan: &PlanNode) -> bool {
    match plan {
        PlanNode::Sort { .. } => true,
        PlanNode::Output { input, .. } | PlanNode::Limit { input, .. } => has_top_order(input),
        _ => false,
    }
}

fn has_hash_operator(plan: &PlanNode) -> bool {
    matches!(plan, PlanNode::Aggregate { .. } | PlanNode::HashJoin { .. })
        || plan.children().iter().any(|c| has_hash_operator(c))
}

fn canon(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let ord = x.cmp_total(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

fn check_query(h: &Harness, pools: &[Option<Arc<ExecPool>>], sql: &str, has_limit: bool) {
    check_query_vs(h, h, pools, sql, has_limit);
}

/// Like [`check_query`], but the row-at-a-time oracle runs against a
/// *separate* harness (same data, possibly different shard count) — the
/// cross-shard-count differential: a sharded engine must be byte- and
/// feature-identical to the single-shard oracle.
fn check_query_vs(
    h: &Harness,
    oracle_h: &Harness,
    pools: &[Option<Arc<ExecPool>>],
    sql: &str,
    has_limit: bool,
) {
    let plan = h.plan(sql);
    if has_limit && !has_top_order(&plan) {
        assert!(
            !has_hash_operator(&plan),
            "generator bug: LIMIT without ORDER BY over a hash operator is \
             nondeterministic: {sql}"
        );
    }
    let (oracle_rows, oracle_feats) = Oracle::run(oracle_h, &oracle_h.plan(sql));
    for pool in pools {
        let workers = pool.as_ref().map_or(1, |p| p.workers());
        for batch_size in [1usize, 7, 1024] {
            let (rows, feats) = run_engine_pooled(h, &plan, batch_size, pool.as_ref());
            // Result rows must be byte-identical (canonically sorted when no
            // ORDER BY pins the order). Parallel execution gathers morsels
            // in order, so it is held to the same bar as serial.
            if has_top_order(&plan) || !has_hash_operator(&plan) {
                assert_eq!(
                    rows, oracle_rows,
                    "row mismatch for {sql} at batch_size={batch_size} workers={workers}"
                );
            } else {
                assert_eq!(
                    canon(rows),
                    canon(oracle_rows.clone()),
                    "row mismatch (canonical) for {sql} at batch_size={batch_size} \
                     workers={workers}"
                );
            }
            // Per-OU tuple/byte features must match the materializing
            // totals — summed across workers for parallel runs — except
            // under LIMIT, where early termination shrinks them.
            if !has_limit {
                let mut eng: Vec<_> = feats.iter().collect();
                let mut ora: Vec<_> = oracle_feats.iter().collect();
                eng.sort();
                ora.sort();
                assert_eq!(
                    eng, ora,
                    "per-OU work mismatch for {sql} at batch_size={batch_size} \
                     workers={workers}"
                );
            }
        }
    }
}

/// Seed override for CI stress runs: `MB2_TEST_SEED=n` perturbs both the
/// data seed and the query-generator seed.
fn seed_offset() -> u64 {
    std::env::var("MB2_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

#[test]
fn randomized_queries_match_oracle() {
    let h = setup(0xD1FF ^ seed_offset());
    let mut rng = Prng::new(0xCAFE ^ seed_offset());
    // Serial plus morsel-parallel at 2 and 8 workers: every query must be
    // byte-identical (and feature-identical) across all three.
    let pools: Vec<Option<Arc<ExecPool>>> =
        vec![None, Some(ExecPool::new(2)), Some(ExecPool::new(8))];
    for round in 0..8 {
        let x = rng.range_i64(0, 160);
        let b = rng.range_i64(0, 10);
        let n = rng.range_usize(1, 30);
        let cases: Vec<(String, bool)> = vec![
            (format!("SELECT * FROM t WHERE a < {x}"), false),
            (
                format!("SELECT a, b FROM t WHERE b = {b} ORDER BY a"),
                false,
            ),
            (
                "SELECT b, COUNT(*), SUM(a), AVG(c), MIN(a), MAX(c) FROM t \
                 GROUP BY b ORDER BY b"
                    .to_string(),
                false,
            ),
            (
                format!("SELECT t.a, u.v FROM t, u WHERE t.b = u.k AND t.a < {x}"),
                false,
            ),
            (
                format!("SELECT t.a, u.v FROM t, u WHERE t.b > u.k AND t.a = {x}"),
                false,
            ),
            (format!("SELECT a FROM t ORDER BY b, a LIMIT {n}"), true),
            (
                format!(
                    "SELECT b, COUNT(*) FROM t GROUP BY b HAVING COUNT(*) > {} ORDER BY b",
                    rng.range_i64(5, 25)
                ),
                false,
            ),
            (
                format!("SELECT a + b * 2 FROM t WHERE c < {x} ORDER BY a + b * 2"),
                false,
            ),
            (format!("SELECT * FROM t LIMIT {n}"), true),
            (
                format!("SELECT b, SUM(a) FROM t WHERE a >= {x} GROUP BY b ORDER BY b LIMIT {n}"),
                true,
            ),
        ];
        for (sql, has_limit) in &cases {
            check_query(&h, &pools, sql, *has_limit);
        }
        let _ = round;
    }
}

/// The cross-shard-count differential: the same data loaded into tables of
/// 1, 3, and 8 hash shards must produce byte-identical rows AND identical
/// per-(node, OU) tuple/byte features against the single-shard oracle, at
/// every batch size, serial and pooled. Shard choice is a concurrency
/// layout, never an observable.
#[test]
fn sharded_tables_match_single_shard_oracle() {
    let seed = 0xD1FF ^ seed_offset();
    let oracle_h = setup_with_shards(seed, 1);
    let pools: Vec<Option<Arc<ExecPool>>> = vec![None, Some(ExecPool::new(4))];
    for shards in [1usize, 3, 8] {
        let h = setup_with_shards(seed, shards);
        let cases: Vec<(String, bool)> = vec![
            ("SELECT * FROM t WHERE a < 80".to_string(), false),
            (
                "SELECT a, b FROM t WHERE b = 4 ORDER BY a".to_string(),
                false,
            ),
            (
                "SELECT b, COUNT(*), SUM(a), AVG(c) FROM t GROUP BY b ORDER BY b".to_string(),
                false,
            ),
            (
                "SELECT t.a, u.v FROM t, u WHERE t.b = u.k AND t.a < 90".to_string(),
                false,
            ),
            (
                "SELECT a + b * 2 FROM t ORDER BY a + b * 2".to_string(),
                false,
            ),
            ("SELECT * FROM t LIMIT 13".to_string(), true),
        ];
        for (sql, has_limit) in &cases {
            check_query_vs(&h, &oracle_h, &pools, sql, *has_limit);
        }
    }
}

#[test]
fn limit_terminates_scan_early_and_exactly() {
    let h = setup(0xBEEF);
    // Find the scan positions of rows with b = 3 from a full scan (scan
    // order is heap order, which LIMIT-prefixes must preserve).
    let full = h.plan("SELECT * FROM t");
    let (all_rows, _) = run_engine(&h, &full, 1024);
    let match_positions: Vec<usize> = all_rows
        .iter()
        .enumerate()
        .filter(|(_, r)| r[1] == Value::Int(3))
        .map(|(i, _)| i)
        .collect();
    assert!(match_positions.len() > 4, "need enough matches");

    let take = 3usize;
    let plan = h.plan(&format!("SELECT * FROM t WHERE b = 3 LIMIT {take}"));
    for batch_size in [1usize, 7, 1024] {
        let (rows, feats) = run_engine(&h, &plan, batch_size);
        assert_eq!(rows.len(), take);
        // The LIMIT prefix equals the first `take` matches in scan order.
        for (row, &pos) in rows.iter().zip(&match_positions) {
            assert_eq!(row, &all_rows[pos]);
        }
        // Early termination is exact: the scan visits precisely up to the
        // take-th match and not one tuple further.
        let scanned = feats
            .iter()
            .find(|((_, ou), _)| *ou == OuKind::SeqScan)
            .map(|(_, (tuples, _))| *tuples)
            .unwrap();
        let expected = (match_positions[take - 1] + 1) as u64;
        assert_eq!(
            scanned, expected,
            "batch_size={batch_size}: scanned {scanned}, expected {expected}"
        );
        assert!(
            scanned < all_rows.len() as u64,
            "scan must stop before the end of the heap"
        );
    }
}

#[test]
fn batch_size_one_equals_default_features() {
    // The per-OU features must be batch-size invariant even on LIMIT-free
    // multi-operator plans: batch_size=1 (old behavior) vs default.
    let h = setup(0x5EED);
    let plan = h.plan(
        "SELECT t.b, COUNT(*), SUM(u.v) FROM t, u WHERE t.b = u.k \
         GROUP BY t.b ORDER BY t.b",
    );
    let (rows1, feats1) = run_engine(&h, &plan, 1);
    let (rows2, feats2) = run_engine(&h, &plan, mb2_exec::DEFAULT_BATCH_SIZE);
    assert_eq!(rows1, rows2);
    let mut a: Vec<_> = feats1.into_iter().collect();
    let mut b: Vec<_> = feats2.into_iter().collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

// ----------------------------------------------------------------------
// Columnar block path vs the row path
// ----------------------------------------------------------------------

/// Sized so every shard of `t` holds at least one full, sealable 512-slot
/// unit; `u` stays far below one unit, exercising the unsealed fallback
/// (its "columnar" scans serve every row from the row path).
fn setup_columnar(seed: u64, shards: usize) -> Harness {
    let mut rng = Prng::new(seed);
    let h = Harness::with_shards(shards);
    h.ddl("CREATE TABLE t (a INT, b INT, c FLOAT)");
    h.ddl("CREATE TABLE u (k INT, v INT)");
    let n = shards * SHARD_UNIT_SLOTS + 157;
    for base in (0..n).step_by(100) {
        let vals: Vec<String> = (base..(base + 100).min(n))
            .map(|i| {
                let b = rng.range_i64(0, 10);
                let c = rng.range_i64(0, 1000) as f64 / 4.0;
                format!("({i}, {b}, {c})")
            })
            .collect();
        h.run(&format!("INSERT INTO t VALUES {}", vals.join(", ")));
    }
    for i in 0..41 {
        let k = rng.range_i64(0, 10);
        h.run(&format!("INSERT INTO u VALUES ({k}, {i})"));
    }
    h
}

/// Seal every cold unit of both tables. Returns units sealed.
fn compact(h: &Harness) -> usize {
    let compactor = Compactor::new(h.txns.clone());
    compactor.register(h.catalog.get("t").unwrap().table.clone());
    compactor.register(h.catalog.get("u").unwrap().table.clone());
    compactor.run_once().units_sealed
}

fn zone_skips(h: &Harness) -> u64 {
    h.catalog
        .get("t")
        .unwrap()
        .table
        .block_stats()
        .iter()
        .map(|s| s.zone_skips)
        .sum()
}

/// Fold Block/Scan work into its scan node's Seq/Scan entry: the columnar
/// path splits one scan's sweep across the two OUs without changing the
/// swept-tuple total (unless a zone map skipped a unit outright). Byte
/// totals are allowed to shrink: late materialization never touches the
/// bytes of sealed rows the vectorized predicate rejected.
fn merge_block_into_seq(feats: &Feats) -> Vec<((u32, OuKind), (u64, u64))> {
    let mut merged: Feats = HashMap::new();
    for (&(id, ou), &(t, b)) in feats {
        let key = if ou == OuKind::BlockScan {
            (id, OuKind::SeqScan)
        } else {
            (id, ou)
        };
        let e = merged.entry(key).or_insert((0, 0));
        e.0 += t;
        e.1 += b;
    }
    let mut v: Vec<_> = merged.into_iter().collect();
    v.sort();
    v
}

/// The columnar differential: with every cold unit sealed, columnar
/// execution must be byte-identical to the row path across shard counts,
/// batch sizes, and serial/pooled runs — for fixed and randomized
/// queries. Feature stability: Block/Scan spans appear on exactly the
/// row run's Seq/Scan nodes, and folding them back yields exactly the
/// row run's per-(node, OU) work when no unit was zone-skipped (skips
/// may only ever shrink work, never change rows).
#[test]
fn columnar_blocks_match_row_path_across_shards_and_batches() {
    let seed = 0xB10C ^ seed_offset();
    let mut rng = Prng::new(0xC0DE ^ seed_offset());
    for shards in [1usize, 3, 8] {
        let h = setup_columnar(seed, shards);
        assert!(compact(&h) >= shards, "every shard must seal a unit");
        let pools: Vec<Option<Arc<ExecPool>>> = vec![None, Some(ExecPool::new(4))];
        let n = (shards * SHARD_UNIT_SLOTS + 157) as i64;
        for _round in 0..2 {
            let x = rng.range_i64(0, n);
            let b = rng.range_i64(0, 10);
            let cases: Vec<String> = vec![
                format!("SELECT * FROM t WHERE a < {x}"),
                format!("SELECT a, b FROM t WHERE b = {b} ORDER BY a"),
                "SELECT b, COUNT(*), SUM(a), AVG(c), MIN(a), MAX(c) FROM t \
                 GROUP BY b ORDER BY b"
                    .to_string(),
                format!("SELECT t.a, u.v FROM t, u WHERE t.b = u.k AND t.a < {x}"),
                format!("SELECT a + b * 2 FROM t WHERE c < {x} ORDER BY a + b * 2"),
                format!("SELECT b, SUM(a) FROM t WHERE a >= {x} GROUP BY b ORDER BY b"),
            ];
            for sql in &cases {
                let plan = h.plan(sql);
                for pool in &pools {
                    for batch_size in [1usize, 64, 1024] {
                        let (off_rows, off_feats) =
                            run_engine_cfg(&h, &plan, batch_size, pool.as_ref(), false);
                        let before = zone_skips(&h);
                        let (on_rows, on_feats) =
                            run_engine_cfg(&h, &plan, batch_size, pool.as_ref(), true);
                        let skipped = zone_skips(&h) - before;
                        let ctx = format!("{sql} shards={shards} batch_size={batch_size}");
                        if has_top_order(&plan) || !has_hash_operator(&plan) {
                            assert_eq!(on_rows, off_rows, "row mismatch for {ctx}");
                        } else {
                            assert_eq!(
                                canon(on_rows),
                                canon(off_rows.clone()),
                                "row mismatch (canonical) for {ctx}"
                            );
                        }
                        let on_blocks: BTreeSet<u32> = on_feats
                            .keys()
                            .filter(|(_, ou)| *ou == OuKind::BlockScan)
                            .map(|(id, _)| *id)
                            .collect();
                        let off_scans: BTreeSet<u32> = off_feats
                            .keys()
                            .filter(|(_, ou)| *ou == OuKind::SeqScan)
                            .map(|(id, _)| *id)
                            .collect();
                        assert_eq!(
                            on_blocks, off_scans,
                            "Block/Scan spans must sit on exactly the Seq/Scan nodes: {ctx}"
                        );
                        assert!(
                            off_feats.keys().all(|(_, ou)| *ou != OuKind::BlockScan),
                            "row path must not emit Block/Scan spans: {ctx}"
                        );
                        let on_merged = merge_block_into_seq(&on_feats);
                        let off_merged_v = merge_block_into_seq(&off_feats);
                        assert_eq!(
                            on_merged.iter().map(|(k, _)| k).collect::<Vec<_>>(),
                            off_merged_v.iter().map(|(k, _)| k).collect::<Vec<_>>(),
                            "folded span-key mismatch for {ctx}"
                        );
                        let off_merged: HashMap<_, _> = off_merged_v.into_iter().collect();
                        for (key, (t, bts)) in on_merged {
                            let &(ot, ob) = off_merged.get(&key).unwrap();
                            if skipped == 0 {
                                // The kernel sweeps every live sealed row
                                // the row path would have visited.
                                assert_eq!(t, ot, "folded tuple mismatch: {key:?} {ctx}");
                            } else {
                                assert!(t <= ot, "skips may only shrink: {key:?} {ctx}");
                            }
                            assert!(
                                bts <= ob,
                                "late materialization may only shrink bytes: {key:?} {ctx}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Zone maps must skip sealed units whose min/max excludes the predicate
/// range — zero sweep work — while emitting exactly the row path's rows.
#[test]
fn zone_maps_skip_cold_units_without_changing_rows() {
    let h = setup_columnar(0x5C1F ^ seed_offset(), 3);
    assert!(compact(&h) >= 3);
    // `a` is insert-ordered, so a tight top-of-range predicate lands in
    // the unsealed tail and excludes every sealed unit's zone map.
    let n = (3 * SHARD_UNIT_SLOTS + 157) as i64;
    let sql = format!("SELECT a, b FROM t WHERE a >= {} ORDER BY a", n - 40);
    let plan = h.plan(&sql);
    let (off_rows, _) = run_engine_cfg(&h, &plan, 64, None, false);
    let before = zone_skips(&h);
    let (on_rows, on_feats) = run_engine_cfg(&h, &plan, 64, None, true);
    assert!(zone_skips(&h) > before, "no sealed unit was zone-skipped");
    assert_eq!(on_rows, off_rows);
    assert_eq!(on_rows.len(), 40);
    let block_swept: u64 = on_feats
        .iter()
        .filter(|((_, ou), _)| *ou == OuKind::BlockScan)
        .map(|(_, (t, _))| *t)
        .sum();
    assert_eq!(block_swept, 0, "every sealed unit lies below the range");
}

/// Compaction racing GC racing writers: sealed blocks get dirtied by
/// updates, re-sealed by the compactor, and their dead versions pruned by
/// GC — all while readers compare the columnar path against the row path
/// *inside one snapshot*, where they must agree exactly.
#[test]
fn compaction_gc_writer_race_keeps_columnar_reads_consistent() {
    let h = setup_columnar(0xACE5 ^ seed_offset(), 3);
    let table = h.catalog.get("t").unwrap().table.clone();
    let compactor = Compactor::new(h.txns.clone());
    compactor.register(table.clone());
    let gc = GarbageCollector::new(h.txns.clone());
    gc.register(table);
    assert!(compactor.run_once().units_sealed >= 3);

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Two writers on disjoint key ranges (no write-write conflicts),
        // both inside the sealed region so blocks keep getting dirtied.
        for w in 0..2u64 {
            let h = &h;
            let stop = &stop;
            s.spawn(move || {
                let mut rng = Prng::new(0x1111 + w);
                while !stop.load(Ordering::Relaxed) {
                    let a = rng.range_i64(0, 256) + (w as i64) * 256;
                    let b = rng.range_i64(0, 1000);
                    h.run(&format!("UPDATE t SET b = {b} WHERE a = {a}"));
                }
            });
        }
        s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                compactor.run_once();
            }
        });
        s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                gc.run_once();
            }
        });
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let h = &h;
                s.spawn(move || {
                    let agg = h.plan("SELECT COUNT(*), SUM(a), SUM(b) FROM t");
                    let filt = h.plan("SELECT a, b FROM t WHERE a < 300 ORDER BY a");
                    for _ in 0..40 {
                        let mut txn = h.txns.begin();
                        for plan in [&agg, &filt] {
                            let row = {
                                let mut ctx =
                                    ExecContext::new(&h.catalog, &mut txn).with_batch_size(64);
                                execute(plan, &mut ctx).unwrap().rows
                            };
                            let col = {
                                let mut ctx = ExecContext::new(&h.catalog, &mut txn)
                                    .with_batch_size(64)
                                    .with_columnar(true);
                                execute(plan, &mut ctx).unwrap().rows
                            };
                            assert_eq!(row, col, "snapshot divergence under churn");
                        }
                        txn.commit().unwrap();
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
}
