//! Sealed columnar blocks for cold data.
//!
//! A [`SealedBlock`] is the column-major twin of one shard unit
//! ([`SHARD_UNIT_SLOTS`] consecutive global slots on one shard): an
//! immutable snapshot of every chain in the unit taken by the compactor
//! once all of them are *frozen* below the GC watermark (see
//! `VersionChain::frozen`). Frozen-below-watermark rows are visible to every
//! current and future snapshot, so block reads need no visibility check —
//! which is exactly what makes the block scan's inner loops tight enough to
//! auto-vectorize.
//!
//! Layout per block:
//! - a **validity bitmap** over the unit's offsets (holes and deleted slots
//!   are invalid),
//! - per-offset **begin timestamps** (kept so a writer can revive the row
//!   back into its version chain with its true commit timestamp),
//! - the original `Arc<Tuple>` **row pointers** for late materialization —
//!   a surviving offset is gathered by a refcount bump, never rebuilt, so
//!   block-scan output is byte-identical to the row scan's,
//! - a contiguous **`Vec<i64>` projection per `Int` column** with its own
//!   NULL bitmap and a min/max **zone map**, the SIMD-friendly substrate
//!   predicates evaluate against. Non-integer columns keep only the row
//!   pointers (predicates on them fall back to row-wise evaluation over
//!   materialized survivors).
//!
//! A block with a racing post-seal writer is marked **dirty**: the writer's
//! revived chain is authoritative for its slot, so scans must take the
//! row path (with per-slot block fallback) for that unit until compaction
//! re-seals it. The flag uses SeqCst: it is one load per 512 slots on the
//! read side and must be ordered before the writer's commit timestamp
//! becomes observable.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mb2_common::types::{tuple_size_bytes, Tuple, Value};
use mb2_common::{DataType, Schema};

use crate::table::SHARD_UNIT_SLOTS;
use crate::ts::Ts;

/// `u64` bitmap words covering one shard unit.
pub const BLOCK_WORDS: usize = SHARD_UNIT_SLOTS / 64;

/// Columnar projection of one `Int` column across the unit.
pub struct IntColumn {
    /// One value per offset; `0` at invalid or NULL offsets (masked out by
    /// the bitmaps, never observed by predicates).
    pub data: Vec<i64>,
    /// Offsets whose value is NULL (subset of the block's valid offsets).
    pub nulls: [u64; BLOCK_WORDS],
    /// Zone map over valid non-NULL values; `min > max` encodes "no values"
    /// so every range predicate skips the column outright.
    pub min: i64,
    pub max: i64,
}

impl IntColumn {
    /// Can any valid value satisfy `lo <= v <= hi`? Drives zone-map block
    /// skipping; a `false` means the whole block produces no matches.
    #[inline]
    pub fn zone_overlaps(&self, lo: i64, hi: i64) -> bool {
        self.min <= self.max && lo <= self.max && hi >= self.min
    }
}

/// An immutable column-major snapshot of one sealed shard unit.
pub struct SealedBlock {
    /// Valid (live row) bitmap over the unit's offsets.
    valid: [u64; BLOCK_WORDS],
    /// Commit timestamp per offset (0 when invalid).
    begin: Vec<u64>,
    /// Original row pointers for late materialization (`None` when invalid).
    rows: Vec<Option<Arc<Tuple>>>,
    /// Per-column `Int` projections (`None` for non-integer columns).
    int_cols: Vec<Option<IntColumn>>,
    n_valid: usize,
    approx_bytes: usize,
    /// Set when a post-seal writer revived a chain in this unit; scans then
    /// take the row path for the unit until compaction re-seals it.
    dirty: AtomicBool,
}

impl SealedBlock {
    /// Build a block from the frozen unit contents: `entries[off]` is
    /// `Some((row, begin))` for a live row, `None` for a hole or deleted
    /// slot. `schema` decides which columns get `Int` projections.
    pub fn build(schema: &Schema, entries: Vec<Option<(Arc<Tuple>, Ts)>>) -> SealedBlock {
        debug_assert_eq!(entries.len(), SHARD_UNIT_SLOTS);
        let mut valid = [0u64; BLOCK_WORDS];
        let mut begin = vec![0u64; SHARD_UNIT_SLOTS];
        let mut rows: Vec<Option<Arc<Tuple>>> = vec![None; SHARD_UNIT_SLOTS];
        let mut n_valid = 0usize;
        let mut bytes = 0usize;
        for (off, entry) in entries.into_iter().enumerate() {
            if let Some((row, ts)) = entry {
                valid[off / 64] |= 1u64 << (off % 64);
                begin[off] = ts.0;
                bytes += tuple_size_bytes(&row);
                rows[off] = Some(row);
                n_valid += 1;
            }
        }
        let int_cols: Vec<Option<IntColumn>> = schema
            .columns()
            .iter()
            .enumerate()
            .map(|(c, col)| {
                if col.ty != DataType::Int {
                    return None;
                }
                let mut data = vec![0i64; SHARD_UNIT_SLOTS];
                let mut nulls = [0u64; BLOCK_WORDS];
                let mut min = i64::MAX;
                let mut max = i64::MIN;
                for (off, row) in rows.iter().enumerate() {
                    let Some(row) = row else { continue };
                    match row.get(c) {
                        Some(Value::Int(v)) => {
                            data[off] = *v;
                            min = min.min(*v);
                            max = max.max(*v);
                        }
                        _ => {
                            // NULL (or an untyped value): mask the offset out
                            // so vectorized predicates never match it,
                            // mirroring SQL's NULL ⇒ false.
                            nulls[off / 64] |= 1u64 << (off % 64);
                        }
                    }
                }
                bytes += SHARD_UNIT_SLOTS * 8;
                Some(IntColumn {
                    data,
                    nulls,
                    min,
                    max,
                })
            })
            .collect();
        SealedBlock {
            valid,
            begin,
            rows,
            int_cols,
            n_valid,
            approx_bytes: bytes + SHARD_UNIT_SLOTS * (8 + 8),
            dirty: AtomicBool::new(false),
        }
    }

    /// Live rows in the block.
    pub fn n_valid(&self) -> usize {
        self.n_valid
    }

    /// Approximate heap footprint (row data + columnar projections).
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Validity bitmap (one bit per unit offset).
    #[inline]
    pub fn valid_words(&self) -> &[u64; BLOCK_WORDS] {
        &self.valid
    }

    /// The `Int` projection of column `c`, if it has one.
    #[inline]
    pub fn int_col(&self, c: usize) -> Option<&IntColumn> {
        self.int_cols.get(c).and_then(|c| c.as_ref())
    }

    /// The sealed row at `off` with its commit timestamp, or `None` for a
    /// hole/deleted offset.
    #[inline]
    pub fn row(&self, off: usize) -> Option<(&Arc<Tuple>, Ts)> {
        self.rows[off].as_ref().map(|r| (r, Ts(self.begin[off])))
    }

    /// The sealed row at `off` only if it was committed at or before
    /// `read_ts`. Frozen rows are below the GC watermark, so this holds for
    /// every live snapshot — the check is defensive, not load-bearing.
    #[inline]
    pub fn row_visible(&self, off: usize, read_ts: Ts) -> Option<&Arc<Tuple>> {
        match &self.rows[off] {
            Some(row) if self.begin[off] <= read_ts.0 => Some(row),
            _ => None,
        }
    }

    /// Whether a post-seal writer has revived a chain in this unit.
    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::SeqCst)
    }

    /// Mark the unit dirty (called by writers under the slot's chain lock,
    /// before their commit timestamp can become visible to any reader).
    pub fn mark_dirty(&self) {
        self.dirty.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("s", DataType::Varchar),
        ])
    }

    fn entries(rows: impl IntoIterator<Item = (usize, i64, Ts)>) -> Vec<Option<(Arc<Tuple>, Ts)>> {
        let mut out: Vec<Option<(Arc<Tuple>, Ts)>> = (0..SHARD_UNIT_SLOTS).map(|_| None).collect();
        for (off, v, ts) in rows {
            out[off] = Some((
                Arc::new(vec![Value::Int(v), Value::Varchar(format!("r{v}"))]),
                ts,
            ));
        }
        out
    }

    #[test]
    fn build_populates_bitmaps_columns_and_zone_maps() {
        let b = SealedBlock::build(
            &schema(),
            entries([(0, 5, Ts(10)), (1, -3, Ts(11)), (70, 42, Ts(12))]),
        );
        assert_eq!(b.n_valid(), 3);
        assert_eq!(b.valid_words()[0], 0b11);
        assert_eq!(b.valid_words()[1], 1 << 6);
        let col = b.int_col(0).unwrap();
        assert_eq!(col.min, -3);
        assert_eq!(col.max, 42);
        assert_eq!(col.data[0], 5);
        assert_eq!(col.data[70], 42);
        assert!(col.zone_overlaps(0, 100));
        assert!(!col.zone_overlaps(43, 100));
        assert!(!col.zone_overlaps(-100, -4));
        // Varchar column has no projection.
        assert!(b.int_col(1).is_none());
        // Row materialization returns the original Arc with its commit ts.
        let (row, ts) = b.row(70).unwrap();
        assert_eq!(row[0], Value::Int(42));
        assert_eq!(ts, Ts(12));
        assert!(b.row(2).is_none());
    }

    #[test]
    fn null_ints_are_masked_not_matched() {
        let mut e = entries([(0, 1, Ts(5))]);
        e[1] = Some((
            Arc::new(vec![Value::Null, Value::Varchar("x".into())]),
            Ts(6),
        ));
        let b = SealedBlock::build(&schema(), e);
        let col = b.int_col(0).unwrap();
        assert_eq!(col.nulls[0] & (1 << 1), 1 << 1);
        assert_eq!(col.nulls[0] & 1, 0);
        // Zone map covers only non-NULL values.
        assert_eq!(col.min, 1);
        assert_eq!(col.max, 1);
    }

    #[test]
    fn empty_block_zone_never_overlaps() {
        let b = SealedBlock::build(&schema(), entries([]));
        assert_eq!(b.n_valid(), 0);
        let col = b.int_col(0).unwrap();
        assert!(!col.zone_overlaps(i64::MIN, i64::MAX));
    }

    #[test]
    fn visibility_check_is_defensive() {
        let b = SealedBlock::build(&schema(), entries([(3, 9, Ts(20))]));
        assert!(b.row_visible(3, Ts(20)).is_some());
        assert!(b.row_visible(3, Ts(19)).is_none());
        assert!(b.row_visible(4, Ts(100)).is_none());
    }

    #[test]
    fn dirty_flag_round_trip() {
        let b = SealedBlock::build(&schema(), entries([]));
        assert!(!b.is_dirty());
        b.mark_dirty();
        assert!(b.is_dirty());
    }
}
