//! In-flight cost accounting for interference-predicted admission.
//!
//! The interference model (paper §5) takes as input the per-thread
//! predicted totals of everything running in an interval — exactly the
//! shape [`crate::InterferenceInputs::features`] consumes. On the live
//! admission path that interval is "right now": the [`InflightLedger`]
//! tracks, per logical worker slot, the predicted-minus-retired metric
//! totals of every admitted-but-unfinished query, so an admission decision
//! can ask "what does the in-flight mix look like to the interference
//! model if I admit this query?" without touching the executor.
//!
//! Accounting is intentionally optimistic: a query's full predicted cost
//! is charged at admission and released at retirement. That makes the
//! ledger an upper bound on outstanding work (a query half-done is still
//! charged in full), which is the safe direction for admission control.

use std::collections::HashMap;

use parking_lot::Mutex;

use mb2_common::{Metrics, METRIC_COUNT};

/// Handle for one admitted query's ledger charge. Returned by
/// [`InflightLedger::admit`]; pass it back to [`InflightLedger::retire`]
/// when the query's final response frame has been flushed (not merely when
/// execution returns — the charge models occupancy of the serving slot,
/// and a stalled client keeps the slot busy).
#[derive(Debug)]
pub struct LedgerTicket {
    id: u64,
    /// The worker slot the charge was placed on.
    pub slot: usize,
}

#[derive(Default)]
struct LedgerInner {
    /// Outstanding predicted totals per logical worker slot.
    slots: Vec<Metrics>,
    /// Outstanding charges by ticket id, so retirement subtracts exactly
    /// what admission added.
    entries: HashMap<u64, (usize, Metrics)>,
    next_id: u64,
}

/// Predicted-minus-retired cost per worker slot; see the module docs.
pub struct InflightLedger {
    inner: Mutex<LedgerInner>,
}

impl InflightLedger {
    /// A ledger with `slots` logical worker slots (one per concurrently
    /// admissible query — the admission bound, not the exec-pool size).
    pub fn new(slots: usize) -> InflightLedger {
        InflightLedger {
            inner: Mutex::new(LedgerInner {
                slots: vec![Metrics::ZERO; slots.max(1)],
                entries: HashMap::new(),
                next_id: 0,
            }),
        }
    }

    /// Charge a query's predicted totals to the least-loaded slot (by
    /// outstanding predicted elapsed time) and return the ticket that
    /// releases the charge.
    pub fn admit(&self, pred: &Metrics) -> LedgerTicket {
        let mut inner = self.inner.lock();
        let slot = inner
            .slots
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.elapsed_us()
                    .partial_cmp(&b.elapsed_us())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        inner.slots[slot] += *pred;
        let id = inner.next_id;
        inner.next_id += 1;
        inner.entries.insert(id, (slot, *pred));
        LedgerTicket { id, slot }
    }

    /// Release a charge. Totals are floored at zero element-wise so
    /// floating-point drift can never leave a phantom negative backlog.
    pub fn retire(&self, ticket: LedgerTicket) {
        let mut inner = self.inner.lock();
        if let Some((slot, pred)) = inner.entries.remove(&ticket.id) {
            let total = &mut inner.slots[slot];
            for i in 0..METRIC_COUNT {
                total[i] = (total[i] - pred[i]).max(0.0);
            }
        }
    }

    /// Outstanding charges (admitted, not yet retired).
    pub fn inflight(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Per-slot outstanding predicted totals — the input shape of
    /// [`crate::InterferenceInputs::features`]' `thread_totals`.
    pub fn thread_totals(&self) -> Vec<Metrics> {
        self.inner.lock().slots.clone()
    }

    /// Total outstanding predicted elapsed µs across all slots.
    pub fn outstanding_us(&self) -> f64 {
        self.inner
            .lock()
            .slots
            .iter()
            .map(Metrics::elapsed_us)
            .sum()
    }

    /// Outstanding predicted elapsed µs on the least-loaded slot — the
    /// backlog a newly admitted query would stack on top of.
    pub fn min_backlog_us(&self) -> f64 {
        self.inner
            .lock()
            .slots
            .iter()
            .map(Metrics::elapsed_us)
            .fold(f64::INFINITY, f64::min)
            .max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::metrics::idx;

    fn pred(elapsed: f64) -> Metrics {
        let mut m = Metrics::ZERO;
        m[idx::ELAPSED_US] = elapsed;
        m[idx::CPU_US] = elapsed * 0.9;
        m
    }

    #[test]
    fn admit_balances_across_slots() {
        let ledger = InflightLedger::new(2);
        let a = ledger.admit(&pred(100.0));
        let b = ledger.admit(&pred(50.0));
        assert_ne!(a.slot, b.slot, "second charge goes to the empty slot");
        // Third charge lands on the lighter slot (the 50µs one).
        let c = ledger.admit(&pred(10.0));
        assert_eq!(c.slot, b.slot);
        assert_eq!(ledger.inflight(), 3);
        assert!((ledger.outstanding_us() - 160.0).abs() < 1e-9);
        ledger.retire(a);
        ledger.retire(b);
        ledger.retire(c);
        assert_eq!(ledger.inflight(), 0);
        assert_eq!(ledger.outstanding_us(), 0.0);
    }

    #[test]
    fn retire_releases_exactly_the_charge() {
        let ledger = InflightLedger::new(1);
        let a = ledger.admit(&pred(100.0));
        let b = ledger.admit(&pred(40.0));
        ledger.retire(a);
        let totals = ledger.thread_totals();
        assert_eq!(totals.len(), 1);
        assert!((totals[0][idx::ELAPSED_US] - 40.0).abs() < 1e-9);
        ledger.retire(b);
        assert!(ledger.thread_totals()[0][idx::ELAPSED_US].abs() < 1e-12);
    }

    #[test]
    fn min_backlog_tracks_least_loaded_slot() {
        let ledger = InflightLedger::new(3);
        assert_eq!(ledger.min_backlog_us(), 0.0);
        ledger.admit(&pred(100.0));
        // Two slots still empty.
        assert_eq!(ledger.min_backlog_us(), 0.0);
        ledger.admit(&pred(30.0));
        ledger.admit(&pred(20.0));
        assert!((ledger.min_backlog_us() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn totals_never_go_negative() {
        let ledger = InflightLedger::new(1);
        // Interleave admits/retires in an order that would drift below
        // zero if subtraction were unguarded.
        let tickets: Vec<_> = (0..50)
            .map(|i| ledger.admit(&pred(i as f64 + 0.1)))
            .collect();
        for t in tickets {
            ledger.retire(t);
        }
        for m in ledger.thread_totals() {
            for i in 0..METRIC_COUNT {
                assert!(m[i] >= 0.0);
            }
        }
    }

    #[test]
    fn double_retire_is_harmless() {
        let ledger = InflightLedger::new(1);
        let a = ledger.admit(&pred(10.0));
        let forged = LedgerTicket { id: a.id, slot: 0 };
        ledger.retire(a);
        ledger.retire(forged); // entry already gone: no-op
        assert_eq!(ledger.outstanding_us(), 0.0);
    }
}
