//! Fig. 5 — OU-model accuracy: 80/20 test relative error per OU, for the
//! four ML algorithms the paper plots (random forest, neural network,
//! Huber regression, gradient boosting machine).

use mb2_core::training::evaluate_algorithms;
use mb2_ml::Algorithm;

use crate::pipeline::{build_ou_models, PipelineConfig};
use crate::report::{fmt, Table};
use crate::Scale;

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Fig. 5 — OU-model test relative error per OU, four algorithms\n\n");
    let cfg = PipelineConfig::for_scale(scale);
    let built = build_ou_models(&cfg).expect("pipeline");

    let algorithms = Algorithm::FIGURE5;
    let mut table = Table::new(
        "test relative error averaged across the nine output labels",
        &[
            "OU",
            "random_forest",
            "neural_network",
            "huber",
            "gbm",
            "best",
        ],
    );
    let mut under_20 = 0usize;
    let mut total = 0usize;
    for ou in built.repo.ous() {
        let Ok(evals) = evaluate_algorithms(&built.repo, ou, &algorithms, true, 5) else {
            continue;
        };
        let err_of = |alg: Algorithm| {
            evals
                .iter()
                .find(|(a, _, _)| *a == alg)
                .map(|(_, e, _)| *e)
                .unwrap_or(f64::NAN)
        };
        let best = evals
            .iter()
            .map(|(_, e, _)| *e)
            .fold(f64::INFINITY, f64::min);
        total += 1;
        if best < 0.2 {
            under_20 += 1;
        }
        table.row(&[
            ou.to_string(),
            fmt(err_of(Algorithm::RandomForest)),
            fmt(err_of(Algorithm::NeuralNetwork)),
            fmt(err_of(Algorithm::Huber)),
            fmt(err_of(Algorithm::GradientBoosting)),
            fmt(best),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\n{under_20}/{total} OUs reach <20% best-algorithm error \
         (paper: \"more than 80% of the OU-models have an average prediction \
         error less than 20%\"; short-running txn/agg-probe OUs run hotter, \
         as in the paper).\n"
    ));
    out
}
