//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§8). Each experiment lives in [`experiments`] as a function
//! returning a textual report; thin binaries under `src/bin/` wrap them, and
//! `run_all` executes the full suite and collects the reports under
//! `results/`.
//!
//! Scale: experiments honor the `MB2_SCALE` environment variable
//! (`quick` | `standard`, default `standard`). `quick` shrinks sweeps for
//! smoke-testing; `standard` matches the numbers recorded in
//! EXPERIMENTS.md.

pub mod experiments;
pub mod pipeline;
pub mod report;

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Standard,
}

impl Scale {
    /// Read from `MB2_SCALE` (default `standard`).
    pub fn from_env() -> Scale {
        match std::env::var("MB2_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Standard,
        }
    }

    pub fn pick<T>(&self, quick: T, standard: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Standard => standard,
        }
    }
}
