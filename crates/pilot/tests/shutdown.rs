//! Shutdown-path tests: the pilot thread must drain promptly even with a
//! long cadence, and `Database::shutdown` must quiesce a started pilot
//! through the background-task registry (before subsystem teardown).

mod common;

use std::sync::Arc;
use std::time::{Duration, Instant};

use mb2_engine::Database;
use mb2_pilot::{Pilot, PilotConfig};

#[test]
fn shutdown_drains_within_250ms_despite_long_cadence() {
    let db = Arc::new(Database::open());
    common::seed_big(&db);
    let models = common::cost_models(&db);
    let config = PilotConfig {
        cadence: Duration::from_secs(120),
        ..PilotConfig::default()
    };
    let pilot = Pilot::new(db.clone(), models, config);
    pilot.start();
    // The thread is parked deep inside a 120s cadence wait; shutdown must
    // nudge it awake and join well under the drain budget.
    let started = Instant::now();
    pilot.shutdown();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(250),
        "pilot drain took {elapsed:?}"
    );
    // Idempotent.
    pilot.shutdown();
}

#[test]
fn database_shutdown_quiesces_started_pilot() {
    let db = Arc::new(Database::open());
    common::seed_big(&db);
    let models = common::cost_models(&db);
    let config = PilotConfig {
        cadence: Duration::from_secs(120),
        ..PilotConfig::default()
    };
    let pilot = Pilot::new(db.clone(), models, config);
    pilot.start();
    // start() installed the statement tap: traffic is observed.
    db.execute("SELECT * FROM big WHERE pk = 1").unwrap();
    assert!(pilot.forecaster().arrivals_in_window() >= 1);

    // Engine shutdown must quiesce the pilot via the background-task
    // registry: the thread joins (dropping its Arc) and the tap comes
    // out, all before subsystem teardown.
    let started = Instant::now();
    db.shutdown();
    assert!(
        started.elapsed() < Duration::from_millis(250),
        "engine shutdown blocked on pilot"
    );
    assert_eq!(Arc::strong_count(&pilot), 1, "pilot thread still running");

    let before = pilot.forecaster().arrivals_in_window();
    // The tap is uninstalled — further statements are not observed.
    // (Queries still work during/after quiesce; teardown only stops
    // background machinery.)
    let _ = db.execute("SELECT * FROM big WHERE pk = 2");
    assert_eq!(pilot.forecaster().arrivals_in_window(), before);
}
