//! Regenerates one paper result; see `mb2_bench::experiments::fig11_end_to_end`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::fig11_end_to_end::run(scale);
    mb2_bench::report::emit("fig11_end_to_end", &report);
}
