//! The operating-unit (OU) vocabulary — paper Table 1.
//!
//! This enum is the shared contract between the execution engine (which
//! *measures* each OU invocation) and the MB2 framework (which *featurizes*
//! each OU from plan information and trains one model per OU). NoisePage's
//! 19 OUs are reproduced one-for-one, plus two engine-growth OUs the paper's
//! decomposition methodology absorbs the same way: the columnar **block
//! scan** (singular, the SIMD-friendly scan over sealed blocks) and
//! **compaction** (batch, the background pass that seals cold units into
//! those blocks).

/// Behavior pattern of an OU (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OuCategory {
    /// Features describe one invocation's work (execution engine OUs).
    Singular,
    /// Features describe a batch of work across invocations (WAL, GC).
    Batch,
    /// Parallel invocations contend on internal latches (index build, txns).
    Contending,
}

/// The 19 paper operating units plus the two engine-growth OUs
/// ([`OuKind::BlockScan`], [`OuKind::Compaction`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OuKind {
    SeqScan,
    IdxScan,
    JoinHashBuild,
    JoinHashProbe,
    AggBuild,
    AggProbe,
    SortBuild,
    SortIter,
    InsertTuple,
    UpdateTuple,
    DeleteTuple,
    ArithmeticFilter,
    OutputResult,
    GarbageCollection,
    IndexBuild,
    LogSerialize,
    LogFlush,
    TxnBegin,
    TxnCommit,
    /// Columnar scan over sealed blocks (vectorized predicates, zone-map
    /// skipping, late materialization).
    BlockScan,
    /// Background pass sealing frozen units into columnar blocks.
    Compaction,
}

impl OuKind {
    /// All OUs in a stable order (Table 1 order, growth OUs appended).
    pub const ALL: [OuKind; 21] = [
        OuKind::SeqScan,
        OuKind::IdxScan,
        OuKind::JoinHashBuild,
        OuKind::JoinHashProbe,
        OuKind::AggBuild,
        OuKind::AggProbe,
        OuKind::SortBuild,
        OuKind::SortIter,
        OuKind::InsertTuple,
        OuKind::UpdateTuple,
        OuKind::DeleteTuple,
        OuKind::ArithmeticFilter,
        OuKind::OutputResult,
        OuKind::GarbageCollection,
        OuKind::IndexBuild,
        OuKind::LogSerialize,
        OuKind::LogFlush,
        OuKind::TxnBegin,
        OuKind::TxnCommit,
        OuKind::BlockScan,
        OuKind::Compaction,
    ];

    pub fn category(&self) -> OuCategory {
        match self {
            OuKind::GarbageCollection
            | OuKind::LogSerialize
            | OuKind::LogFlush
            | OuKind::Compaction => OuCategory::Batch,
            OuKind::IndexBuild | OuKind::TxnBegin | OuKind::TxnCommit => OuCategory::Contending,
            _ => OuCategory::Singular,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            OuKind::SeqScan => "seq_scan",
            OuKind::IdxScan => "idx_scan",
            OuKind::JoinHashBuild => "hashjoin_build",
            OuKind::JoinHashProbe => "hashjoin_probe",
            OuKind::AggBuild => "agg_build",
            OuKind::AggProbe => "agg_probe",
            OuKind::SortBuild => "sort_build",
            OuKind::SortIter => "sort_iter",
            OuKind::InsertTuple => "insert",
            OuKind::UpdateTuple => "update",
            OuKind::DeleteTuple => "delete",
            OuKind::ArithmeticFilter => "arithmetic_filter",
            OuKind::OutputResult => "output",
            OuKind::GarbageCollection => "gc",
            OuKind::IndexBuild => "index_build",
            OuKind::LogSerialize => "log_serialize",
            OuKind::LogFlush => "log_flush",
            OuKind::TxnBegin => "txn_begin",
            OuKind::TxnCommit => "txn_commit",
            OuKind::BlockScan => "block_scan",
            OuKind::Compaction => "compaction",
        }
    }

    /// Parse a name produced by [`OuKind::name`].
    pub fn parse(name: &str) -> Option<OuKind> {
        OuKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for OuKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_paper_ous_plus_growth_ous() {
        // Table 1's 19 OUs stay one-for-one; engine growth appended two.
        assert_eq!(OuKind::ALL.len(), 21);
        assert_eq!(
            OuKind::ALL
                .iter()
                .filter(|k| !matches!(k, OuKind::BlockScan | OuKind::Compaction))
                .count(),
            19
        );
    }

    #[test]
    fn categories_match_table_1() {
        assert_eq!(OuKind::SeqScan.category(), OuCategory::Singular);
        assert_eq!(OuKind::GarbageCollection.category(), OuCategory::Batch);
        assert_eq!(OuKind::LogSerialize.category(), OuCategory::Batch);
        assert_eq!(OuKind::LogFlush.category(), OuCategory::Batch);
        assert_eq!(OuKind::BlockScan.category(), OuCategory::Singular);
        assert_eq!(OuKind::Compaction.category(), OuCategory::Batch);
        assert_eq!(OuKind::IndexBuild.category(), OuCategory::Contending);
        assert_eq!(OuKind::TxnBegin.category(), OuCategory::Contending);
        assert_eq!(OuKind::TxnCommit.category(), OuCategory::Contending);
        let contending = OuKind::ALL
            .iter()
            .filter(|k| k.category() == OuCategory::Contending)
            .count();
        assert_eq!(contending, 3);
    }

    #[test]
    fn names_round_trip() {
        for k in OuKind::ALL {
            assert_eq!(OuKind::parse(k.name()), Some(k));
        }
        assert_eq!(OuKind::parse("bogus"), None);
    }
}
