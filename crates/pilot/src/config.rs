//! Autopilot tuning parameters.

use std::time::Duration;

/// Configuration of the [`crate::Pilot`] control loop.
///
/// The defaults are sized for an interactive server (second-scale
/// cadence); tests and benches shrink every interval so the loop can be
/// stepped deterministically with [`crate::Pilot::run_once`].
#[derive(Debug, Clone)]
pub struct PilotConfig {
    /// How often the background thread wakes up to run one tick.
    pub cadence: Duration,
    /// Width of the sliding arrival-rate window the forecaster keeps.
    pub forecast_window: Duration,
    /// Ring-bucket count inside the forecast window.
    pub forecast_buckets: usize,
    /// Worker threads the forecast assumes the workload spreads over
    /// (feeds the interference model's per-thread totals).
    pub forecast_threads: usize,
    /// Minimum arrivals inside the window before the pilot plans at all —
    /// pricing a forecast of one stray query is noise, not signal.
    pub min_arrivals: u64,
    /// Minimum predicted relative gain (0.05 = 5% faster) an action must
    /// show before the pilot applies it.
    pub min_gain: f64,
    /// Quiet period after an action (applied, accepted, or reverted)
    /// before the next one may deploy.
    pub cooldown: Duration,
    /// How long observed statement latency is accumulated after an apply
    /// before the verify step judges the action.
    pub verify_window: Duration,
    /// Observed mean-latency regression (relative to the pre-apply
    /// window) that triggers a revert; 0.5 = revert when queries got
    /// more than 50% slower.
    pub revert_threshold: f64,
    /// Parallelism requested for pilot-built index builds.
    pub index_build_threads: usize,
    /// Upper bound for `SetParallelism` candidates.
    pub max_parallelism: usize,
    /// Seed for deterministic tie-breaking among equal-gain candidates.
    pub seed: u64,
}

impl Default for PilotConfig {
    fn default() -> PilotConfig {
        PilotConfig {
            cadence: Duration::from_secs(1),
            forecast_window: Duration::from_secs(10),
            forecast_buckets: 10,
            forecast_threads: 2,
            min_arrivals: 10,
            min_gain: 0.05,
            cooldown: Duration::from_secs(5),
            verify_window: Duration::from_secs(2),
            revert_threshold: 0.5,
            index_build_threads: 2,
            max_parallelism: 8,
            seed: 0,
        }
    }
}

impl PilotConfig {
    /// A configuration with every interval collapsed so tests can drive
    /// the loop tick-by-tick through [`crate::Pilot::run_once`] without
    /// real-time waits.
    pub fn fast() -> PilotConfig {
        PilotConfig {
            cadence: Duration::from_millis(5),
            forecast_window: Duration::from_secs(60),
            forecast_buckets: 6,
            min_arrivals: 1,
            cooldown: Duration::ZERO,
            verify_window: Duration::ZERO,
            ..PilotConfig::default()
        }
    }
}
