//! Nadaraya–Watson kernel regression with an RBF kernel.
//!
//! Non-parametric: predictions are kernel-weighted averages of stored
//! training targets. To bound inference cost, training data beyond
//! `max_reference_points` is subsampled deterministically.

use mb2_common::{DbError, DbResult, Prng};

use crate::data::StandardScaler;
use crate::Regressor;

/// RBF kernel regression.
#[derive(Debug, Clone)]
pub struct KernelRegression {
    /// Kernel bandwidth in standardized-feature units.
    pub bandwidth: f64,
    /// Cap on the number of stored reference points.
    pub max_reference_points: usize,
    pub seed: u64,
    pub(crate) scaler: StandardScaler,
    pub(crate) ref_x: Vec<Vec<f64>>,
    pub(crate) ref_y: Vec<Vec<f64>>,
}

impl KernelRegression {
    pub fn new(bandwidth: f64, max_reference_points: usize) -> KernelRegression {
        KernelRegression {
            bandwidth,
            max_reference_points,
            seed: 11,
            scaler: StandardScaler::default(),
            ref_x: Vec::new(),
            ref_y: Vec::new(),
        }
    }
}

impl Default for KernelRegression {
    fn default() -> Self {
        KernelRegression::new(0.35, 2000)
    }
}

impl Regressor for KernelRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[Vec<f64>]) -> DbResult<()> {
        if x.is_empty() {
            return Err(DbError::Model(
                "kernel regression: empty training set".into(),
            ));
        }
        self.scaler = StandardScaler::fit(x);
        let mut indices: Vec<usize> = (0..x.len()).collect();
        if x.len() > self.max_reference_points {
            let mut rng = Prng::new(self.seed);
            rng.shuffle(&mut indices);
            indices.truncate(self.max_reference_points);
        }
        self.ref_x = indices
            .iter()
            .map(|&i| self.scaler.transform_row(&x[i]))
            .collect();
        self.ref_y = indices.iter().map(|&i| y[i].clone()).collect();
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> Vec<f64> {
        let q = self.scaler.transform_row(x);
        let n_outputs = self.ref_y.first().map_or(0, Vec::len);
        let inv_two_h2 = 1.0 / (2.0 * self.bandwidth * self.bandwidth);
        let mut num = vec![0.0; n_outputs];
        let mut den = 0.0;
        let mut best = (f64::INFINITY, 0usize);
        for (i, r) in self.ref_x.iter().enumerate() {
            let d2: f64 = r.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
            if d2 < best.0 {
                best = (d2, i);
            }
            let w = (-d2 * inv_two_h2).exp();
            den += w;
            for (acc, &yv) in num.iter_mut().zip(&self.ref_y[i]) {
                *acc += w * yv;
            }
        }
        if den < 1e-300 {
            // Query far outside the training support: fall back to the
            // nearest reference point instead of returning 0/0.
            return self.ref_y[best.1].clone();
        }
        num.iter().map(|v| v / den).collect()
    }

    fn name(&self) -> &'static str {
        "kernel_regression"
    }

    fn size_bytes(&self) -> usize {
        let per_row =
            self.ref_x.first().map_or(0, Vec::len) * 8 + self.ref_y.first().map_or(0, Vec::len) * 8;
        self.ref_x.len() * per_row + self.scaler.means.len() * 16
    }

    fn save_text(&self) -> DbResult<String> {
        Ok(crate::persist::save_model(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_smooth_function() {
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 20.0]).collect();
        let y: Vec<Vec<f64>> = x.iter().map(|r| vec![(r[0]).sin()]).collect();
        let mut m = KernelRegression::new(0.08, 2000);
        m.fit(&x, &y).unwrap();
        for q in [1.05_f64, 3.33, 7.77] {
            let p = m.predict_one(&[q])[0];
            assert!(
                (p - q.sin()).abs() < 0.1,
                "q={q} pred={p} truth={}",
                q.sin()
            );
        }
    }

    #[test]
    fn far_query_falls_back_to_nearest() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![vec![10.0], vec![20.0]];
        let mut m = KernelRegression::new(0.01, 100);
        m.fit(&x, &y).unwrap();
        // Query at 1e6 standard deviations: all kernel weights underflow.
        let p = m.predict_one(&[1e9]);
        assert!(p[0].is_finite());
        assert_eq!(p[0], 20.0);
    }

    #[test]
    fn subsampling_caps_references() {
        let x: Vec<Vec<f64>> = (0..5000).map(|i| vec![i as f64]).collect();
        let y: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0]]).collect();
        let mut m = KernelRegression::new(0.35, 500);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.ref_x.len(), 500);
    }

    #[test]
    fn empty_fit_is_error() {
        let mut m = KernelRegression::default();
        assert!(m.fit(&[], &[]).is_err());
    }
}
