//! Engine lifecycle hooks for components layered *above* the engine.
//!
//! The autopilot (`mb2-pilot`) lives in a crate that depends on
//! `mb2-engine`, so the engine cannot name its types — but its threads
//! must still be quiesced by [`Database::shutdown`] *before* the exec
//! pool, GC, and WAL flusher are torn down (a mid-flight action may be
//! running a query or a WAL-logged index build). These two small traits
//! close that inversion: the upper layer registers itself with the
//! engine, and the engine calls back at the right points.
//!
//! [`Database::shutdown`]: crate::Database::shutdown

/// A background component whose threads the engine must drain on
/// shutdown, before its own subsystems go away.
///
/// Registered via [`Database::register_background_task`]; held as a
/// [`Weak`](std::sync::Weak) reference so registration never keeps the
/// task (or anything it owns) alive.
///
/// [`Database::register_background_task`]: crate::Database::register_background_task
pub trait BackgroundTask: Send + Sync {
    /// Short diagnostic name (e.g. `"pilot"`).
    fn name(&self) -> &str;

    /// Stop the task's threads and wait for them to finish. Called by
    /// [`Database::shutdown`] while the exec pool, GC, and WAL flusher
    /// are still running, so an in-flight action can complete (or revert)
    /// against live subsystems. Must be idempotent.
    ///
    /// [`Database::shutdown`]: crate::Database::shutdown
    fn quiesce(&self);
}

/// Observer of every DML/SELECT statement the engine executes, installed
/// with [`Database::set_statement_tap`]. This is how the autopilot's
/// workload forecaster sees live traffic: each successful parse of a
/// SELECT/INSERT/UPDATE/DELETE (autocommit, in-transaction, or
/// streaming) is reported once, before execution. DDL and transaction
/// control are not reported.
///
/// Implementations must be cheap and non-blocking — the call sits on
/// every statement's hot path.
///
/// [`Database::set_statement_tap`]: crate::Database::set_statement_tap
pub trait StatementTap: Send + Sync {
    /// Observe one statement's SQL text.
    fn observe(&self, sql: &str);
}
