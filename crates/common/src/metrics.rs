//! Behavior metrics — the common output-label vector of every OU-model.
//!
//! Paper §4.3: every OU-model predicts the same nine labels, which is what
//! lets the interference model consume summary statistics of heterogeneous
//! OUs: (1) elapsed time, (2) CPU time, (3) CPU cycles, (4) instructions,
//! (5) cache references, (6) cache misses, (7) disk block reads, (8) disk
//! block writes, (9) memory consumption.

use std::ops::{Add, AddAssign, Index, IndexMut};

/// Number of behavior metrics.
pub const METRIC_COUNT: usize = 9;

/// Human-readable metric names, in vector order.
pub const METRIC_NAMES: [&str; METRIC_COUNT] = [
    "elapsed_us",
    "cpu_us",
    "cycles",
    "instructions",
    "cache_refs",
    "cache_misses",
    "block_reads",
    "block_writes",
    "memory_bytes",
];

/// Index constants for readable access into a [`Metrics`] vector.
pub mod idx {
    pub const ELAPSED_US: usize = 0;
    pub const CPU_US: usize = 1;
    pub const CYCLES: usize = 2;
    pub const INSTRUCTIONS: usize = 3;
    pub const CACHE_REFS: usize = 4;
    pub const CACHE_MISSES: usize = 5;
    pub const BLOCK_READS: usize = 6;
    pub const BLOCK_WRITES: usize = 7;
    pub const MEMORY_BYTES: usize = 8;
}

/// A vector of the nine behavior metrics. Stored as `f64` because both
/// measured labels and model predictions flow through the same type.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Metrics(pub [f64; METRIC_COUNT]);

impl Metrics {
    pub const ZERO: Metrics = Metrics([0.0; METRIC_COUNT]);

    pub fn new(values: [f64; METRIC_COUNT]) -> Metrics {
        Metrics(values)
    }

    pub fn elapsed_us(&self) -> f64 {
        self.0[idx::ELAPSED_US]
    }

    pub fn cpu_us(&self) -> f64 {
        self.0[idx::CPU_US]
    }

    pub fn memory_bytes(&self) -> f64 {
        self.0[idx::MEMORY_BYTES]
    }

    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Element-wise scale by a constant (used by complexity normalization).
    pub fn scale(&self, factor: f64) -> Metrics {
        let mut out = *self;
        for v in &mut out.0 {
            *v *= factor;
        }
        out
    }

    /// Element-wise division; divisor elements of zero yield zero rather than
    /// infinity so degenerate measurements don't poison training data.
    pub fn div_elementwise(&self, other: &Metrics) -> Metrics {
        let mut out = Metrics::ZERO;
        for i in 0..METRIC_COUNT {
            out.0[i] = if other.0[i] == 0.0 {
                0.0
            } else {
                self.0[i] / other.0[i]
            };
        }
        out
    }

    /// Element-wise multiplication (apply interference ratios to a base
    /// prediction).
    pub fn mul_elementwise(&self, other: &Metrics) -> Metrics {
        let mut out = *self;
        for i in 0..METRIC_COUNT {
            out.0[i] *= other.0[i];
        }
        out
    }

    /// Element-wise maximum (used for parallel OUs where elapsed time is the
    /// max over threads, paper §4.2 footnote 1).
    pub fn max_elementwise(&self, other: &Metrics) -> Metrics {
        let mut out = *self;
        for i in 0..METRIC_COUNT {
            out.0[i] = out.0[i].max(other.0[i]);
        }
        out
    }

    /// Clamp every element to at least `floor` (interference ratios are >= 1
    /// by definition, paper §5.2).
    pub fn clamp_min(&self, floor: f64) -> Metrics {
        let mut out = *self;
        for v in &mut out.0 {
            *v = v.max(floor);
        }
        out
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.0.iter().any(|v| !v.is_finite())
    }
}

impl Add for Metrics {
    type Output = Metrics;
    fn add(self, rhs: Metrics) -> Metrics {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for Metrics {
    fn add_assign(&mut self, rhs: Metrics) {
        for i in 0..METRIC_COUNT {
            self.0[i] += rhs.0[i];
        }
    }
}

impl Index<usize> for Metrics {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Metrics {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl FromIterator<f64> for Metrics {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Metrics {
        let mut out = Metrics::ZERO;
        for (i, v) in iter.into_iter().take(METRIC_COUNT).enumerate() {
            out.0[i] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_scale() {
        let a = Metrics::new([1.0; METRIC_COUNT]);
        let b = a.scale(2.0);
        assert_eq!((a + b).0[0], 3.0);
    }

    #[test]
    fn div_by_zero_yields_zero() {
        let a = Metrics::new([4.0; METRIC_COUNT]);
        let mut b = Metrics::new([2.0; METRIC_COUNT]);
        b.0[3] = 0.0;
        let r = a.div_elementwise(&b);
        assert_eq!(r.0[0], 2.0);
        assert_eq!(r.0[3], 0.0);
    }

    #[test]
    fn max_elementwise_takes_larger() {
        let mut a = Metrics::ZERO;
        let mut b = Metrics::ZERO;
        a.0[0] = 5.0;
        b.0[0] = 3.0;
        b.0[1] = 7.0;
        let m = a.max_elementwise(&b);
        assert_eq!(m.0[0], 5.0);
        assert_eq!(m.0[1], 7.0);
    }

    #[test]
    fn clamp_min_enforces_floor() {
        let a = Metrics::new([0.5; METRIC_COUNT]);
        assert!(a.clamp_min(1.0).0.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Metrics::ZERO;
        assert!(!a.has_non_finite());
        a.0[2] = f64::NAN;
        assert!(a.has_non_finite());
    }

    #[test]
    fn metric_names_align_with_indices() {
        assert_eq!(METRIC_NAMES[idx::ELAPSED_US], "elapsed_us");
        assert_eq!(METRIC_NAMES[idx::MEMORY_BYTES], "memory_bytes");
        assert_eq!(METRIC_NAMES.len(), METRIC_COUNT);
    }
}
