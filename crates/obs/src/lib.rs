//! Runtime observability for the MB2 engine.
//!
//! MB2's premise is that a self-driving DBMS can observe itself cheaply —
//! the paper's Table 2 reports training-data collection at <1% runtime
//! overhead, and §6.1's resource tracker is the primitive the whole
//! framework learns from. The per-OU [`OuTracker`] path covers *training*;
//! this crate covers *runtime*: a system-wide [`MetricsRegistry`] every
//! subsystem (WAL, transactions, GC, indexes, the executor) publishes into,
//! scrapeable as Prometheus v0 text or a JSON snapshot from
//! `Database::metrics_prometheus` / `Database::metrics_json`.
//!
//! Design goals, in order:
//!
//! 1. **Hot-path cost near zero.** Counters are sharded over cache-padded
//!    atomics (no lock, no false sharing under multi-thread increment);
//!    histograms are one atomic add into a fixed-size bucket array; span
//!    timers collapse to a single relaxed load when the registry is
//!    disabled (the paper's "turn off the tracker" mode).
//! 2. **Mergeable, quantile-capable histograms.** [`Histogram`] uses a
//!    log-linear (HDR-style) bucket layout with a fixed shape, so merging
//!    two histograms is element-wise addition and any quantile is
//!    answerable to a bounded relative error (≤ 1/32 ≈ 3.2%).
//! 3. **One registry, everywhere.** Subsystem stats structs (`WalStats`,
//!    `TxnStats`, GC counters) hold handles into the registry rather than
//!    parallel hand-rolled atomics, so a single scrape sees the whole
//!    engine.
//!
//! [`OuTracker`]: https://docs.rs/mb2-exec
//!
//! # Example
//!
//! ```
//! use mb2_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::shared();
//! let requests = registry.counter("mb2_requests_total", "Requests served.");
//! let latency = registry.histogram("mb2_request_latency_us", "Request latency (µs).");
//!
//! let span = registry.span();
//! requests.inc();
//! span.observe(&latency);
//!
//! let text = registry.prometheus_text();
//! assert!(text.contains("mb2_requests_total 1"));
//! ```

pub mod counter;
pub mod expose;
pub mod histogram;
pub mod registry;
pub mod span;

pub use counter::{Counter, FloatGauge, Gauge};
pub use histogram::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS, HISTOGRAM_PRECISION_BITS};
pub use registry::{MetricHandle, MetricSnapshot, MetricsRegistry};
pub use span::SpanTimer;
