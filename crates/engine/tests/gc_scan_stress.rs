//! GC-vs-parallel-scan stress: an aggressive background garbage collector
//! (1ms interval) pruning version chains underneath 8-way morsel-parallel
//! scans while writers churn, with snapshot invariants checked on every
//! read. Regression cover for lifecycle races between GC, the exec pool,
//! and MVCC readers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mb2_common::Value;
use mb2_engine::{Database, DatabaseConfig};

const ACCOUNTS: i64 = 64;
const INITIAL_BALANCE: i64 = 100;

/// Deterministic xorshift — keeps the "randomized queries" reproducible.
fn next(rng: &mut u64) -> u64 {
    let mut x = *rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng = x;
    x
}

fn build_db() -> Arc<Database> {
    let mut cfg = DatabaseConfig {
        gc_interval: Some(Duration::from_millis(1)),
        ..DatabaseConfig::default()
    };
    cfg.knobs.parallelism = 8;
    let db = Arc::new(Database::new(cfg).expect("database"));
    db.execute("CREATE TABLE acct (id INT, bal INT)").unwrap();
    for chunk in 0..(ACCOUNTS / 16) {
        let rows: Vec<String> = (0..16)
            .map(|i| format!("({}, {INITIAL_BALANCE})", chunk * 16 + i))
            .collect();
        db.execute(&format!("INSERT INTO acct VALUES {}", rows.join(", ")))
            .unwrap();
    }
    db
}

#[test]
fn aggressive_gc_under_parallel_scans_preserves_snapshots() {
    let db = build_db();
    let stop = Arc::new(AtomicBool::new(false));

    // Writers: balance transfers between random accounts. Each commit
    // creates garbage versions for the 1ms GC to prune; aborts exercise
    // the undo path. Total balance and row count are invariant.
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut rng = 0x9e3779b97f4a7c15u64.wrapping_mul(w + 1);
                let mut commits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let a = (next(&mut rng) % ACCOUNTS as u64) as i64;
                    let b = (next(&mut rng) % ACCOUNTS as u64) as i64;
                    let amt = (next(&mut rng) % 7) as i64 + 1;
                    let mut session = db.session();
                    let result = session
                        .execute("BEGIN")
                        .and_then(|_| {
                            session.execute(&format!(
                                "UPDATE acct SET bal = bal - {amt} WHERE id = {a}"
                            ))
                        })
                        .and_then(|_| {
                            session.execute(&format!(
                                "UPDATE acct SET bal = bal + {amt} WHERE id = {b}"
                            ))
                        })
                        .and_then(|_| session.execute("COMMIT"));
                    match result {
                        Ok(_) => commits += 1,
                        Err(_) => {
                            // Write-write conflict: roll back and retry.
                            if session.in_transaction() {
                                let _ = session.execute("ROLLBACK");
                            }
                        }
                    }
                }
                commits
            })
        })
        .collect();

    // Readers: randomized parallel scans whose snapshot invariants must
    // hold on every single read, no matter what GC pruned mid-scan.
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut rng = 0xdeadbeefcafef00du64.wrapping_mul(r + 1);
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match next(&mut rng) % 3 {
                        0 => {
                            let res = db.execute("SELECT SUM(bal) FROM acct").unwrap();
                            assert_eq!(
                                res.rows,
                                vec![vec![Value::Int(ACCOUNTS * INITIAL_BALANCE)]],
                                "snapshot total drifted"
                            );
                        }
                        1 => {
                            let res = db.execute("SELECT COUNT(*) FROM acct").unwrap();
                            assert_eq!(res.rows, vec![vec![Value::Int(ACCOUNTS)]]);
                        }
                        _ => {
                            let id = (next(&mut rng) % ACCOUNTS as u64) as i64;
                            let res = db
                                .execute(&format!(
                                    "SELECT id, bal FROM acct WHERE id >= {id} ORDER BY id"
                                ))
                                .unwrap();
                            assert_eq!(res.rows.len(), (ACCOUNTS - id) as usize);
                        }
                    }
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    // Streaming-vs-materialized identity inside one snapshot, checked
    // while the churn is live: both paths of the same session transaction
    // must agree row-for-row.
    let identity = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut checks = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let mut session = db.session();
                session.execute("BEGIN").unwrap();
                let materialized = session
                    .execute("SELECT id, bal FROM acct ORDER BY id")
                    .unwrap()
                    .rows;
                let mut streamed: Vec<Vec<Value>> = Vec::new();
                session
                    .execute_streaming("SELECT id, bal FROM acct ORDER BY id", None, &mut |b| {
                        streamed.extend(b.rows.iter().map(|r| r.as_ref().clone()));
                        Ok(())
                    })
                    .unwrap();
                session.execute("COMMIT").unwrap();
                assert_eq!(
                    materialized, streamed,
                    "streaming diverged from materialized"
                );
                checks += 1;
            }
            checks
        })
    };

    let deadline = Instant::now() + Duration::from_millis(600);
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::Relaxed);

    let commits: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
    let reads: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    let checks = identity.join().unwrap();
    assert!(commits > 0, "writers never committed");
    assert!(reads > 0, "readers never read");
    assert!(checks > 0, "identity checker never ran");

    // Quiesced, the invariant must hold exactly, and GC must have pruned
    // without corrupting the live versions.
    let total = db.execute("SELECT SUM(bal) FROM acct").unwrap();
    assert_eq!(
        total.rows,
        vec![vec![Value::Int(ACCOUNTS * INITIAL_BALANCE)]]
    );
    db.shutdown();
}
