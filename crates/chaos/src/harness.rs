//! The chaos harness: a durable engine behind a live server, concurrent
//! partitioned SmallBank workers, and the wire-vs-oracle consistency check.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mb2_common::{DbResult, FaultInjector, Value};
use mb2_engine::{recover_with, Database, DatabaseConfig, RecoveryOptions, RecoveryReport};
use mb2_server::{Client, Server, ServerConfig, SupervisorConfig};
use mb2_workloads::smallbank::SmallBank;
use mb2_workloads::Workload;

use crate::worker::{self, TxnOutcome, WorkerReport, WorkerShared, WorkerState};

/// Harness configuration. Everything that varies between scenarios.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the fault injector and every worker's RNG.
    pub seed: u64,
    /// SmallBank account count; split evenly into per-worker ranges.
    pub accounts: usize,
    /// Concurrent load workers (each gets a private account range).
    pub workers: usize,
    /// Enable the server's self-healing supervisor.
    pub supervisor: bool,
    /// Background GC interval (`None` = no GC thread).
    pub gc_interval: Option<Duration>,
    /// Tag for the WAL's temp-file name (use the test name).
    pub name: &'static str,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC0FFEE,
            accounts: 400,
            workers: 4,
            supervisor: false,
            gc_interval: None,
            name: "default",
        }
    }
}

/// A running phase: worker threads currently driving load.
pub struct Phase {
    handles: Vec<JoinHandle<WorkerState>>,
}

/// A live server under chaos: engine + server + persistent worker states.
pub struct ChaosHarness {
    cfg: ChaosConfig,
    pub faults: Arc<FaultInjector>,
    workload: SmallBank,
    server: Option<Server>,
    shared: Arc<WorkerShared>,
    /// `None` while that worker's state is out on a phase thread.
    workers: Vec<Option<WorkerState>>,
    wal_path: PathBuf,
    /// Bumped per harness-driven (crash) recovery, for generation paths.
    crash_generation: u64,
}

impl ChaosHarness {
    /// A durable engine configuration: on-disk WAL, fsync at every commit —
    /// so every wire-acknowledged commit is on disk before the ack, which
    /// is what makes the zero-loss invariant checkable at all.
    fn engine_cfg(&self, wal: PathBuf, faults: Option<Arc<FaultInjector>>) -> DatabaseConfig {
        DatabaseConfig {
            wal_enabled: true,
            wal_path: Some(wal),
            wal_fsync: true,
            wal_sync_commit: true,
            wal_flush_retries: 1,
            wal_retry_backoff: Duration::from_micros(50),
            faults,
            gc_interval: self.cfg.gc_interval,
            ..DatabaseConfig::default()
        }
    }

    fn server_cfg(&self) -> ServerConfig {
        ServerConfig {
            poll_interval: Duration::from_millis(5),
            max_connections: self.cfg.workers * 2 + 8,
            faults: Some(self.faults.clone()),
            supervisor: self.cfg.supervisor.then(|| SupervisorConfig {
                probe_interval: Duration::from_millis(10),
                backoff: Duration::from_millis(10),
                // The replacement engine gets no injector: a scenario that
                // poisoned the WAL must not poison the recovery too.
                template: self.engine_cfg(PathBuf::new(), None),
                ..SupervisorConfig::default()
            }),
            ..ServerConfig::default()
        }
    }

    /// Build the engine, load SmallBank (plus the ledger marker table),
    /// and start serving.
    pub fn start(cfg: ChaosConfig) -> ChaosHarness {
        assert!(cfg.workers >= 1 && cfg.accounts >= cfg.workers * 2);
        let wal_path =
            std::env::temp_dir().join(format!("mb2_chaos_{}_{}.log", std::process::id(), cfg.name));
        let _ = std::fs::remove_file(&wal_path);

        let workload = SmallBank {
            accounts: cfg.accounts,
            hotspot_fraction: 0.25,
            hotspot_size: 10,
        };
        let faults = Arc::new(FaultInjector::new(cfg.seed));
        let mut harness = ChaosHarness {
            workers: (0..cfg.workers)
                .map(|id| {
                    let span = cfg.accounts / cfg.workers;
                    let lo = id * span;
                    let hi = if id + 1 == cfg.workers {
                        cfg.accounts
                    } else {
                        lo + span
                    };
                    Some(WorkerState::new(id, (lo, hi), cfg.seed))
                })
                .collect(),
            cfg,
            faults,
            workload,
            server: None,
            shared: Arc::new(WorkerShared {
                addr: RwLock::new(String::new()),
                stop: AtomicBool::new(false),
            }),
            wal_path,
            crash_generation: 0,
        };

        let db_cfg = harness.engine_cfg(harness.wal_path.clone(), Some(harness.faults.clone()));
        let db = Database::new(db_cfg).expect("chaos engine");
        harness.workload.load(&db).expect("smallbank load");
        db.execute("CREATE TABLE sb_ledger (txnid INT)")
            .expect("ledger table");
        let server = Server::start(Arc::new(db), harness.server_cfg()).expect("chaos server");
        harness.set_addr(&server);
        harness.server = Some(server);
        harness
    }

    fn set_addr(&self, server: &Server) {
        *self.shared.addr.write().unwrap_or_else(|e| e.into_inner()) =
            server.local_addr().to_string();
    }

    /// The server currently fronting the engine.
    pub fn server(&self) -> &Server {
        self.server.as_ref().expect("server running")
    }

    /// The engine currently serving traffic.
    pub fn db(&self) -> Arc<Database> {
        self.server().db()
    }

    /// A fresh client connection to the current server.
    pub fn client(&self) -> DbResult<Client> {
        Client::connect(self.shared.addr())
    }

    /// Spawn every worker for `attempts` transaction attempts each and
    /// return immediately — chaos events fire while the phase runs.
    pub fn start_phase(&mut self, attempts: usize) -> Phase {
        let handles = self
            .workers
            .iter_mut()
            .map(|slot| {
                let state = slot.take().expect("phase already running");
                let shared = self.shared.clone();
                let workload = self.workload.clone();
                std::thread::Builder::new()
                    .name(format!("chaos-worker-{}", state.id))
                    .spawn(move || worker::run_worker(&shared, &workload, state, attempts))
                    .expect("spawn chaos worker")
            })
            .collect();
        Phase { handles }
    }

    /// Wait for every worker to finish its attempt budget.
    pub fn join_phase(&mut self, phase: Phase) {
        for handle in phase.handles {
            let state = handle.join().expect("chaos worker panicked");
            let id = state.id;
            self.workers[id] = Some(state);
        }
    }

    /// `start_phase` + `join_phase` in one call, for load with no
    /// mid-phase event.
    pub fn run_phase(&mut self, attempts: usize) {
        let phase = self.start_phase(attempts);
        self.join_phase(phase);
    }

    /// Summed worker counters.
    pub fn report(&self) -> WorkerReport {
        let mut r = WorkerReport::default();
        for w in self.workers.iter().flatten() {
            r.committed += w.committed;
            r.aborted += w.aborted;
            r.uncertain += w.uncertain;
        }
        r
    }

    /// Crash the server (connections tear; nothing is flushed beyond what
    /// commits already forced to disk) and bring up a replacement recovered
    /// from the WAL, on a fresh port. Returns the recovery report.
    pub fn kill_and_recover(&mut self) -> RecoveryReport {
        let server = self.server.take().expect("server running");
        let old_db = server.db();
        let source = old_db
            .wal()
            .and_then(|w| w.config().path.clone())
            .expect("chaos engine has an on-disk WAL");
        drop(server); // drains connection workers; clients see torn sockets
        old_db.shutdown();

        self.crash_generation += 1;
        let mut gen = source.clone().into_os_string();
        gen.push(format!(".c{}", self.crash_generation));
        let cfg = self.engine_cfg(PathBuf::from(gen), Some(self.faults.clone()));
        let (db, report) =
            recover_with(&source, cfg, RecoveryOptions { salvage: true }).expect("crash recovery");
        let server = Server::start(Arc::new(db), self.server_cfg()).expect("restart server");
        self.set_addr(&server);
        self.server = Some(server);
        report
    }

    /// Resolve every `Uncertain` log entry by probing its ledger marker on
    /// the live server: marker present ⟹ the commit happened.
    fn resolve_uncertain(&mut self) {
        let shared = self.shared.clone();
        let mut client = Self::connect_with_retry_static(&shared);
        for state in self.workers.iter_mut().flatten() {
            for entry in &mut state.log {
                if entry.outcome != TxnOutcome::Uncertain {
                    continue;
                }
                let sql = format!(
                    "SELECT COUNT(*) FROM sb_ledger WHERE txnid = {}",
                    entry.marker
                );
                let present = loop {
                    match client.query(&sql) {
                        Ok(resp) => break resp.rows[0][0] == Value::Int(1),
                        Err(_) => client = Self::connect_with_retry_static(&shared),
                    }
                };
                entry.outcome = if present {
                    TxnOutcome::Committed
                } else {
                    TxnOutcome::Aborted
                };
            }
            state.log.retain(|e| e.outcome == TxnOutcome::Committed);
        }
    }

    fn connect_with_retry(&self) -> Client {
        Self::connect_with_retry_static(&self.shared)
    }

    fn connect_with_retry_static(shared: &WorkerShared) -> Client {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match Client::connect(shared.addr()) {
                Ok(c) => return c,
                Err(e) => {
                    assert!(
                        Instant::now() < deadline,
                        "server unreachable for consistency check: {e:?}"
                    );
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }

    /// The zero-loss invariant: replay every worker's committed history
    /// into a fresh in-process oracle and compare full table dumps against
    /// the live server, over the wire. Panics on any divergence.
    ///
    /// Sound because worker account ranges are disjoint (histories commute
    /// across workers) and each worker's transactions are replayed in its
    /// own acknowledgement order.
    pub fn assert_consistent(&mut self) {
        self.resolve_uncertain();

        let oracle = Database::open();
        self.workload.load(&oracle).expect("oracle load");
        oracle
            .execute("CREATE TABLE sb_ledger (txnid INT)")
            .expect("oracle ledger");
        for state in self.workers.iter().flatten() {
            for entry in &state.log {
                mb2_workloads::execute_transaction(&oracle, &entry.statements)
                    .expect("oracle replay must not conflict");
            }
        }

        let mut client = self.connect_with_retry();
        for dump in [
            // Ledger first: a marker mismatch means a whole acknowledged
            // transaction is missing, a balance-only mismatch means a
            // transaction was applied partially — different bugs.
            "SELECT txnid FROM sb_ledger ORDER BY txnid",
            "SELECT custid, bal FROM sb_savings ORDER BY custid",
            "SELECT custid, bal FROM sb_checking ORDER BY custid",
        ] {
            // Retry through injected connection tears: an armed read-fault
            // storm hits the checker's own connection too.
            let deadline = Instant::now() + Duration::from_secs(10);
            let wire = loop {
                match client.query(dump) {
                    Ok(resp) => break resp.rows,
                    Err(e) => {
                        assert!(Instant::now() < deadline, "wire dump kept failing: {e:?}");
                        client = self.connect_with_retry();
                    }
                }
            };
            let expect = oracle.execute(dump).expect("oracle dump").rows;
            if wire != expect {
                self.debug_divergence(dump, &wire, &expect, &mut client, &oracle);
            }
            assert_eq!(
                wire, expect,
                "committed data diverged from the oracle for: {dump}"
            );
        }
    }

    /// Diagnostic dump on a wire-vs-oracle mismatch: for every diverged row,
    /// print the owning worker's log entries touching it and whether their
    /// ledger markers exist on each side.
    fn debug_divergence(
        &self,
        dump: &str,
        wire: &[Vec<Value>],
        expect: &[Vec<Value>],
        client: &mut Client,
        oracle: &Database,
    ) {
        eprintln!("=== divergence in {dump} ===");
        for (w, e) in wire.iter().zip(expect.iter()) {
            if w == e {
                continue;
            }
            eprintln!("row wire={w:?} oracle={e:?}");
            let Some(Value::Int(custid)) = w.first() else {
                continue;
            };
            let needle = format!("custid = {custid}");
            for state in self.workers.iter().flatten() {
                for entry in &state.log {
                    if !entry.statements.iter().any(|s| s.contains(&needle)) {
                        continue;
                    }
                    let probe = format!(
                        "SELECT COUNT(*) FROM sb_ledger WHERE txnid = {}",
                        entry.marker
                    );
                    let on_wire = client
                        .query(&probe)
                        .map(|r| r.rows[0][0] == Value::Int(1))
                        .unwrap_or(false);
                    let on_oracle = oracle
                        .execute(&probe)
                        .map(|r| r.rows[0][0] == Value::Int(1))
                        .unwrap_or(false);
                    eprintln!(
                        "  worker {} marker {} outcome {:?} wire_marker={on_wire} oracle_marker={on_oracle} stmts={:?}",
                        state.id, entry.marker, entry.outcome, entry.statements
                    );
                }
            }
        }
    }

    /// Drain workers (if a phase is somehow still running), shut the server
    /// and engine down, and remove every WAL generation file.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        let dir = self.wal_path.parent().unwrap_or(std::path::Path::new("."));
        let prefix = self
            .wal_path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().starts_with(&prefix) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }
}
