//! The log manager: record serialization into buffers, a flush queue, and a
//! background flusher thread with a configurable flush interval (a behavior
//! knob, paper §4.2).
//!
//! The flush path is the durability boundary, so it is hardened:
//!
//! * an optional fsync (`File::sync_all`) after each write batch,
//! * bounded retry with exponential backoff on transient flush errors
//!   (each failed attempt is rolled back with `set_len` so a retry never
//!   duplicates records),
//! * a latched **poisoned** state once retries are exhausted or a simulated
//!   crash occurs: every subsequent append fails fast with
//!   [`DbError::WalUnavailable`] and the engine degrades to read-only,
//! * named fault points ([`mb2_common::fault::points`]) consulted at open,
//!   write, and fsync time so tests can inject deterministic failures.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use mb2_common::fault::{points, FaultInjector};
use mb2_common::{DbError, DbResult};
use mb2_obs::{Counter, Histogram, MetricsRegistry, SpanTimer};

use crate::buffer::LogBuffer;
#[cfg(test)]
use crate::buffer::LOG_BUFFER_CAPACITY;
use crate::record::LogRecord;

/// Configuration for the log manager.
#[derive(Debug, Clone)]
pub struct LogManagerConfig {
    /// Path to the log file; `None` sinks writes into a byte counter only
    /// (used by unit tests and pure-OLAP experiments).
    pub path: Option<PathBuf>,
    /// Background flush interval. This is the "log flush interval" behavior
    /// knob — an input feature of the Log Record Flush OU.
    pub flush_interval: Duration,
    /// Whether to start the background flusher thread.
    pub background: bool,
    /// Call `sync_all` (fsync) after each successful write batch. Off by
    /// default: the OU-measurement harness wants OS-buffered latencies, but
    /// durability experiments and the torture tests turn it on.
    pub fsync: bool,
    /// Make each commit flush (and, with `fsync`, sync) the log before the
    /// transaction's writes become visible. Only effective in foreground
    /// mode, where `flush_now` drains the queue synchronously.
    pub sync_commit: bool,
    /// How many times a failed flush is retried before the log is poisoned.
    pub max_flush_retries: u32,
    /// Base backoff between retries; doubles each attempt (capped at 100ms).
    pub retry_backoff: Duration,
    /// Deterministic fault injection for durability tests; `None` in
    /// production.
    pub faults: Option<Arc<FaultInjector>>,
    /// Metrics registry the WAL publishes into. `None` gives the manager a
    /// private registry (counters still work, nothing is scraped with the
    /// rest of the engine).
    pub metrics: Option<Arc<MetricsRegistry>>,
}

impl Default for LogManagerConfig {
    fn default() -> Self {
        LogManagerConfig {
            path: None,
            flush_interval: Duration::from_millis(10),
            background: false,
            fsync: false,
            sync_commit: false,
            max_flush_retries: 3,
            retry_backoff: Duration::from_millis(1),
            faults: None,
            metrics: None,
        }
    }
}

/// WAL counters and latency histograms, registry-backed: every field is a
/// handle into a [`MetricsRegistry`] (`mb2_wal_*` families), so one engine
/// scrape sees them alongside every other subsystem.
#[derive(Debug)]
pub struct WalStats {
    pub bytes_serialized: Arc<Counter>,
    pub records_serialized: Arc<Counter>,
    pub buffers_flushed: Arc<Counter>,
    pub bytes_flushed: Arc<Counter>,
    pub flush_calls: Arc<Counter>,
    /// Successful `sync_all` calls.
    pub fsync_calls: Arc<Counter>,
    /// Failed flush attempts (each retry that fails counts once).
    pub flush_errors: Arc<Counter>,
    /// Retries performed after a failed flush attempt.
    pub flush_retries: Arc<Counter>,
    /// End-to-end latency of one successful write batch (µs), fsync
    /// included when enabled.
    pub flush_latency_us: Arc<Histogram>,
    /// Latency of the `sync_all` call alone (µs).
    pub fsync_latency_us: Arc<Histogram>,
    /// Bytes per flushed batch.
    pub flush_batch_bytes: Arc<Histogram>,
    last_error: Mutex<Option<String>>,
    registry: Arc<MetricsRegistry>,
}

impl Default for WalStats {
    /// A stats block backed by a private registry (unit tests, standalone
    /// managers).
    fn default() -> Self {
        WalStats::new(MetricsRegistry::shared())
    }
}

impl WalStats {
    pub fn new(registry: Arc<MetricsRegistry>) -> WalStats {
        WalStats {
            bytes_serialized: registry.counter(
                "mb2_wal_bytes_serialized_total",
                "Bytes of log records serialized into WAL buffers.",
            ),
            records_serialized: registry.counter(
                "mb2_wal_records_serialized_total",
                "Log records serialized into WAL buffers.",
            ),
            buffers_flushed: registry.counter(
                "mb2_wal_buffers_flushed_total",
                "WAL buffers written to the log device.",
            ),
            bytes_flushed: registry.counter(
                "mb2_wal_bytes_flushed_total",
                "Bytes written to the log device.",
            ),
            flush_calls: registry
                .counter("mb2_wal_flush_calls_total", "Successful WAL write batches."),
            fsync_calls: registry.counter(
                "mb2_wal_fsync_calls_total",
                "Successful sync_all (fsync) calls on the log file.",
            ),
            flush_errors: registry.counter(
                "mb2_wal_flush_errors_total",
                "Failed WAL flush attempts (each failed retry counts once).",
            ),
            flush_retries: registry.counter(
                "mb2_wal_flush_retries_total",
                "Retries performed after a failed WAL flush attempt.",
            ),
            flush_latency_us: registry.histogram(
                "mb2_wal_flush_latency_us",
                "Latency of one successful WAL write batch in microseconds.",
            ),
            fsync_latency_us: registry.histogram(
                "mb2_wal_fsync_latency_us",
                "Latency of the fsync call alone in microseconds.",
            ),
            flush_batch_bytes: registry
                .histogram("mb2_wal_flush_batch_bytes", "Bytes per flushed WAL batch."),
            last_error: Mutex::new(None),
            registry,
        }
    }

    /// The five serialization/flush throughput counters, in declaration
    /// order. (Kept at five fields for existing metric-collector callers;
    /// error counters have their own accessors.)
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.bytes_serialized.get(),
            self.records_serialized.get(),
            self.buffers_flushed.get(),
            self.bytes_flushed.get(),
            self.flush_calls.get(),
        )
    }

    /// The most recent flush error, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// A span timer gated on the backing registry's enable flag.
    fn span(&self) -> SpanTimer {
        self.registry.span()
    }

    fn record_error(&self, error: &DbError) {
        self.flush_errors.inc();
        *self.last_error.lock() = Some(error.to_string());
    }
}

/// Durability settings shared by the foreground path and the flusher thread.
#[derive(Clone)]
struct DurabilityOpts {
    fsync: bool,
    max_retries: u32,
    backoff: Duration,
    faults: Option<Arc<FaultInjector>>,
}

impl DurabilityOpts {
    fn from_config(config: &LogManagerConfig) -> Self {
        DurabilityOpts {
            fsync: config.fsync,
            max_retries: config.max_flush_retries,
            backoff: config.retry_backoff,
            faults: config.faults.clone(),
        }
    }
}

/// A failed flush attempt. `crash` marks simulated crashes (torn writes):
/// those are not transient and must not be retried — the partial bytes stay
/// on disk exactly as a real crash would leave them.
struct FlushFailure {
    error: DbError,
    crash: bool,
}

struct Flusher {
    file: Option<File>,
    rx: Receiver<LogBuffer>,
    stats: Arc<WalStats>,
    durable_seq: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    /// Shutdown wakeup: flipped under the lock and notified by
    /// `LogManager::shutdown` so an inter-flush wait ends immediately
    /// instead of running out the full interval.
    wakeup: Arc<(StdMutex<bool>, Condvar)>,
    poisoned: Arc<AtomicBool>,
    opts: DurabilityOpts,
    /// Inter-flush wait in microseconds, shared with the manager so
    /// `LogManager::set_flush_interval` takes effect on the next wait
    /// without restarting the thread (the flush interval is a runtime
    /// behavior knob the autopilot can tune).
    interval_us: Arc<AtomicU64>,
}

impl Flusher {
    fn run(mut self) {
        loop {
            // Collect everything queued, then wait out the interval (or a
            // shutdown notification, whichever comes first).
            let mut drained = Vec::new();
            while let Ok(buf) = self.rx.try_recv() {
                drained.push(buf);
            }
            self.flush(&drained);
            if self.stop.load(Ordering::Acquire) {
                // Final drain before exiting.
                let mut rest = Vec::new();
                while let Ok(buf) = self.rx.try_recv() {
                    rest.push(buf);
                }
                self.flush(&rest);
                return;
            }
            let (lock, cvar) = &*self.wakeup;
            let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
            while !*stopped {
                // Re-read the knob under the lock each pass: a
                // `set_flush_interval` nudge wakes the wait (not timed
                // out, not stopped) and the next pass adopts the new
                // cadence immediately.
                let interval = Duration::from_micros(self.interval_us.load(Ordering::Acquire));
                let (guard, timeout) = match cvar.wait_timeout(stopped, interval) {
                    Ok((g, t)) => (g, t),
                    Err(_) => return,
                };
                stopped = guard;
                if timeout.timed_out() {
                    break;
                }
            }
        }
    }

    fn flush(&mut self, buffers: &[LogBuffer]) {
        if buffers.is_empty() || self.poisoned.load(Ordering::Acquire) {
            // Once poisoned the log accepts no more data; queued buffers are
            // dropped, matching what the latched append-rejection tells the
            // engine (`WalUnavailable`).
            return;
        }
        // An error here is not discarded: flush_with_retry records it in
        // WalStats (flush_errors / last_error) and latches the poisoned
        // flag, which the engine surfaces as `DbError::WalUnavailable` on
        // the next append.
        if flush_with_retry(
            &mut self.file,
            buffers,
            &self.stats,
            &self.opts,
            &self.poisoned,
        )
        .is_ok()
        {
            advance_durable_seq(&self.durable_seq, buffers);
        }
    }
}

/// Raise the durable watermark to the highest append seq in a successfully
/// flushed batch. Callers serialize flushes (the foreground path under the
/// file lock, the background path on its single thread); `fetch_max` keeps
/// the watermark monotonic regardless.
fn advance_durable_seq(durable_seq: &AtomicU64, buffers: &[LogBuffer]) {
    if let Some(max) = buffers.iter().map(|b| b.last_seq).max() {
        durable_seq.fetch_max(max, Ordering::AcqRel);
    }
}

/// One write attempt: all buffers, a stream flush, and an optional fsync.
/// On transient failure the file is truncated back to its pre-attempt
/// length, so the caller may retry without duplicating records.
fn write_once(
    file: &mut Option<File>,
    buffers: &[LogBuffer],
    opts: &DurabilityOpts,
    stats: &WalStats,
) -> Result<usize, FlushFailure> {
    let total: usize = buffers.iter().map(|b| b.data.len()).sum();
    let Some(f) = file.as_mut() else {
        // Sink mode: account the bytes, no I/O to fail (or time).
        stats.buffers_flushed.add(buffers.len() as u64);
        stats.bytes_flushed.add(total as u64);
        stats.flush_calls.inc();
        stats.flush_batch_bytes.record(total as u64);
        return Ok(total);
    };
    let flush_span = stats.span();

    // One-shot torn write: persist a strict prefix, then report a crash.
    if let Some(inj) = &opts.faults {
        if let Some(keep) = inj.torn_write(points::WAL_TORN_WRITE, total) {
            let mut left = keep;
            for buf in buffers {
                let n = left.min(buf.data.len());
                let _ = f.write_all(&buf.data[..n]);
                left -= n;
                if left == 0 {
                    break;
                }
            }
            let _ = f.flush();
            let _ = f.sync_all();
            return Err(FlushFailure {
                error: DbError::Wal(format!(
                    "injected torn write: {keep} of {total} bytes reached disk"
                )),
                crash: true,
            });
        }
    }

    let start_len = f.metadata().map(|m| m.len()).ok();
    let res: DbResult<()> = (|| {
        for buf in buffers {
            if let Some(inj) = &opts.faults {
                if let Some(msg) = inj.should_fail(points::WAL_WRITE) {
                    return Err(DbError::Wal(msg));
                }
            }
            f.write_all(&buf.data)
                .map_err(|e| DbError::Wal(format!("write: {e}")))?;
        }
        f.flush().map_err(|e| DbError::Wal(format!("flush: {e}")))?;
        if opts.fsync {
            if let Some(inj) = &opts.faults {
                if let Some(msg) = inj.should_fail(points::WAL_FSYNC) {
                    return Err(DbError::Wal(msg));
                }
            }
            let fsync_span = stats.span();
            f.sync_all()
                .map_err(|e| DbError::Wal(format!("fsync: {e}")))?;
            fsync_span.observe(&stats.fsync_latency_us);
            stats.fsync_calls.inc();
        }
        Ok(())
    })();
    match res {
        Ok(()) => {
            stats.buffers_flushed.add(buffers.len() as u64);
            stats.bytes_flushed.add(total as u64);
            stats.flush_calls.inc();
            stats.flush_batch_bytes.record(total as u64);
            flush_span.observe(&stats.flush_latency_us);
            Ok(total)
        }
        Err(error) => {
            // Roll back any partial write so a retry starts clean. (Best
            // effort: if even set_len fails the retry's write will fail too.)
            if let Some(len) = start_len {
                let _ = f.set_len(len);
            }
            Err(FlushFailure {
                error,
                crash: false,
            })
        }
    }
}

/// Flush with bounded exponential-backoff retry. Exhausted retries or a
/// simulated crash latch `poisoned` and return [`DbError::WalUnavailable`];
/// every failed attempt is recorded in [`WalStats`].
fn flush_with_retry(
    file: &mut Option<File>,
    buffers: &[LogBuffer],
    stats: &WalStats,
    opts: &DurabilityOpts,
    poisoned: &AtomicBool,
) -> DbResult<usize> {
    let mut attempt: u32 = 0;
    loop {
        match write_once(file, buffers, opts, stats) {
            Ok(bytes) => return Ok(bytes),
            Err(failure) => {
                stats.record_error(&failure.error);
                if failure.crash || attempt >= opts.max_retries {
                    poisoned.store(true, Ordering::Release);
                    return Err(DbError::WalUnavailable(format!(
                        "{} (after {attempt} retries)",
                        failure.error
                    )));
                }
                let backoff = opts
                    .backoff
                    .saturating_mul(1u32 << attempt.min(16))
                    .min(Duration::from_millis(100));
                attempt += 1;
                stats.flush_retries.inc();
                std::thread::sleep(backoff);
            }
        }
    }
}

/// The write-ahead log manager.
pub struct LogManager {
    config: LogManagerConfig,
    stats: Arc<WalStats>,
    current: Mutex<LogBuffer>,
    tx: Sender<LogBuffer>,
    /// Synchronous-flush queue used when no background thread is running.
    sync_queue: Mutex<Vec<LogBuffer>>,
    sync_file: Mutex<Option<File>>,
    stop: Arc<AtomicBool>,
    wakeup: Arc<(StdMutex<bool>, Condvar)>,
    poisoned: Arc<AtomicBool>,
    /// Monotonic append sequence: every record gets the next value under
    /// the `current` buffer lock.
    next_seq: AtomicU64,
    /// Highest append seq known durable (flushed in a successful batch).
    /// Lets a committer whose flush call failed distinguish "my commit
    /// record was already flushed by a group-commit rider" from "it was
    /// rolled back with the failed batch".
    durable_seq: Arc<AtomicU64>,
    opts: DurabilityOpts,
    /// Current background flush interval in microseconds, shared with the
    /// flusher thread (see [`LogManager::set_flush_interval`]).
    flush_interval_us: Arc<AtomicU64>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl LogManager {
    pub fn new(config: LogManagerConfig) -> DbResult<LogManager> {
        let open = |path: &PathBuf| -> DbResult<File> {
            if let Some(inj) = &config.faults {
                if let Some(msg) = inj.should_fail(points::WAL_OPEN) {
                    return Err(DbError::Wal(msg));
                }
            }
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| DbError::Wal(format!("open {}: {e}", path.display())))
        };
        let (tx, rx) = bounded::<LogBuffer>(1024);
        let registry = config
            .metrics
            .clone()
            .unwrap_or_else(MetricsRegistry::shared);
        let stats = Arc::new(WalStats::new(registry));
        let stop = Arc::new(AtomicBool::new(false));
        let wakeup = Arc::new((StdMutex::new(false), Condvar::new()));
        let poisoned = Arc::new(AtomicBool::new(false));
        let durable_seq = Arc::new(AtomicU64::new(0));
        let opts = DurabilityOpts::from_config(&config);
        let flush_interval_us = Arc::new(AtomicU64::new(
            config.flush_interval.as_micros().min(u64::MAX as u128) as u64,
        ));
        let mut flusher_handle = None;
        let mut sync_file = None;
        if config.background {
            let file = config.path.as_ref().map(&open).transpose()?;
            let flusher = Flusher {
                file,
                rx,
                stats: stats.clone(),
                durable_seq: durable_seq.clone(),
                stop: stop.clone(),
                wakeup: wakeup.clone(),
                poisoned: poisoned.clone(),
                opts: opts.clone(),
                interval_us: flush_interval_us.clone(),
            };
            flusher_handle = Some(std::thread::spawn(move || flusher.run()));
        } else {
            sync_file = config.path.as_ref().map(&open).transpose()?;
        }
        Ok(LogManager {
            config,
            stats,
            current: Mutex::new(LogBuffer::new()),
            tx,
            sync_queue: Mutex::new(Vec::new()),
            sync_file: Mutex::new(sync_file),
            stop,
            wakeup,
            poisoned,
            next_seq: AtomicU64::new(0),
            durable_seq,
            opts,
            flush_interval_us,
            flusher: Mutex::new(flusher_handle),
        })
    }

    /// Change the background flush interval at runtime. The flusher reads
    /// the shared value before each inter-flush wait, so the new cadence
    /// takes effect within one old interval (or immediately after the next
    /// flush). A no-op for foreground (non-background) logs.
    pub fn set_flush_interval(&self, interval: Duration) {
        self.flush_interval_us.store(
            interval.as_micros().min(u64::MAX as u128) as u64,
            Ordering::Release,
        );
        // Nudge a flusher parked in its (possibly much longer) old wait so
        // the new cadence applies now, not after the old interval elapses.
        // Taken under the wakeup lock so the notify cannot slip into the
        // window between the flusher's knob read and its park.
        let (lock, cvar) = &*self.wakeup;
        let _guard = lock.lock().unwrap_or_else(|e| e.into_inner());
        cvar.notify_all();
    }

    /// The current background flush interval.
    pub fn flush_interval(&self) -> Duration {
        Duration::from_micros(self.flush_interval_us.load(Ordering::Acquire))
    }

    pub fn stats(&self) -> &WalStats {
        &self.stats
    }

    pub fn config(&self) -> &LogManagerConfig {
        &self.config
    }

    /// Whether an unrecoverable flush failure has latched the log into the
    /// rejecting (read-only) state.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Fail with [`DbError::WalUnavailable`] if the log is poisoned.
    pub fn check_writable(&self) -> DbResult<()> {
        if self.is_poisoned() {
            let detail = self
                .stats
                .last_error()
                .unwrap_or_else(|| "unrecoverable flush failure".to_string());
            Err(DbError::WalUnavailable(detail))
        } else {
            Ok(())
        }
    }

    /// Serialize a record into the current buffer; full buffers move to the
    /// flush queue. Returns the encoded size in bytes, or
    /// [`DbError::WalUnavailable`] once the log is poisoned.
    pub fn append(&self, record: &LogRecord) -> DbResult<usize> {
        self.append_inner(record).map(|(_, len)| len)
    }

    /// [`append`](Self::append), but returning the record's append sequence
    /// number. Compare against [`durable_seq`](Self::durable_seq) to learn
    /// whether the record has reached disk — the commit path uses this to
    /// tell a commit record flushed by a group-commit rider apart from one
    /// lost with a failed batch.
    pub fn append_seq(&self, record: &LogRecord) -> DbResult<u64> {
        self.append_inner(record).map(|(seq, _)| seq)
    }

    fn append_inner(&self, record: &LogRecord) -> DbResult<(u64, usize)> {
        self.check_writable()?;
        let mut current = self.current.lock();
        let start = current.data.len();
        let len = record.serialize_into(&mut current.data);
        if len - crate::record::RECORD_HEADER_LEN > crate::record::MAX_RECORD_LEN {
            // Oversized records are rejected here so the reader can treat
            // any on-disk length claim above MAX_RECORD_LEN as corruption.
            current.data.truncate(start);
            return Err(DbError::Wal(format!(
                "record body of {} bytes exceeds the {} byte limit",
                len - crate::record::RECORD_HEADER_LEN,
                crate::record::MAX_RECORD_LEN
            )));
        }
        current.record_count += 1;
        // Seq assignment is ordered by the `current` lock, so buffer order,
        // file order, and seq order all agree.
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        current.last_seq = seq;
        self.stats.bytes_serialized.add(len as u64);
        self.stats.records_serialized.inc();
        if current.is_full() {
            let full = std::mem::take(&mut *current);
            // Enqueue while still holding the buffer lock: releasing it
            // first would let another thread fill and enqueue a *later*
            // buffer ahead of this one, reordering records on disk —
            // recovery would then see ops after their Commit record and
            // silently drop them.
            self.enqueue(full);
        }
        Ok((seq, len))
    }

    /// The highest append sequence number known durable. Records at or
    /// below this watermark were written (and, with fsync enabled, synced)
    /// in a successful flush batch; the watermark never advances past a
    /// failed batch, whose writes are rolled back. (A simulated torn-write
    /// crash leaves a durable prefix without advancing the watermark — by
    /// design, since it models a crash where nothing was acknowledged.)
    pub fn durable_seq(&self) -> u64 {
        self.durable_seq.load(Ordering::Acquire)
    }

    fn enqueue(&self, buffer: LogBuffer) {
        if self.config.background {
            // Drop on a full queue rather than blocking query threads; the
            // stats still record serialization.
            let _ = self.tx.try_send(buffer);
        } else {
            self.sync_queue.lock().push(buffer);
        }
    }

    /// Move the current (partial) buffer to the flush queue.
    ///
    /// Enqueued under the buffer lock, like `append`'s full-buffer path: a
    /// sealer preempted between taking the buffer and enqueuing it would
    /// otherwise let later appends enqueue (and flush) ahead of it —
    /// reordering records on disk and advancing the durable watermark past
    /// records that are not actually durable yet.
    pub fn seal_current(&self) {
        let mut current = self.current.lock();
        if !current.is_empty() {
            let buf = std::mem::take(&mut *current);
            self.enqueue(buf);
        }
    }

    /// Synchronously flush everything queued (and the current buffer).
    /// Returns (buffers, bytes) flushed. Only valid in foreground mode.
    ///
    /// The file lock is taken *before* draining the queue: with concurrent
    /// committers (sync_commit), draining first would let two flushes write
    /// their batches in swapped order, reordering records on disk. Holding
    /// the lock across drain+write also gives group commit — a committer
    /// blocked here may find its records already durable and flush nothing.
    pub fn flush_now(&self) -> DbResult<(usize, usize)> {
        self.check_writable()?;
        let mut file = self.sync_file.lock();
        // Re-check after acquiring the lock: a concurrent flush may have
        // failed while we waited, poisoning the log and rolling back a
        // batch that contained the records this caller is waiting on. The
        // empty-drain success below would otherwise report them durable.
        self.check_writable()?;
        self.seal_current();
        let drained: Vec<LogBuffer> = std::mem::take(&mut *self.sync_queue.lock());
        if drained.is_empty() {
            return Ok((0, 0));
        }
        let bytes = flush_with_retry(&mut file, &drained, &self.stats, &self.opts, &self.poisoned)?;
        advance_durable_seq(&self.durable_seq, &drained);
        Ok((drained.len(), bytes))
    }

    /// Number of buffers waiting in the synchronous queue.
    pub fn pending_buffers(&self) -> usize {
        self.sync_queue.lock().len()
    }

    /// Stop the background flusher (final drain included). A flusher parked
    /// between intervals is woken immediately, so shutdown latency is
    /// bounded by one flush, not one flush *interval*. In foreground mode
    /// any queued-but-unflushed buffers are flushed here so a clean
    /// shutdown never leaves durable work behind.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.seal_current();
        let (lock, cvar) = &*self.wakeup;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cvar.notify_all();
        if let Some(handle) = self.flusher.lock().take() {
            let _ = handle.join();
        }
        if !self.config.background {
            // Best effort: a poisoned log has nothing more to say.
            let _ = self.flush_now();
        }
    }
}

impl Drop for LogManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::fault::FaultMode;
    use mb2_common::Value;

    fn insert_record(i: u64) -> LogRecord {
        LogRecord::Insert {
            txn_id: i,
            table_id: 1,
            slot: i,
            tuple: vec![Value::Int(i as i64), Value::Varchar("x".repeat(64))],
        }
    }

    #[test]
    fn flush_interval_is_runtime_tunable() {
        // The autopilot tunes the flush-interval knob on a live engine: a
        // manager started with a very long interval must pick up a short
        // one without a restart, visible as records becoming durable.
        let path = std::env::temp_dir().join(format!("mb2_wal_tune_{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mgr = LogManager::new(LogManagerConfig {
            path: Some(path.clone()),
            background: true,
            flush_interval: Duration::from_secs(30),
            ..LogManagerConfig::default()
        })
        .unwrap();
        assert_eq!(mgr.flush_interval(), Duration::from_secs(30));
        mgr.set_flush_interval(Duration::from_millis(1));
        assert_eq!(mgr.flush_interval(), Duration::from_millis(1));
        mgr.append(&LogRecord::Begin { txn_id: 1 }).unwrap();
        let seq = mgr.append_seq(&LogRecord::Commit { txn_id: 1 }).unwrap();
        mgr.seal_current();
        // With the 1ms cadence in effect the record goes durable quickly;
        // with the original 30s interval this would time out.
        use std::time::Instant;
        let deadline = Instant::now() + Duration::from_secs(5);
        while mgr.durable_seq() < seq {
            assert!(
                Instant::now() < deadline,
                "flusher did not adopt the tuned 1ms interval"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        mgr.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shutdown_interrupts_flush_interval() {
        // Regression: the flusher used to `sleep(interval)` between passes,
        // so shutdown with a long interval blocked for the whole interval.
        let wal = LogManager::new(LogManagerConfig {
            background: true,
            flush_interval: Duration::from_secs(30),
            ..LogManagerConfig::default()
        })
        .unwrap();
        wal.append(&insert_record(1)).unwrap();
        // Let the flusher park in its inter-flush wait.
        std::thread::sleep(Duration::from_millis(20));
        let t0 = std::time::Instant::now();
        wal.shutdown();
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "shutdown took {:?} against a 30s flush interval",
            t0.elapsed()
        );
        // The final drain flushed the sealed buffer.
        let (_, _, buffers_flushed, ..) = wal.stats().snapshot();
        assert!(
            buffers_flushed >= 1,
            "sealed buffer not flushed on shutdown"
        );
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mb2_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("wal_{}_{name}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_accumulates_bytes() {
        let mgr = LogManager::new(LogManagerConfig::default()).unwrap();
        let n1 = mgr.append(&LogRecord::Begin { txn_id: 1 }).unwrap();
        let n2 = mgr.append(&insert_record(1)).unwrap();
        assert!(n2 > n1);
        let (bytes, records, ..) = mgr.stats().snapshot();
        assert_eq!(bytes, (n1 + n2) as u64);
        assert_eq!(records, 2);
    }

    #[test]
    fn full_buffers_enqueue_and_flush() {
        let mgr = LogManager::new(LogManagerConfig::default()).unwrap();
        // Each record is ~100 bytes; write enough to fill several buffers.
        for i in 0..400 {
            mgr.append(&insert_record(i)).unwrap();
        }
        assert!(mgr.pending_buffers() > 0);
        let (buffers, bytes) = mgr.flush_now().unwrap();
        assert!(buffers >= mgr_buffers_lower_bound(400));
        assert!(bytes > LOG_BUFFER_CAPACITY);
        let (_, _, flushed, flushed_bytes, calls) = mgr.stats().snapshot();
        assert_eq!(flushed as usize, buffers);
        assert_eq!(flushed_bytes as usize, bytes);
        assert_eq!(calls, 1);
    }

    fn mgr_buffers_lower_bound(records: usize) -> usize {
        // Records are > 80 bytes each.
        records * 80 / LOG_BUFFER_CAPACITY
    }

    #[test]
    fn flush_writes_to_file() {
        let path = temp_path("basic");
        {
            let mgr = LogManager::new(LogManagerConfig {
                path: Some(path.clone()),
                ..LogManagerConfig::default()
            })
            .unwrap();
            for i in 0..10 {
                mgr.append(&insert_record(i)).unwrap();
            }
            mgr.flush_now().unwrap();
        }
        let meta = std::fs::metadata(&path).unwrap();
        assert!(meta.len() > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fsync_knob_counts_syncs() {
        let path = temp_path("fsync");
        let mgr = LogManager::new(LogManagerConfig {
            path: Some(path.clone()),
            fsync: true,
            ..LogManagerConfig::default()
        })
        .unwrap();
        mgr.append(&insert_record(1)).unwrap();
        mgr.flush_now().unwrap();
        assert_eq!(mgr.stats().fsync_calls.get(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn background_flusher_drains_on_shutdown() {
        let mgr = LogManager::new(LogManagerConfig {
            background: true,
            flush_interval: Duration::from_millis(1),
            ..LogManagerConfig::default()
        })
        .unwrap();
        for i in 0..400 {
            mgr.append(&insert_record(i)).unwrap();
        }
        mgr.shutdown();
        let (_, _, flushed, ..) = mgr.stats().snapshot();
        assert!(
            flushed > 0,
            "background flusher should have flushed buffers"
        );
    }

    #[test]
    fn empty_flush_is_noop() {
        let mgr = LogManager::new(LogManagerConfig::default()).unwrap();
        assert_eq!(mgr.flush_now().unwrap(), (0, 0));
    }

    #[test]
    fn transient_write_failure_is_retried_transparently() {
        let path = temp_path("transient");
        let faults = Arc::new(FaultInjector::new(11));
        faults.arm(points::WAL_WRITE, FaultMode::Nth(1));
        let mgr = LogManager::new(LogManagerConfig {
            path: Some(path.clone()),
            faults: Some(faults),
            ..LogManagerConfig::default()
        })
        .unwrap();
        mgr.append(&insert_record(1)).unwrap();
        // First write attempt fails, the retry succeeds; callers never see it.
        let (buffers, _) = mgr.flush_now().unwrap();
        assert_eq!(buffers, 1);
        assert!(!mgr.is_poisoned());
        assert_eq!(mgr.stats().flush_errors.get(), 1);
        assert_eq!(mgr.stats().flush_retries.get(), 1);
        assert!(mgr.stats().last_error().unwrap().contains("wal.write"));
        // The retried flush must not have duplicated the record.
        let records = crate::reader::read_log(&path).unwrap();
        assert_eq!(records, vec![insert_record(1)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persistent_failure_poisons_and_rejects_appends() {
        let path = temp_path("poison");
        let faults = Arc::new(FaultInjector::new(11));
        faults.arm(points::WAL_WRITE, FaultMode::Always);
        let mgr = LogManager::new(LogManagerConfig {
            path: Some(path.clone()),
            max_flush_retries: 2,
            retry_backoff: Duration::from_micros(10),
            faults: Some(faults.clone()),
            ..LogManagerConfig::default()
        })
        .unwrap();
        mgr.append(&insert_record(1)).unwrap();
        let err = mgr.flush_now().unwrap_err();
        assert!(matches!(err, DbError::WalUnavailable(_)), "{err}");
        assert!(mgr.is_poisoned());
        // 1 initial attempt + 2 retries, all failed.
        assert_eq!(mgr.stats().flush_errors.get(), 3);
        assert_eq!(mgr.stats().flush_retries.get(), 2);
        // Latched: appends and further flushes fail fast.
        assert!(matches!(
            mgr.append(&insert_record(2)),
            Err(DbError::WalUnavailable(_))
        ));
        assert!(matches!(mgr.flush_now(), Err(DbError::WalUnavailable(_))));
        // Nothing unsound reached the file.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn durable_watermark_tracks_successful_flushes_only() {
        // Regression for the group-commit phantom found by the chaos
        // harness: a committer whose own flush call fails must be able to
        // tell whether its commit record was already flushed durably by a
        // concurrent committer (then the commit stands) or rolled back
        // with the failed batch (then the abort is sound).
        let path = temp_path("watermark");
        let faults = Arc::new(FaultInjector::new(11));
        let mgr = LogManager::new(LogManagerConfig {
            path: Some(path.clone()),
            fsync: true,
            max_flush_retries: 0,
            faults: Some(faults.clone()),
            ..LogManagerConfig::default()
        })
        .unwrap();
        let seq1 = mgr.append_seq(&insert_record(1)).unwrap();
        assert_eq!(mgr.durable_seq(), 0, "nothing flushed yet");
        mgr.flush_now().unwrap();
        assert_eq!(mgr.durable_seq(), seq1);

        faults.arm(points::WAL_FSYNC, FaultMode::Always);
        let seq2 = mgr.append_seq(&insert_record(2)).unwrap();
        assert!(mgr.flush_now().is_err());
        assert!(mgr.is_poisoned());
        // The failed batch was rolled back; the watermark still covers
        // exactly the first record.
        assert_eq!(mgr.durable_seq(), seq1);
        assert!(mgr.durable_seq() < seq2);
        let records = crate::reader::read_log(&path).unwrap();
        assert_eq!(records, vec![insert_record(1)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_fault_fails_construction() {
        let faults = Arc::new(FaultInjector::new(3));
        faults.arm(points::WAL_OPEN, FaultMode::Always);
        let res = LogManager::new(LogManagerConfig {
            path: Some(temp_path("openfail")),
            faults: Some(faults),
            ..LogManagerConfig::default()
        });
        match res {
            Err(DbError::Wal(ref m)) if m.contains("wal.open") => {}
            Err(other) => panic!("unexpected error: {other}"),
            Ok(_) => panic!("open fault should fail construction"),
        }
    }

    #[test]
    fn torn_write_leaves_partial_record_and_poisons() {
        let path = temp_path("torn");
        let faults = Arc::new(FaultInjector::new(5));
        let mgr = LogManager::new(LogManagerConfig {
            path: Some(path.clone()),
            faults: Some(faults.clone()),
            ..LogManagerConfig::default()
        })
        .unwrap();
        mgr.append(&insert_record(1)).unwrap();
        mgr.flush_now().unwrap();
        faults.arm_torn_write(points::WAL_TORN_WRITE, 0.5);
        mgr.append(&insert_record(2)).unwrap();
        let err = mgr.flush_now().unwrap_err();
        assert!(matches!(err, DbError::WalUnavailable(_)), "{err}");
        assert!(mgr.is_poisoned());
        // The file holds the first record plus a torn tail; the reader
        // tolerates exactly that shape.
        let report = crate::reader::read_log_with(&path, false).unwrap();
        assert_eq!(report.records, vec![insert_record(1)]);
        assert!(report.torn_tail_bytes > 0, "torn tail expected");
        let _ = std::fs::remove_file(&path);
    }
}
