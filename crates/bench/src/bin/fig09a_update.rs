//! Regenerates one paper result; see `mb2_bench::experiments::fig09a_update`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::fig09a_update::run(scale);
    mb2_bench::report::emit("fig09a_update", &report);
}
