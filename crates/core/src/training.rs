//! Per-OU model training (paper §6.4).
//!
//! For each OU, MB2 trains every candidate algorithm on an 80/20 split,
//! selects the best by validation error, and refits it on all available
//! data. [`OuModelSet`] is the resulting bundle of 19 OU-models;
//! [`TrainingReport`] carries the Table-2-style accounting (training time,
//! data size, model size).

use std::collections::HashMap;
use std::time::Duration;

use mb2_common::{DbError, DbResult, Metrics, OuKind};
use mb2_ml::{Algorithm, ModelSelector, Regressor};

use crate::collect::TrainingRepo;
use crate::normalize::denormalize_labels;

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    pub candidates: Vec<Algorithm>,
    /// Apply output-label normalization (§4.3). The Fig. 6/7 ablations
    /// disable this.
    pub normalize: bool,
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            candidates: Algorithm::ALL.to_vec(),
            normalize: true,
            seed: 2021,
        }
    }
}

/// One trained OU-model.
pub struct TrainedOuModel {
    pub ou: OuKind,
    pub chosen: Algorithm,
    pub validation_error: f64,
    pub candidate_errors: Vec<(Algorithm, f64)>,
    pub normalize: bool,
    model: Box<dyn Regressor>,
}

impl TrainedOuModel {
    /// Predict the (denormalized) metric vector for one OU invocation.
    pub fn predict(&self, features: &[f64]) -> Metrics {
        let raw: Metrics = self.model.predict_one(features).into_iter().collect();
        let m = if self.normalize {
            denormalize_labels(self.ou, features, &raw)
        } else {
            raw
        };
        // Negative resource predictions are clamped: they are artifacts of
        // extrapolating regressors, not meaningful outputs.
        m.clamp_min(0.0)
    }

    pub fn size_bytes(&self) -> usize {
        self.model.size_bytes()
    }
}

/// The bundle of trained OU-models.
#[derive(Default)]
pub struct OuModelSet {
    models: HashMap<OuKind, TrainedOuModel>,
    pub normalize: bool,
}

impl OuModelSet {
    pub fn get(&self, ou: OuKind) -> Option<&TrainedOuModel> {
        self.models.get(&ou)
    }

    pub fn insert(&mut self, model: TrainedOuModel) {
        self.models.insert(model.ou, model);
    }

    pub fn ous(&self) -> Vec<OuKind> {
        let mut v: Vec<OuKind> = self.models.keys().copied().collect();
        v.sort();
        v
    }

    pub fn len(&self) -> usize {
        self.models.len()
    }

    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Predict metrics for an OU instance; zero metrics for unknown OUs
    /// (callers treat missing models as "free" rather than failing).
    pub fn predict(&self, ou: OuKind, features: &[f64]) -> Metrics {
        self.models
            .get(&ou)
            .map_or(Metrics::ZERO, |m| m.predict(features))
    }

    pub fn total_size_bytes(&self) -> usize {
        self.models.values().map(TrainedOuModel::size_bytes).sum()
    }
}

impl OuModelSet {
    /// Persist every OU-model under `dir` as `<ou>.model` files plus a
    /// `manifest` recording the normalization flag and chosen algorithms.
    pub fn save_dir(&self, dir: &std::path::Path) -> DbResult<()> {
        std::fs::create_dir_all(dir)
            .map_err(|e| DbError::Model(format!("create {}: {e}", dir.display())))?;
        let mut manifest = format!("normalize {}\n", self.normalize);
        for ou in self.ous() {
            let model = self.models.get(&ou).expect("listed ou exists");
            let text = model.model.save_text()?;
            let path = dir.join(format!("{ou}.model"));
            std::fs::write(&path, text)
                .map_err(|e| DbError::Model(format!("write {}: {e}", path.display())))?;
            manifest.push_str(&format!(
                "{ou} {} {}\n",
                model.chosen.name(),
                model.validation_error
            ));
        }
        std::fs::write(dir.join("manifest"), manifest)
            .map_err(|e| DbError::Model(format!("write manifest: {e}")))?;
        Ok(())
    }

    /// Load a model set saved by [`OuModelSet::save_dir`].
    pub fn load_dir(dir: &std::path::Path) -> DbResult<OuModelSet> {
        let manifest = std::fs::read_to_string(dir.join("manifest"))
            .map_err(|e| DbError::Model(format!("read manifest: {e}")))?;
        let mut lines = manifest.lines();
        let normalize = lines
            .next()
            .and_then(|l| l.strip_prefix("normalize "))
            .and_then(|v| v.parse::<bool>().ok())
            .ok_or_else(|| DbError::Model("manifest missing normalize flag".into()))?;
        let mut set = OuModelSet {
            normalize,
            ..OuModelSet::default()
        };
        for line in lines {
            let mut parts = line.split(' ');
            let (Some(ou_name), Some(alg_name), Some(err)) =
                (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let ou = OuKind::parse(ou_name)
                .ok_or_else(|| DbError::Model(format!("unknown OU '{ou_name}'")))?;
            let chosen = Algorithm::ALL
                .into_iter()
                .find(|a| a.name() == alg_name)
                .ok_or_else(|| DbError::Model(format!("unknown algorithm '{alg_name}'")))?;
            let text = std::fs::read_to_string(dir.join(format!("{ou}.model")))
                .map_err(|e| DbError::Model(format!("read {ou}.model: {e}")))?;
            let model = mb2_ml::load_model(&text)?;
            set.insert(TrainedOuModel {
                ou,
                chosen,
                validation_error: err.parse().unwrap_or(f64::NAN),
                candidate_errors: Vec::new(),
                normalize,
                model,
            });
        }
        Ok(set)
    }
}

/// Table-2-style accounting for a training run.
#[derive(Debug, Default, Clone)]
pub struct TrainingReport {
    pub per_ou: Vec<(OuKind, Algorithm, f64, Duration)>,
    pub total_training_time: Duration,
    pub data_size_bytes: usize,
    pub model_size_bytes: usize,
    pub total_samples: usize,
}

/// Train one OU's model with selection.
pub fn train_ou(
    repo: &TrainingRepo,
    ou: OuKind,
    config: &TrainingConfig,
) -> DbResult<TrainedOuModel> {
    let data = repo.dataset(ou, config.normalize);
    if data.is_empty() {
        return Err(DbError::Model(format!("no training data for OU {ou}")));
    }
    let selector = ModelSelector {
        candidates: config.candidates.clone(),
        train_fraction: 0.8,
        seed: config.seed,
    };
    let report = selector.select(&data)?;
    let best_err = report
        .error_of(report.chosen)
        .expect("chosen candidate has an error entry");
    Ok(TrainedOuModel {
        ou,
        chosen: report.chosen,
        validation_error: best_err,
        candidate_errors: report.candidate_errors,
        normalize: config.normalize,
        model: report.model,
    })
}

/// Train models for every OU present in the repo.
pub fn train_all(
    repo: &TrainingRepo,
    config: &TrainingConfig,
) -> DbResult<(OuModelSet, TrainingReport)> {
    let started = std::time::Instant::now();
    let mut set = OuModelSet {
        normalize: config.normalize,
        ..OuModelSet::default()
    };
    let mut report = TrainingReport {
        data_size_bytes: repo.data_size_bytes(),
        total_samples: repo.total_samples(),
        ..TrainingReport::default()
    };
    for ou in repo.ous() {
        let ou_started = std::time::Instant::now();
        let model = train_ou(repo, ou, config)?;
        report.per_ou.push((
            ou,
            model.chosen,
            model.validation_error,
            ou_started.elapsed(),
        ));
        set.insert(model);
    }
    report.total_training_time = started.elapsed();
    report.model_size_bytes = set.total_size_bytes();
    Ok((set, report))
}

/// Fig. 5/6 evaluation helper: per-algorithm 80/20 test errors for one OU,
/// returned as (average relative error across labels, per-label errors).
pub fn evaluate_algorithms(
    repo: &TrainingRepo,
    ou: OuKind,
    algorithms: &[Algorithm],
    normalize: bool,
    seed: u64,
) -> DbResult<Vec<(Algorithm, f64, Vec<f64>)>> {
    let data = repo.dataset(ou, normalize);
    if data.len() < 5 {
        return Err(DbError::Model(format!("not enough data for OU {ou}")));
    }
    let (train, test) = mb2_ml::train_test_split(&data, 0.8, seed);
    let mut out = Vec::new();
    for &alg in algorithms {
        let mut model = alg.instantiate();
        model.fit(&train.x, &train.y)?;
        let preds = model.predict(&test.x);
        let avg = mb2_ml::mean_relative_error(&test.y, &preds);
        let n_labels = test.y[0].len();
        let per_label: Vec<f64> = (0..n_labels)
            .map(|j| {
                let a: Vec<Vec<f64>> = test.y.iter().map(|r| vec![r[j]]).collect();
                let p: Vec<Vec<f64>> = preds.iter().map(|r| vec![r[j]]).collect();
                mb2_ml::mean_relative_error(&a, &p)
            })
            .collect();
        out.push((alg, avg, per_label));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::OuSample;
    use mb2_common::metrics::idx;

    /// Synthesize linear-cost samples: elapsed = 3n + noise-free.
    fn repo_with_linear_ou(n_samples: usize) -> TrainingRepo {
        let mut repo = TrainingRepo::new();
        for i in 1..=n_samples {
            let n = (i * 10) as f64;
            let mut features = vec![0.0; crate::features::feature_width(OuKind::SeqScan)];
            features[0] = n;
            features[1] = 3.0;
            features[2] = 24.0;
            features[3] = n;
            let mut labels = Metrics::ZERO;
            labels[idx::ELAPSED_US] = 3.0 * n;
            labels[idx::CPU_US] = 3.0 * n;
            labels[idx::MEMORY_BYTES] = 24.0 * n;
            repo.add(OuSample {
                ou: OuKind::SeqScan,
                features,
                labels,
            });
        }
        repo
    }

    #[test]
    fn trained_model_predicts_and_denormalizes() {
        let repo = repo_with_linear_ou(60);
        let config = TrainingConfig {
            candidates: vec![Algorithm::Linear, Algorithm::Huber],
            ..TrainingConfig::default()
        };
        let model = train_ou(&repo, OuKind::SeqScan, &config).unwrap();
        assert!(
            model.validation_error < 0.05,
            "err {}",
            model.validation_error
        );
        // Extrapolate 10× beyond the training range: normalization makes
        // this work (the core §4.3 claim).
        let mut features = vec![0.0; crate::features::feature_width(OuKind::SeqScan)];
        features[0] = 6000.0;
        features[1] = 3.0;
        features[2] = 24.0;
        features[3] = 6000.0;
        let pred = model.predict(&features);
        assert!(
            (pred[idx::ELAPSED_US] - 18_000.0).abs() / 18_000.0 < 0.1,
            "elapsed {}",
            pred[idx::ELAPSED_US]
        );
    }

    #[test]
    fn train_all_reports_accounting() {
        let repo = repo_with_linear_ou(40);
        let config = TrainingConfig {
            candidates: vec![Algorithm::Linear],
            ..TrainingConfig::default()
        };
        let (set, report) = train_all(&repo, &config).unwrap();
        assert_eq!(set.len(), 1);
        assert!(report.model_size_bytes > 0);
        assert!(report.data_size_bytes > 0);
        assert_eq!(report.total_samples, 40);
        assert_eq!(report.per_ou[0].0, OuKind::SeqScan);
    }

    #[test]
    fn missing_ou_predicts_zero() {
        let set = OuModelSet::default();
        assert_eq!(set.predict(OuKind::SortIter, &[1.0; 7]), Metrics::ZERO);
    }

    #[test]
    fn evaluate_algorithms_returns_per_label_errors() {
        let repo = repo_with_linear_ou(50);
        let evals = evaluate_algorithms(
            &repo,
            OuKind::SeqScan,
            &[Algorithm::Linear, Algorithm::RandomForest],
            true,
            7,
        )
        .unwrap();
        assert_eq!(evals.len(), 2);
        assert_eq!(evals[0].2.len(), 9);
        // Linear should nail a linear relationship.
        let linear = evals
            .iter()
            .find(|(a, _, _)| *a == Algorithm::Linear)
            .unwrap();
        assert!(linear.1 < 0.05, "{}", linear.1);
    }

    #[test]
    fn empty_repo_is_error() {
        let repo = TrainingRepo::new();
        assert!(train_ou(&repo, OuKind::SeqScan, &TrainingConfig::default()).is_err());
    }
}
// (appended by persistence work)
#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::collect::OuSample;
    use mb2_common::metrics::idx;

    #[test]
    fn model_set_save_load_round_trip() {
        let mut repo = TrainingRepo::new();
        for ou in [OuKind::SeqScan, OuKind::SortBuild, OuKind::TxnBegin] {
            let width = crate::features::feature_width(ou);
            for k in 1..=30 {
                let mut features = vec![1.0; width];
                features[0] = (k * 20) as f64;
                let mut labels = Metrics::ZERO;
                labels[idx::ELAPSED_US] = 3.0 * features[0];
                labels[idx::MEMORY_BYTES] = 16.0 * features[0];
                repo.add(OuSample {
                    ou,
                    features,
                    labels,
                });
            }
        }
        let config = TrainingConfig {
            candidates: vec![
                Algorithm::Linear,
                Algorithm::RandomForest,
                Algorithm::NeuralNetwork,
            ],
            ..TrainingConfig::default()
        };
        let (set, _) = train_all(&repo, &config).unwrap();
        let dir = std::env::temp_dir().join(format!("mb2_models_{}", std::process::id()));
        set.save_dir(&dir).unwrap();
        let loaded = OuModelSet::load_dir(&dir).unwrap();
        assert_eq!(loaded.ous(), set.ous());
        assert_eq!(loaded.normalize, set.normalize);
        for ou in set.ous() {
            let width = crate::features::feature_width(ou);
            let mut probe = vec![1.0; width];
            probe[0] = 333.0;
            let a = set.predict(ou, &probe);
            let b = loaded.predict(ou, &probe);
            for i in 0..9 {
                assert!(
                    (a[i] - b[i]).abs() < 1e-6 * a[i].abs().max(1.0),
                    "{ou} label {i}: {} vs {}",
                    a[i],
                    b[i]
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
