//! The DBMS facade — the NoisePage analog that MB2 instruments.
//!
//! [`Database`] wires together catalog, MVCC transactions, WAL, garbage
//! collection, and the execution engine behind a SQL interface, and exposes
//! the behavior knobs the paper tunes: execution mode (interpret vs.
//! compiled), WAL flush interval, GC interval, and the emulated hardware
//! profile (paper §4.2, §8.6).

pub mod config;
pub mod database;
pub mod health;
pub(crate) mod metrics;
pub mod recovery;
pub mod session;
pub mod tasks;

pub use config::{DatabaseConfig, Knobs};
pub use database::Database;
pub use health::{DegradedReason, HealthState, HealthTracker};
pub use recovery::{recover, recover_with, RecoveryOptions, RecoveryReport};
pub use session::Session;
pub use tasks::{BackgroundTask, StatementTap};

// Re-export the layers so downstream crates (runners, workloads, benches)
// need only one dependency.
pub use mb2_catalog as catalog;
pub use mb2_exec as exec;
pub use mb2_index as index;
pub use mb2_obs as obs;
pub use mb2_sql as sql;
pub use mb2_storage as storage;
pub use mb2_txn as txn;
pub use mb2_wal as wal;
