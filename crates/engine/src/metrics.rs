//! Engine-level metric families: sessions and per-statement-kind series.
//!
//! Statement kinds are coarse on purpose — the per-OU histograms from
//! [`mb2_exec::ObsRecorder`] carry the fine-grained decomposition; these
//! families answer the operator-facing question "how is query latency, by
//! verb" without any label-cardinality risk.

use std::sync::Arc;

use mb2_obs::{Counter, Histogram, MetricsRegistry};
use mb2_sql::PlanNode;

/// Coarse statement classification used as the `kind` label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StatementKind {
    Select,
    Insert,
    Update,
    Delete,
    Ddl,
}

impl StatementKind {
    fn label(self) -> &'static str {
        match self {
            StatementKind::Select => "select",
            StatementKind::Insert => "insert",
            StatementKind::Update => "update",
            StatementKind::Delete => "delete",
            StatementKind::Ddl => "ddl",
        }
    }

    const ALL: [StatementKind; 5] = [
        StatementKind::Select,
        StatementKind::Insert,
        StatementKind::Update,
        StatementKind::Delete,
        StatementKind::Ddl,
    ];
}

/// Classify a plan by its root node. Anything that is not a write or an
/// index build is a read (`select`).
pub(crate) fn classify(plan: &PlanNode) -> StatementKind {
    match plan {
        PlanNode::Insert { .. } => StatementKind::Insert,
        PlanNode::Update { .. } => StatementKind::Update,
        PlanNode::Delete { .. } => StatementKind::Delete,
        PlanNode::CreateIndex { .. } => StatementKind::Ddl,
        _ => StatementKind::Select,
    }
}

/// One `kind`-labelled slice of the statement families.
pub(crate) struct StmtSeries {
    pub count: Arc<Counter>,
    pub errors: Arc<Counter>,
    pub latency_us: Arc<Histogram>,
}

/// Handles for everything the engine layer itself publishes.
pub(crate) struct EngineMetrics {
    pub sessions: Arc<Counter>,
    pub plan_cache_hits: Arc<Counter>,
    pub plan_cache_misses: Arc<Counter>,
    stmt: [StmtSeries; 5],
}

impl EngineMetrics {
    pub fn new(registry: &MetricsRegistry) -> EngineMetrics {
        let stmt = StatementKind::ALL.map(|kind| {
            let labels = [("kind", kind.label())];
            StmtSeries {
                count: registry.counter_with(
                    "mb2_stmt_total",
                    &labels,
                    "Statements executed, by kind.",
                ),
                errors: registry.counter_with(
                    "mb2_stmt_errors_total",
                    &labels,
                    "Statements that returned an error, by kind.",
                ),
                latency_us: registry.histogram_with(
                    "mb2_stmt_latency_us",
                    &labels,
                    "End-to-end statement latency in microseconds, by kind.",
                ),
            }
        });
        EngineMetrics {
            sessions: registry.counter("mb2_sessions_total", "Sessions opened."),
            plan_cache_hits: registry.counter(
                "mb2_plan_cache_hits_total",
                "prepare_cached lookups answered from the plan cache.",
            ),
            plan_cache_misses: registry.counter(
                "mb2_plan_cache_misses_total",
                "prepare_cached lookups that parsed and planned anew.",
            ),
            stmt,
        }
    }

    pub fn stmt(&self, kind: StatementKind) -> &StmtSeries {
        &self.stmt[StatementKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("every kind is in ALL")]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_a_series() {
        let registry = MetricsRegistry::new();
        let m = EngineMetrics::new(&registry);
        for kind in StatementKind::ALL {
            m.stmt(kind).count.inc();
        }
        let text = registry.prometheus_text();
        for label in ["select", "insert", "update", "delete", "ddl"] {
            assert!(text.contains(&format!("mb2_stmt_total{{kind=\"{label}\"}} 1")));
        }
    }
}
