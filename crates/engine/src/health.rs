//! Engine health state for the self-healing supervisor.
//!
//! The health model is deliberately small: an engine is [`Healthy`],
//! [`Degraded`] (serving reads but rejecting durable writes, e.g. after the
//! WAL poisoned), or [`Recovering`] (a supervisor is replaying the log into
//! a replacement instance). The state is published as the `mb2_health_state`
//! gauge (0 = healthy, 1 = degraded, 2 = recovering) so probes and
//! dashboards see transitions without log scraping.
//!
//! [`Healthy`]: HealthState::Healthy
//! [`Degraded`]: HealthState::Degraded
//! [`Recovering`]: HealthState::Recovering

use std::sync::Arc;

use parking_lot::Mutex;

use mb2_obs::{Gauge, MetricsRegistry};

/// Why an engine degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedReason {
    /// The WAL latched into its poisoned state; durable writes are
    /// impossible and the engine serves reads only.
    WalPoisoned,
}

impl std::fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradedReason::WalPoisoned => write!(f, "wal poisoned"),
        }
    }
}

/// Coarse engine health, driven by [`HealthTracker`] probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    Healthy,
    Degraded(DegradedReason),
    Recovering,
}

impl HealthState {
    /// The `mb2_health_state` gauge encoding.
    pub fn gauge_value(self) -> i64 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded(_) => 1,
            HealthState::Recovering => 2,
        }
    }
}

/// Tracks one engine's health and mirrors it into the metrics registry.
pub struct HealthTracker {
    state: Mutex<HealthState>,
    gauge: Arc<Gauge>,
}

impl HealthTracker {
    pub fn new(registry: &MetricsRegistry) -> HealthTracker {
        HealthTracker {
            state: Mutex::new(HealthState::Healthy),
            gauge: registry.gauge(
                "mb2_health_state",
                "Engine health: 0 healthy, 1 degraded (read-only), 2 recovering.",
            ),
        }
    }

    pub fn state(&self) -> HealthState {
        *self.state.lock()
    }

    pub fn set(&self, state: HealthState) {
        *self.state.lock() = state;
        self.gauge.set(state.gauge_value());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_mirror_into_gauge() {
        let registry = MetricsRegistry::new();
        let tracker = HealthTracker::new(&registry);
        let gauge = registry.gauge("mb2_health_state", "");
        assert_eq!(tracker.state(), HealthState::Healthy);
        tracker.set(HealthState::Degraded(DegradedReason::WalPoisoned));
        assert_eq!(gauge.get(), 1);
        tracker.set(HealthState::Recovering);
        assert_eq!(gauge.get(), 2);
        tracker.set(HealthState::Healthy);
        assert_eq!(gauge.get(), 0);
        assert_eq!(tracker.state(), HealthState::Healthy);
    }
}
