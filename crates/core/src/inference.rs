//! Inference (paper §3, Fig. 3): combine OU-models and the interference
//! model to predict the DBMS's behavior for a forecasted workload and a
//! candidate self-driving action.

use mb2_common::{Metrics, OuKind};
use mb2_engine::Knobs;
use mb2_sql::PlanNode;

use crate::features::OuInstance;
use crate::forecast::WorkloadForecast;
use crate::interference::InterferenceModel;
use crate::training::OuModelSet;
use crate::translate::OuTranslator;

/// Everything needed to answer "what will this cost?".
pub struct BehaviorModels {
    pub ou_models: OuModelSet,
    pub interference: Option<InterferenceModel>,
    pub translator: OuTranslator,
}

/// Predicted behavior of one plan in isolation.
#[derive(Debug, Clone)]
pub struct PlanPrediction {
    pub per_ou: Vec<(OuInstance, Metrics)>,
    /// Element-wise sum across OUs (elapsed = serial execution time).
    pub total: Metrics,
}

impl PlanPrediction {
    pub fn elapsed_us(&self) -> f64 {
        self.total.elapsed_us()
    }

    pub fn cpu_us(&self) -> f64 {
        self.total.cpu_us()
    }

    /// Sum of predictions for one OU kind only (used for explainability,
    /// e.g. Fig. 11b attributes CPU to the index-build OU).
    pub fn total_for(&self, ou: OuKind) -> Metrics {
        let mut total = Metrics::ZERO;
        for (inst, m) in &self.per_ou {
            if inst.ou == ou {
                total += *m;
            }
        }
        total
    }
}

/// Per-template outcome within an interval prediction.
#[derive(Debug, Clone)]
pub struct TemplatePrediction {
    pub isolated_us: f64,
    pub adjusted_us: f64,
    pub expected_count: f64,
}

/// Prediction for one forecast interval (optionally with an action running).
#[derive(Debug, Clone)]
pub struct IntervalPrediction {
    pub per_template: Vec<TemplatePrediction>,
    /// (isolated, adjusted) elapsed µs of the action, when present.
    pub action_us: Option<(f64, f64)>,
    pub thread_totals: Vec<Metrics>,
}

impl IntervalPrediction {
    /// Expected-count-weighted average isolated (un-adjusted) runtime —
    /// what knob evaluations compare, since knobs change the isolated cost.
    pub fn avg_isolated_runtime_us(&self) -> f64 {
        let mut weighted = 0.0;
        let mut count = 0.0;
        for t in &self.per_template {
            weighted += t.isolated_us * t.expected_count;
            count += t.expected_count;
        }
        if count == 0.0 {
            0.0
        } else {
            weighted / count
        }
    }

    /// Expected-count-weighted average adjusted query runtime.
    pub fn avg_query_runtime_us(&self) -> f64 {
        let mut weighted = 0.0;
        let mut count = 0.0;
        for t in &self.per_template {
            weighted += t.adjusted_us * t.expected_count;
            count += t.expected_count;
        }
        if count == 0.0 {
            0.0
        } else {
            weighted / count
        }
    }
}

/// A candidate action evaluated against a forecast interval.
#[derive(Debug, Clone)]
pub struct ActionForecast {
    /// The action plan (e.g. a `CreateIndex` node).
    pub plan: PlanNode,
    /// Threads the action occupies (index-build parallelism).
    pub threads: usize,
}

impl BehaviorModels {
    pub fn new(ou_models: OuModelSet, interference: Option<InterferenceModel>) -> BehaviorModels {
        BehaviorModels {
            ou_models,
            interference,
            translator: OuTranslator::default(),
        }
    }

    /// Predict a plan's per-OU and total behavior in isolation.
    pub fn predict_plan(&self, plan: &PlanNode, knobs: &Knobs) -> PlanPrediction {
        let instances = self.translator.translate_plan(plan, knobs);
        let mut per_ou = Vec::with_capacity(instances.len());
        let mut total = Metrics::ZERO;
        for inst in instances {
            let pred = self.ou_models.predict(inst.ou, &inst.features);
            total += pred;
            per_ou.push((inst, pred));
        }
        PlanPrediction { per_ou, total }
    }

    /// Shortcut: predicted isolated query latency in µs.
    pub fn predict_query_elapsed_us(&self, plan: &PlanNode, knobs: &Knobs) -> f64 {
        self.predict_plan(plan, knobs).elapsed_us()
    }

    /// Predict one forecast interval, optionally with an action running
    /// concurrently. Workload queries spread evenly over the forecast's
    /// worker threads; the action occupies its own threads (paper §8.7's
    /// setup). Per-OU predictions are then adjusted by the interference
    /// model against the per-thread totals.
    pub fn predict_interval(
        &self,
        forecast: &WorkloadForecast,
        interval: usize,
        knobs: &Knobs,
        action: Option<&ActionForecast>,
    ) -> IntervalPrediction {
        let iv = &forecast.intervals[interval];
        let plan_preds: Vec<PlanPrediction> = forecast
            .templates
            .iter()
            .map(|t| self.predict_plan(&t.plan, knobs))
            .collect();

        // Per-thread totals: each worker executes an even share of every
        // template's expected invocations.
        let n_threads = forecast.threads;
        let mut workload_share = Metrics::ZERO;
        for (i, pred) in plan_preds.iter().enumerate() {
            let count = iv.expected_count(i);
            workload_share += pred.total.scale(count / n_threads as f64);
        }
        let mut thread_totals = vec![workload_share; n_threads];

        // The action contributes its per-thread share on its own threads.
        let action_pred = action.map(|a| self.predict_plan(&a.plan, knobs));
        if let (Some(a), Some(pred)) = (action, &action_pred) {
            let share = pred.total.scale(1.0 / a.threads.max(1) as f64);
            for _ in 0..a.threads.max(1) {
                thread_totals.push(share);
            }
        }

        // Adjust each template's OUs for interference.
        let window_us = iv.duration_s * 1e6;
        let adjust = |pred: &PlanPrediction| -> f64 {
            match &self.interference {
                Some(model) => pred
                    .per_ou
                    .iter()
                    .map(|(_, m)| model.adjust(m, &thread_totals, window_us).elapsed_us())
                    .sum(),
                None => pred.elapsed_us(),
            }
        };
        let per_template: Vec<TemplatePrediction> = plan_preds
            .iter()
            .enumerate()
            .map(|(i, pred)| TemplatePrediction {
                isolated_us: pred.elapsed_us(),
                adjusted_us: adjust(pred),
                expected_count: iv.expected_count(i),
            })
            .collect();

        let action_us = action_pred
            .as_ref()
            .map(|pred| (pred.elapsed_us(), adjust(pred)));

        IntervalPrediction {
            per_template,
            action_us,
            thread_totals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::OuSample;
    use crate::forecast::QueryTemplate;
    use crate::training::{train_all, TrainingConfig};
    use mb2_common::metrics::idx;
    use mb2_engine::Database;
    use mb2_ml::Algorithm;

    /// Build a tiny model set from synthetic per-OU linear costs so the
    /// inference plumbing can be tested deterministically.
    fn synthetic_models(db: &Database, plan: &PlanNode) -> BehaviorModels {
        let translator = OuTranslator::default();
        let instances = translator.translate_plan(plan, &db.knobs());
        let mut repo = crate::collect::TrainingRepo::new();
        for inst in &instances {
            // elapsed = 2 * n for every OU; generate a small sweep.
            for scale in 1..=20 {
                let mut features = inst.features.clone();
                features[0] = (scale * 10) as f64;
                let mut labels = Metrics::ZERO;
                labels[idx::ELAPSED_US] = 2.0 * features[0];
                labels[idx::CPU_US] = 2.0 * features[0];
                repo.add(OuSample {
                    ou: inst.ou,
                    features,
                    labels,
                });
            }
        }
        let (set, _) = train_all(
            &repo,
            &TrainingConfig {
                candidates: vec![Algorithm::Linear],
                ..TrainingConfig::default()
            },
        )
        .unwrap();
        BehaviorModels::new(set, None)
    }

    fn setup() -> (Database, PlanNode) {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
        for i in 0..200 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i % 10))
                .unwrap();
        }
        db.execute("ANALYZE t").unwrap();
        let plan = db.prepare("SELECT b, COUNT(*) FROM t GROUP BY b").unwrap();
        (db, plan)
    }

    #[test]
    fn plan_prediction_sums_ou_predictions() {
        let (db, plan) = setup();
        let models = synthetic_models(&db, &plan);
        let pred = models.predict_plan(&plan, &db.knobs());
        assert!(!pred.per_ou.is_empty());
        let manual: f64 = pred.per_ou.iter().map(|(_, m)| m.elapsed_us()).sum();
        assert!((pred.elapsed_us() - manual).abs() < 1e-6);
        assert!(pred.elapsed_us() > 0.0);
    }

    #[test]
    fn total_for_filters_by_ou() {
        let (db, plan) = setup();
        let models = synthetic_models(&db, &plan);
        let pred = models.predict_plan(&plan, &db.knobs());
        let agg_total = pred.total_for(OuKind::AggBuild);
        assert!(agg_total.elapsed_us() > 0.0);
        assert!(agg_total.elapsed_us() < pred.elapsed_us());
        assert_eq!(pred.total_for(OuKind::LogFlush), Metrics::ZERO);
    }

    #[test]
    fn interval_prediction_without_interference() {
        let (db, plan) = setup();
        let models = synthetic_models(&db, &plan);
        let template = QueryTemplate {
            name: "q".into(),
            sql: "SELECT b, COUNT(*) FROM t GROUP BY b".into(),
            plan,
        };
        let mut forecast = WorkloadForecast::new(vec![template], 4);
        forecast.push_interval(10.0, vec![5.0]);
        let pred = models.predict_interval(&forecast, 0, &db.knobs(), None);
        assert_eq!(pred.per_template.len(), 1);
        assert_eq!(pred.per_template[0].expected_count, 50.0);
        // Without an interference model, adjusted == isolated.
        assert_eq!(
            pred.per_template[0].isolated_us,
            pred.per_template[0].adjusted_us
        );
        assert_eq!(pred.thread_totals.len(), 4);
        assert!(pred.avg_query_runtime_us() > 0.0);
    }

    #[test]
    fn action_adds_threads() {
        let (db, plan) = setup();
        let models = synthetic_models(&db, &plan);
        let index_plan = db
            .prepare("CREATE INDEX t_b ON t (b) WITH (THREADS = 2)")
            .unwrap();
        let template = QueryTemplate {
            name: "q".into(),
            sql: "q".into(),
            plan,
        };
        let mut forecast = WorkloadForecast::new(vec![template], 4);
        forecast.push_interval(10.0, vec![1.0]);
        let action = ActionForecast {
            plan: index_plan,
            threads: 2,
        };
        let pred = models.predict_interval(&forecast, 0, &db.knobs(), Some(&action));
        assert_eq!(pred.thread_totals.len(), 6);
        assert!(pred.action_us.is_some());
    }
}
