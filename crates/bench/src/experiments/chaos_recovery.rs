//! Chaos recovery-cost model.
//!
//! The self-healing supervisor decides *when* to attempt an engine swap;
//! the recovery-cost model predicts *how long* the outage will be. This
//! experiment measures WAL recovery end to end over a sweep of log sizes,
//! fits a linear model from each run's [`RecoveryReport::features`]
//! (records read, tuples applied, schema objects rebuilt) to its observed
//! wall-clock duration, and gates on leave-one-out mean relative error —
//! the same decomposed-OU methodology the paper applies to query OUs,
//! pointed at the recovery path.
//!
//! Emits `results/BENCH_chaos.json`.

use std::fmt::Write as _;
use std::path::PathBuf;

use mb2_engine::{recover, Database, DatabaseConfig, RecoveryReport};
use mb2_ml::linear::LinearRegression;
use mb2_ml::{mean_relative_error, Regressor};

use crate::report::{fmt, results_dir, Table};
use crate::Scale;

/// Mean-relative-error acceptance gate for the fitted model.
const MRE_GATE: f64 = 0.5;

fn wal_path(tag: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mb2_bench_chaos_recovery_{}_{tag}.log",
        std::process::id()
    ))
}

/// Build a WAL of roughly `txns` autocommit transactions (inserts and
/// updates over an indexed table), then recover from it and return the
/// report. The builder engine is dropped before recovery, like a crash.
fn one_run(tag: usize, txns: usize) -> RecoveryReport {
    let path = wal_path(tag);
    let _ = std::fs::remove_file(&path);
    {
        let db = Database::new(DatabaseConfig {
            wal_enabled: true,
            wal_path: Some(path.clone()),
            ..DatabaseConfig::default()
        })
        .expect("builder engine");
        db.execute("CREATE TABLE r (id INT, v FLOAT)").unwrap();
        db.execute("CREATE INDEX r_id ON r (id)").unwrap();
        for i in 0..txns {
            if i % 3 == 0 {
                db.execute(&format!("INSERT INTO r VALUES ({i}, {i}.0)"))
                    .unwrap();
            } else {
                db.execute(&format!(
                    "UPDATE r SET v = v + 1.0 WHERE id = {}",
                    i % (i / 3 + 1)
                ))
                .unwrap();
            }
        }
        db.wal().unwrap().flush_now().unwrap();
    }
    let (_db, report) = recover(
        &path,
        DatabaseConfig {
            wal_enabled: false,
            ..DatabaseConfig::default()
        },
    )
    .expect("recovery");
    let _ = std::fs::remove_file(&path);
    report
}

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Chaos — recovery-cost model (duration from RecoveryReport features)\n\n");

    let sizes: &[usize] = match scale {
        Scale::Quick => &[20, 60, 120, 240, 480, 960],
        Scale::Standard => &[50, 150, 400, 900, 2000, 4000],
    };
    let reps = 2; // sizes × reps = 12 runs ≥ the 10-run gate floor

    let mut features: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<Vec<f64>> = Vec::new();
    let mut reports: Vec<RecoveryReport> = Vec::new();
    for (i, &txns) in sizes.iter().enumerate() {
        for rep in 0..reps {
            let report = one_run(i * reps + rep, txns);
            features.push(report.features());
            labels.push(vec![report.elapsed.as_secs_f64() * 1e6]); // µs
            reports.push(report);
        }
    }
    let runs = reports.len();

    // Leave-one-out predictions: each run is predicted by a model fitted
    // on the other runs, so the error is out-of-sample even with one
    // sweep's worth of data.
    let mut predicted: Vec<Vec<f64>> = Vec::with_capacity(runs);
    for i in 0..runs {
        let (mut fx, mut fy) = (Vec::new(), Vec::new());
        for j in 0..runs {
            if j != i {
                fx.push(features[j].clone());
                fy.push(labels[j].clone());
            }
        }
        let mut model = LinearRegression::new(1e-6);
        model.fit(&fx, &fy).expect("fit recovery model");
        predicted.push(model.predict_one(&features[i]));
    }
    let mre = mean_relative_error(&labels, &predicted);

    let mut table = Table::new(
        "recovery runs: observed vs leave-one-out predicted duration",
        &[
            "run",
            "records",
            "tuples",
            "objects",
            "actual (ms)",
            "predicted (ms)",
            "rel err",
        ],
    );
    for (i, report) in reports.iter().enumerate() {
        let actual = labels[i][0];
        let pred = predicted[i][0];
        table.row(&[
            i.to_string(),
            report.records_read.to_string(),
            report.tuples_applied.to_string(),
            (report.tables_created + report.indexes_created).to_string(),
            fmt(actual / 1000.0),
            fmt(pred / 1000.0),
            fmt((actual - pred).abs() / actual),
        ]);
    }
    out.push_str(&table.render());

    let pass = runs >= 10 && mre <= MRE_GATE;
    let _ = writeln!(
        out,
        "\ngates: runs >= 10: {} ({runs}); leave-one-out MRE <= {MRE_GATE}: {} ({mre:.3}) — {}",
        runs >= 10,
        mre <= MRE_GATE,
        if pass { "PASS" } else { "FAIL" }
    );

    // Machine-readable companion: hand-rolled JSON, no serde dependency.
    let mut json = String::from("{\n  \"experiment\": \"chaos_recovery\",\n");
    let _ = writeln!(json, "  \"runs\": {runs},");
    let _ = writeln!(json, "  \"model\": \"linear_regression\",");
    let _ = writeln!(
        json,
        "  \"features\": [\"records_read\", \"tuples_applied\", \"schema_objects\"],"
    );
    let _ = writeln!(json, "  \"loo_mean_relative_error\": {mre:.4},");
    let _ = writeln!(json, "  \"mre_gate\": {MRE_GATE},");
    let mut durations: Vec<f64> = labels.iter().map(|l| l[0] / 1000.0).collect();
    durations.sort_by(|a, b| a.total_cmp(b));
    let _ = writeln!(
        json,
        "  \"recovery_ms_min\": {:.3},",
        durations.first().copied().unwrap_or(0.0)
    );
    let _ = writeln!(
        json,
        "  \"recovery_ms_max\": {:.3},",
        durations.last().copied().unwrap_or(0.0)
    );
    let _ = writeln!(json, "  \"gate_pass\": {pass}");
    json.push_str("}\n");
    let path = results_dir().join("BENCH_chaos.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        let _ = writeln!(out, "\nwrote {}", path.display());
    }

    assert!(pass, "chaos_recovery acceptance gates failed:\n{out}");
    out
}
