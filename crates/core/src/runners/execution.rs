//! OU-runners for the execution-engine OUs (paper §6.2).
//!
//! Each runner is a specialized SQL microbenchmark sweeping one OU's input
//! space: row counts with exponential steps, selectivities, group-key
//! cardinalities, join build sizes, expression sizes, and both execution
//! modes. Thanks to the §4.3 label normalization the sweep only needs to
//! reach the convergence point (paper: <1M tuples; default here 16k so the
//! full pipeline runs in CI time — configurable upward).

use mb2_common::{DbResult, HardwareProfile, Prng};
use mb2_engine::{Database, DatabaseConfig};
use mb2_exec::ExecutionMode;

use crate::collect::TrainingRepo;
use crate::runners::{exponential_steps, measure_plan, RunnerConfig};
use crate::translate::{OuTranslator, TranslatorConfig};

/// Sweep configuration for the execution runners.
#[derive(Debug, Clone)]
pub struct ExecutionRunnerConfig {
    /// Largest table size to exercise (convergence point).
    pub max_rows: usize,
    /// Smallest table size.
    pub min_rows: usize,
    pub modes: Vec<ExecutionMode>,
    pub measure: RunnerConfig,
    /// Translator configuration (e.g. hardware-context features for §8.6).
    pub translator: TranslatorConfig,
    /// Emulated hardware profile for the runner database.
    pub hw: HardwareProfile,
    /// Fig. 9a software-update emulation knob.
    pub jht_sleep_every: usize,
    /// Batch-size knob values to sweep (each is a full query sweep).
    pub batch_sizes: Vec<usize>,
    /// Parallelism knob values to sweep.
    pub parallelism: Vec<usize>,
    /// Columnar-scan knob values to sweep. Flipping the knob on compacts
    /// the dataset first, so Block/Scan samples see sealed blocks.
    pub columnar: Vec<bool>,
}

impl Default for ExecutionRunnerConfig {
    fn default() -> Self {
        ExecutionRunnerConfig {
            max_rows: 16_384,
            min_rows: 64,
            modes: vec![ExecutionMode::Interpret, ExecutionMode::Compiled],
            measure: RunnerConfig::default(),
            translator: TranslatorConfig::default(),
            hw: HardwareProfile::default(),
            jht_sleep_every: 0,
            // Tuple-at-a-time vs. vectorized, serial vs. 4-way parallel:
            // the knob corners the batch/parallelism OU features train on.
            batch_sizes: vec![1, mb2_exec::DEFAULT_BATCH_SIZE],
            parallelism: vec![1, 4],
            columnar: vec![false, true],
        }
    }
}

impl ExecutionRunnerConfig {
    /// A fast configuration for tests.
    pub fn smoke() -> ExecutionRunnerConfig {
        ExecutionRunnerConfig {
            max_rows: 256,
            min_rows: 64,
            modes: vec![ExecutionMode::Compiled],
            measure: RunnerConfig {
                repetitions: 3,
                warmups: 1,
                ..RunnerConfig::default()
            },
            batch_sizes: vec![mb2_exec::DEFAULT_BATCH_SIZE],
            parallelism: vec![1],
            columnar: vec![false],
            ..ExecutionRunnerConfig::default()
        }
    }
}

/// Run every execution-OU runner, returning the collected training data.
pub fn run_execution_runners(cfg: &ExecutionRunnerConfig) -> DbResult<TrainingRepo> {
    let mut repo = TrainingRepo::new();
    let translator = OuTranslator::new(cfg.translator.clone());
    for &rows in &exponential_steps(cfg.min_rows, cfg.max_rows) {
        let db = build_dataset(rows, cfg.measure.seed)?;
        db.set_hw(cfg.hw);
        db.set_jht_sleep_every(cfg.jht_sleep_every);
        for &mode in &cfg.modes {
            db.set_execution_mode(mode);
            for &batch in &cfg.batch_sizes {
                db.set_batch_size(batch);
                for &workers in &cfg.parallelism {
                    db.set_parallelism(workers);
                    for &columnar in &cfg.columnar {
                        db.set_columnar_enabled(columnar);
                        if columnar {
                            // Seal frozen units so block scans have blocks
                            // to serve (DML in the sweep dirties some; the
                            // next pass re-seals them).
                            db.compact_now();
                        }
                        sweep_queries(&db, rows, &translator, cfg, &mut repo)?;
                    }
                    db.set_columnar_enabled(false);
                }
            }
        }
    }
    Ok(repo)
}

/// Join-only sweep — the restricted retraining path used when a software
/// update touches only the join hash table (paper §8.5 / Fig. 9a).
pub fn run_join_runner(cfg: &ExecutionRunnerConfig) -> DbResult<TrainingRepo> {
    let mut repo = TrainingRepo::new();
    let translator = OuTranslator::new(cfg.translator.clone());
    for &rows in &exponential_steps(cfg.min_rows, cfg.max_rows) {
        let db = build_dataset(rows, cfg.measure.seed)?;
        db.set_hw(cfg.hw);
        db.set_jht_sleep_every(cfg.jht_sleep_every);
        for &mode in &cfg.modes {
            db.set_execution_mode(mode);
            for &batch in &cfg.batch_sizes {
                db.set_batch_size(batch);
                for &workers in &cfg.parallelism {
                    db.set_parallelism(workers);
                    for sql in [
                        "SELECT * FROM ou_r1, ou_r2 WHERE ou_r1.jk = ou_r2.k",
                        "SELECT * FROM ou_r1, ou_r2 WHERE ou_r1.jk = ou_r2.k AND ou_r2.w > 100.0",
                    ] {
                        let plan = db.prepare(sql)?;
                        repo.add_all(measure_plan(&db, &plan, &translator, &cfg.measure, false)?);
                    }
                }
            }
        }
    }
    Ok(repo)
}

/// Create and populate the runner tables: `ou_r1` (probe/base table with
/// group columns of three cardinalities and a join key) and `ou_r2` (join
/// build side).
fn build_dataset(rows: usize, seed: u64) -> DbResult<Database> {
    let db = Database::new(DatabaseConfig::bench())?;
    db.execute("CREATE TABLE ou_r1 (k INT, g1 INT, g2 INT, jk INT, v FLOAT, pad VARCHAR(32))")?;
    db.execute("CREATE TABLE ou_r2 (k INT, w FLOAT, pad VARCHAR(16))")?;
    let mut rng = Prng::new(seed);
    let g1_card = (rows / 64).max(2);
    let g2_card = (rows / 8).max(4);
    let build_rows = (rows / 8).max(8);
    insert_batch(&db, "ou_r1", rows, |i| {
        format!(
            "({i}, {}, {}, {}, {}.25, '{}')",
            i % g1_card,
            i % g2_card,
            i % build_rows,
            i * 3,
            rng_pad(&mut rng, 8)
        )
    })?;
    insert_batch(&db, "ou_r2", build_rows, |i| {
        format!("({i}, {}.5, '{}')", i * 7, rng_pad(&mut rng, 4))
    })?;
    // Secondary index for the index-scan runner (also yields an IndexBuild
    // sample as a side effect via the util runner; here it is unmeasured).
    db.execute("CREATE INDEX ou_r1_k ON ou_r1 (k)")?;
    db.execute("ANALYZE ou_r1")?;
    db.execute("ANALYZE ou_r2")?;
    Ok(db)
}

fn rng_pad(rng: &mut Prng, len: usize) -> String {
    rng.string(len)
}

fn insert_batch(
    db: &Database,
    table: &str,
    rows: usize,
    mut gen: impl FnMut(usize) -> String,
) -> DbResult<()> {
    const BATCH: usize = 500;
    let mut i = 0;
    while i < rows {
        let end = (i + BATCH).min(rows);
        let values: Vec<String> = (i..end).map(&mut gen).collect();
        db.execute(&format!("INSERT INTO {table} VALUES {}", values.join(", ")))?;
        i = end;
    }
    Ok(())
}

/// The per-mode query sweep.
fn sweep_queries(
    db: &Database,
    rows: usize,
    translator: &OuTranslator,
    cfg: &ExecutionRunnerConfig,
    repo: &mut TrainingRepo,
) -> DbResult<()> {
    let measure = &cfg.measure;
    let mut run = |sql: &str, mutating: bool| -> DbResult<()> {
        let plan = db.prepare(sql)?;
        let samples = measure_plan(db, &plan, translator, measure, mutating)?;
        repo.add_all(samples);
        Ok(())
    };

    // Sequential scan + filter + output, at three selectivities.
    for frac in [0usize, 2, 10] {
        let bound = rows.checked_div(frac).map_or(0, |d| rows - d);
        run(&format!("SELECT * FROM ou_r1 WHERE k >= {bound}"), false)?;
    }
    // Arithmetic-heavy projections (two expression sizes).
    run("SELECT k + 1 FROM ou_r1", false)?;
    run(
        "SELECT k * 2 + g1 * g2 - 7, v / 2.0 + 1.0 FROM ou_r1",
        false,
    )?;

    // Index scans: point lookups and short prefix ranges.
    run(
        &format!("SELECT * FROM ou_r1 WHERE k = {}", rows / 2),
        false,
    )?;
    run(
        &format!("SELECT * FROM ou_r1 WHERE k = {} AND g1 >= 0", rows / 3),
        false,
    )?;

    // Aggregations at three key cardinalities.
    for g in ["g1", "g2", "k"] {
        run(
            &format!("SELECT {g}, COUNT(*), SUM(v) FROM ou_r1 GROUP BY {g}"),
            false,
        )?;
    }

    // Sorts: high- and low-cardinality keys, plus a composite key.
    run("SELECT * FROM ou_r1 ORDER BY k", false)?;
    run("SELECT * FROM ou_r1 ORDER BY g1", false)?;
    run("SELECT * FROM ou_r1 ORDER BY g1, g2 DESC", false)?;

    // Hash joins (build side is the smaller ou_r2), varying build-side
    // selectivity and probe-side selectivity so probe fan-out and output
    // volume cover a range.
    run("SELECT * FROM ou_r1, ou_r2 WHERE ou_r1.jk = ou_r2.k", false)?;
    run(
        "SELECT * FROM ou_r1, ou_r2 WHERE ou_r1.jk = ou_r2.k AND ou_r2.w > 100.0",
        false,
    )?;
    run(
        &format!(
            "SELECT * FROM ou_r1, ou_r2 WHERE ou_r1.jk = ou_r2.k AND ou_r1.k < {}",
            rows / 4
        ),
        false,
    )?;
    run(
        "SELECT ou_r1.k + ou_r2.k FROM ou_r1, ou_r2 \
         WHERE ou_r1.jk = ou_r2.k AND ou_r1.v > 2.0 AND ou_r2.w > 50.0",
        false,
    )?;

    // DML (rolled back by the measurement harness).
    let multi: Vec<String> = (0..32)
        .map(|i| format!("({}, 0, 0, 0, 0.5, 'zz')", rows + i))
        .collect();
    run(
        &format!("INSERT INTO ou_r1 VALUES {}", multi.join(", ")),
        true,
    )?;
    run(
        &format!("UPDATE ou_r1 SET v = v + 1.0 WHERE k < {}", rows / 4),
        true,
    )?;
    run(&format!("DELETE FROM ou_r1 WHERE k < {}", rows / 8), true)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::OuKind;

    #[test]
    fn smoke_sweep_covers_all_execution_ous() {
        let repo = run_execution_runners(&ExecutionRunnerConfig::smoke()).unwrap();
        for ou in [
            OuKind::SeqScan,
            OuKind::IdxScan,
            OuKind::JoinHashBuild,
            OuKind::JoinHashProbe,
            OuKind::AggBuild,
            OuKind::AggProbe,
            OuKind::SortBuild,
            OuKind::SortIter,
            OuKind::InsertTuple,
            OuKind::UpdateTuple,
            OuKind::DeleteTuple,
            OuKind::ArithmeticFilter,
            OuKind::OutputResult,
        ] {
            assert!(repo.count(ou) > 0, "no samples for {ou}");
        }
    }

    #[test]
    fn sweep_varies_batch_and_parallelism_features() {
        let cfg = ExecutionRunnerConfig {
            max_rows: 64,
            min_rows: 64,
            modes: vec![ExecutionMode::Compiled],
            measure: RunnerConfig {
                repetitions: 1,
                warmups: 0,
                ..RunnerConfig::default()
            },
            batch_sizes: vec![1, 1024],
            parallelism: vec![1, 2],
            ..ExecutionRunnerConfig::default()
        };
        let repo = run_execution_runners(&cfg).unwrap();
        // SeqScan features end in [batch_size, parallelism, shard_count];
        // the sweep must produce both corners of each knob.
        let mut batches = std::collections::BTreeSet::new();
        let mut workers = std::collections::BTreeSet::new();
        for s in repo.samples(OuKind::SeqScan) {
            let n = s.features.len();
            batches.insert(s.features[n - 3] as u64);
            workers.insert(s.features[n - 2] as u64);
        }
        assert_eq!(batches.into_iter().collect::<Vec<_>>(), vec![1, 1024]);
        assert_eq!(workers.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn columnar_sweep_produces_block_scan_samples() {
        let cfg = ExecutionRunnerConfig {
            max_rows: 1024,
            min_rows: 1024,
            modes: vec![ExecutionMode::Compiled],
            measure: RunnerConfig {
                repetitions: 1,
                warmups: 0,
                ..RunnerConfig::default()
            },
            batch_sizes: vec![mb2_exec::DEFAULT_BATCH_SIZE],
            parallelism: vec![1],
            columnar: vec![false, true],
            ..ExecutionRunnerConfig::default()
        };
        let repo = run_execution_runners(&cfg).unwrap();
        let samples = repo.samples(OuKind::BlockScan);
        assert!(!samples.is_empty(), "columnar sweep must price Block/Scan");
        // Feature shape: [n_tuples, selectivity, n_cols, batch, par, shards].
        for s in samples {
            assert_eq!(s.features.len(), 6);
            assert!((0.0..=1.0).contains(&s.features[1]), "{:?}", s.features);
        }
        // The off-corner must not emit Block/Scan instances.
        let off = run_execution_runners(&ExecutionRunnerConfig {
            columnar: vec![false],
            ..cfg
        })
        .unwrap();
        assert_eq!(off.count(OuKind::BlockScan), 0);
    }

    #[test]
    fn sweep_varies_tuple_counts() {
        let cfg = ExecutionRunnerConfig {
            max_rows: 256,
            min_rows: 64,
            modes: vec![ExecutionMode::Compiled],
            measure: RunnerConfig {
                repetitions: 2,
                warmups: 0,
                ..RunnerConfig::default()
            },
            ..ExecutionRunnerConfig::default()
        };
        let repo = run_execution_runners(&cfg).unwrap();
        let tuples: std::collections::BTreeSet<u64> = repo
            .samples(OuKind::SeqScan)
            .iter()
            .map(|s| s.features[0] as u64)
            .collect();
        assert!(tuples.len() >= 2, "row-count sweep missing: {tuples:?}");
    }
}
