//! Morsel-driven parallel execution — rows/sec of the batch pipeline
//! across worker counts.
//!
//! Measures the four canonical read pipelines (sequential scan, scan with
//! a 10%-selective pushed filter, hash join, hash aggregation) at
//! parallelism 1 (serial, no pool), 2, and all available cores. Results
//! stream through the batch API so the numbers reflect executor
//! throughput. Parallel execution is byte-identical to serial (ordered
//! morsel gather), so speedup is the entire story.
//!
//! Acceptance gate for this reproduction: the 10%-selective filter scan
//! must run at least 2x faster at the all-cores worker count than serial —
//! enforced only on hosts with ≥ 4 cores (a 1- or 2-core host cannot
//! express a 2x parallel speedup; the gate reports SKIPPED and passes).
//!
//! Emits `results/exec_parallel.txt` and machine-readable
//! `results/BENCH_parallel.json`.

use std::fmt::Write as _;
use std::time::Instant;

use mb2_engine::Database;

use crate::report::{fmt, results_dir, Table};
use crate::Scale;

/// Required speedup (all-cores vs serial) on the selective-filter scan,
/// enforced at ≥ [`GATE_MIN_CORES`] cores.
pub const PARALLEL_SPEEDUP_GATE: f64 = 2.0;

/// Minimum core count for the speedup gate to be meaningful.
pub const GATE_MIN_CORES: usize = 4;

struct Case {
    name: &'static str,
    sql: &'static str,
    input_rows: usize,
}

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Morsel-parallel execution — rows/sec by worker count\n\n");

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Worker counts: serial, 2, all cores (deduplicated, ascending).
    let mut worker_counts = vec![1usize, 2, cores];
    worker_counts.sort_unstable();
    worker_counts.dedup();

    let db = Database::open();
    db.execute("CREATE TABLE big (a INT, b INT, c FLOAT)")
        .unwrap();
    db.execute("CREATE TABLE dim (id INT, name VARCHAR(16))")
        .unwrap();
    // Default morsel = 2048 slots, so 8k rows already fan out over 4
    // workers; standard scale gives 20 morsels.
    let rows = scale.pick(8_000, 40_000);
    let mut i = 0;
    while i < rows {
        let n = 500.min(rows - i);
        let vals: Vec<String> = (i..i + n)
            .map(|j| format!("({j}, {}, {})", (j * 31 + 7) % 100, j as f64 / 3.0))
            .collect();
        db.execute(&format!("INSERT INTO big VALUES {}", vals.join(", ")))
            .unwrap();
        i += n;
    }
    for i in 0..100 {
        db.execute(&format!("INSERT INTO dim VALUES ({i}, 'd{i}')"))
            .unwrap();
    }
    db.execute("ANALYZE big").unwrap();
    db.execute("ANALYZE dim").unwrap();

    let cases = [
        Case {
            name: "seq-scan",
            sql: "SELECT * FROM big",
            input_rows: rows,
        },
        Case {
            name: "scan+filter (10%)",
            sql: "SELECT * FROM big WHERE b < 10",
            input_rows: rows,
        },
        Case {
            name: "hash-join",
            sql: "SELECT big.a, dim.name FROM big, dim WHERE big.b = dim.id",
            input_rows: rows,
        },
        Case {
            name: "hash-agg",
            sql: "SELECT b, COUNT(*), SUM(a) FROM big GROUP BY b",
            input_rows: rows,
        },
    ];
    let reps = scale.pick(3, 5);

    // rates[case][worker-count index] = median input rows/sec.
    let mut rates = vec![vec![0f64; worker_counts.len()]; cases.len()];
    // Byte-identity spot check: row counts must agree across worker counts.
    let mut counts = vec![vec![0usize; worker_counts.len()]; cases.len()];
    for (ci, case) in cases.iter().enumerate() {
        let plan = db.prepare(case.sql).unwrap();
        for (wi, &workers) in worker_counts.iter().enumerate() {
            db.set_parallelism(workers);
            let mut times = Vec::with_capacity(reps);
            for rep in 0..=reps {
                let mut streamed = 0usize;
                let mut txn = db.begin();
                let t0 = Instant::now();
                db.execute_plan_streaming_in(&plan, &mut txn, None, &mut |b| {
                    streamed += b.len();
                    Ok(())
                })
                .unwrap();
                let elapsed = t0.elapsed();
                txn.commit().unwrap();
                assert!(streamed > 0, "{} produced no rows", case.name);
                counts[ci][wi] = streamed;
                if rep > 0 {
                    times.push(elapsed);
                }
            }
            times.sort();
            let median = times[times.len() / 2];
            rates[ci][wi] = case.input_rows as f64 / median.as_secs_f64();
        }
        assert!(
            counts[ci].iter().all(|&c| c == counts[ci][0]),
            "{}: result cardinality varies with worker count",
            case.name
        );
    }
    db.set_parallelism(1);

    let max_wi = worker_counts.len() - 1;
    let mut headers: Vec<String> = vec!["pipeline".into()];
    headers.extend(worker_counts.iter().map(|w| format!("workers={w}")));
    headers.push(format!("{}/1", worker_counts[max_wi]));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        format!("input rows/sec over {rows} rows (median of {reps}, {cores} cores)"),
        &header_refs,
    );
    for (ci, case) in cases.iter().enumerate() {
        let mut row = vec![case.name.to_string()];
        row.extend(rates[ci].iter().map(|&r| fmt(r)));
        row.push(format!("{:.2}x", rates[ci][max_wi] / rates[ci][0]));
        table.row(&row);
    }
    out.push_str(&table.render());

    let filter_speedup = rates[1][max_wi] / rates[1][0];
    let gated = cores >= GATE_MIN_CORES;
    let pass = !gated || filter_speedup >= PARALLEL_SPEEDUP_GATE;
    let verdict = if !gated {
        format!("SKIPPED ({cores} cores < {GATE_MIN_CORES})")
    } else if pass {
        "PASS".to_string()
    } else {
        "FAIL".to_string()
    };
    let _ = writeln!(
        out,
        "\nscan+filter speedup at {} workers vs serial: {filter_speedup:.2}x \
         (gate {PARALLEL_SPEEDUP_GATE:.1}x at >= {GATE_MIN_CORES} cores) — {verdict}",
        worker_counts[max_wi]
    );

    // Machine-readable companion: hand-rolled JSON, no serde dependency.
    let mut json = String::from("{\n  \"experiment\": \"exec_parallel\",\n");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"filter_speedup_max_vs_1\": {filter_speedup:.4},");
    let _ = writeln!(json, "  \"gate\": {PARALLEL_SPEEDUP_GATE},");
    let _ = writeln!(json, "  \"gate_min_cores\": {GATE_MIN_CORES},");
    let _ = writeln!(json, "  \"gate_enforced\": {gated},");
    let _ = writeln!(json, "  \"gate_pass\": {pass},");
    json.push_str("  \"results\": [\n");
    for (ci, case) in cases.iter().enumerate() {
        for (wi, &workers) in worker_counts.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"pipeline\": \"{}\", \"workers\": {workers}, \
                 \"rows_per_sec\": {:.1}}}",
                case.name, rates[ci][wi]
            );
            let last = ci + 1 == cases.len() && wi + 1 == worker_counts.len();
            json.push_str(if last { "\n" } else { ",\n" });
        }
    }
    json.push_str("  ]\n}\n");
    let path = results_dir().join("BENCH_parallel.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        let _ = writeln!(out, "\njson: {}", path.display());
    }

    out
}
