//! Regenerates one paper result; see `mb2_bench::experiments::fig01_index_build`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::fig01_index_build::run(scale);
    mb2_bench::report::emit("fig01_index_build", &report);
}
