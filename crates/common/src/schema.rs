//! Table schemas.

use crate::error::{DbError, DbResult};
use crate::types::DataType;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: DataType,
    /// Declared average width for varchar columns; used by the OU feature
    /// generator to estimate tuple sizes before execution.
    pub varchar_len: usize,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: DataType) -> Column {
        Column {
            name: name.into(),
            ty,
            varchar_len: 16,
        }
    }

    pub fn with_varchar_len(mut self, len: usize) -> Column {
        self.varchar_len = len;
        self
    }

    /// Estimated width in bytes of values in this column.
    pub fn estimated_width(&self) -> usize {
        match self.ty {
            DataType::Varchar => 16 + self.varchar_len,
            other => other.fixed_size(),
        }
    }
}

/// An ordered set of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Resolve a column name (case-insensitive) to its index.
    pub fn index_of(&self, name: &str) -> DbResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| DbError::Plan(format!("unknown column '{name}'")))
    }

    /// Estimated tuple width in bytes (sum of column width estimates).
    pub fn estimated_tuple_size(&self) -> usize {
        self.columns.iter().map(Column::estimated_width).sum()
    }

    /// Concatenate two schemas (used for join outputs).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Project a subset of columns by index.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Varchar).with_varchar_len(32),
            Column::new("balance", DataType::Float),
        ])
    }

    #[test]
    fn index_lookup_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("ID").unwrap(), 0);
        assert_eq!(s.index_of("Balance").unwrap(), 2);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn tuple_size_estimate() {
        let s = schema();
        assert_eq!(s.estimated_tuple_size(), 8 + (16 + 32) + 8);
    }

    #[test]
    fn join_and_project() {
        let s = schema();
        let joined = s.join(&schema());
        assert_eq!(joined.len(), 6);
        let projected = joined.project(&[0, 5]);
        assert_eq!(projected.column(0).name, "id");
        assert_eq!(projected.column(1).name, "balance");
    }
}
