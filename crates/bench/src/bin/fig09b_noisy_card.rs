//! Regenerates one paper result; see `mb2_bench::experiments::fig09b_noisy_card`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::fig09b_noisy_card::run(scale);
    mb2_bench::report::emit("fig09b_noisy_card", &report);
}
