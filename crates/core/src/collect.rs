//! Training-data collection (paper §6.1).
//!
//! [`TrainingCollector`] is the `OuRecorder` the runners attach to query
//! execution: it joins plan-derived features (from the translator) with
//! execution-measured labels by `(node id, OU)` key. Repeated measurements
//! of the same plan are aggregated with the 20% trimmed mean (paper §6.2).
//! [`TrainingRepo`] stores the joined samples per OU and exports
//! `mb2-ml` datasets with labels normalized per §4.3.

use std::collections::HashMap;
use std::path::Path;

use parking_lot::Mutex;

use mb2_common::csv::CsvTable;
use mb2_common::stats::trimmed_mean;
use mb2_common::{DbError, DbResult, Metrics, OuKind, METRIC_COUNT, METRIC_NAMES};
use mb2_exec::OuRecorder;
use mb2_ml::Dataset;

use crate::features::{feature_names, OuInstance};
use crate::normalize::normalize_labels;

/// One training sample: raw (unnormalized) labels with their features.
#[derive(Debug, Clone, PartialEq)]
pub struct OuSample {
    pub ou: OuKind,
    pub features: Vec<f64>,
    pub labels: Metrics,
}

/// Joins translator features with executor measurements for one plan.
pub struct TrainingCollector {
    expectations: HashMap<(u32, OuKind), Vec<f64>>,
    sink: Mutex<Vec<(u32, OuKind, Metrics)>>,
}

impl TrainingCollector {
    /// Build a collector expecting the given OU instances (from
    /// [`crate::OuTranslator::translate_plan`]).
    pub fn new(instances: &[OuInstance]) -> TrainingCollector {
        let expectations = instances
            .iter()
            .map(|i| ((i.node_id, i.ou), i.features.clone()))
            .collect();
        TrainingCollector {
            expectations,
            sink: Mutex::new(Vec::new()),
        }
    }

    /// Raw measurements recorded so far (for interference training, which
    /// needs actuals rather than joined samples).
    pub fn raw(&self) -> Vec<(u32, OuKind, Metrics)> {
        self.sink.lock().clone()
    }

    /// Join measurements with features, clearing the sink. Measurements
    /// without a matching expectation are dropped (e.g. OUs from other
    /// concurrently running queries when a collector is shared).
    pub fn drain_joined(&self) -> Vec<OuSample> {
        let measured: Vec<(u32, OuKind, Metrics)> = std::mem::take(&mut *self.sink.lock());
        measured
            .into_iter()
            .filter_map(|(id, ou, labels)| {
                self.expectations.get(&(id, ou)).map(|features| OuSample {
                    ou,
                    features: features.clone(),
                    labels,
                })
            })
            .collect()
    }

    /// Clear without joining.
    pub fn reset(&self) {
        self.sink.lock().clear();
    }
}

impl OuRecorder for TrainingCollector {
    fn record(&self, node_id: u32, ou: OuKind, metrics: Metrics) {
        self.sink.lock().push((node_id, ou, metrics));
    }
}

/// Aggregate repeated measurements of the same plan with a trimmed mean per
/// `(node id, OU)` (paper §6.2: 20% trimming, breakdown point 0.4).
pub fn aggregate_repeats(
    repeats: &[Vec<(u32, OuKind, Metrics)>],
    trim_fraction: f64,
) -> Vec<(u32, OuKind, Metrics)> {
    let mut grouped: HashMap<(u32, OuKind), Vec<Metrics>> = HashMap::new();
    let mut order: Vec<(u32, OuKind)> = Vec::new();
    for run in repeats {
        for (id, ou, m) in run {
            let key = (*id, *ou);
            let entry = grouped.entry(key).or_default();
            if entry.is_empty() {
                order.push(key);
            }
            entry.push(*m);
        }
    }
    order
        .into_iter()
        .map(|key| {
            let samples = &grouped[&key];
            let mut agg = Metrics::ZERO;
            for i in 0..METRIC_COUNT {
                let col: Vec<f64> = samples.iter().map(|m| m[i]).collect();
                agg[i] = trimmed_mean(&col, trim_fraction);
            }
            (key.0, key.1, agg)
        })
        .collect()
}

/// Per-OU training-data repository.
#[derive(Debug, Default)]
pub struct TrainingRepo {
    per_ou: HashMap<OuKind, Vec<OuSample>>,
}

impl TrainingRepo {
    pub fn new() -> TrainingRepo {
        TrainingRepo::default()
    }

    pub fn add(&mut self, sample: OuSample) {
        self.per_ou.entry(sample.ou).or_default().push(sample);
    }

    pub fn add_all(&mut self, samples: impl IntoIterator<Item = OuSample>) {
        for s in samples {
            self.add(s);
        }
    }

    pub fn merge(&mut self, other: TrainingRepo) {
        for (ou, samples) in other.per_ou {
            self.per_ou.entry(ou).or_default().extend(samples);
        }
    }

    pub fn ous(&self) -> Vec<OuKind> {
        let mut ous: Vec<OuKind> = self.per_ou.keys().copied().collect();
        ous.sort();
        ous
    }

    pub fn count(&self, ou: OuKind) -> usize {
        self.per_ou.get(&ou).map_or(0, Vec::len)
    }

    pub fn total_samples(&self) -> usize {
        self.per_ou.values().map(Vec::len).sum()
    }

    /// Approximate on-disk size of the raw data (Table 2 accounting).
    pub fn data_size_bytes(&self) -> usize {
        self.per_ou
            .values()
            .flatten()
            .map(|s| (s.features.len() + METRIC_COUNT) * 8)
            .sum()
    }

    pub fn samples(&self, ou: OuKind) -> &[OuSample] {
        self.per_ou.get(&ou).map_or(&[], Vec::as_slice)
    }

    /// Export an ML dataset for one OU; labels are complexity-normalized
    /// when `normalize` is set (paper §4.3 — the Fig. 6 ablation disables
    /// it).
    pub fn dataset(&self, ou: OuKind, normalize: bool) -> Dataset {
        let mut data = Dataset::default();
        for s in self.samples(ou) {
            let labels = if normalize {
                normalize_labels(ou, &s.features, &s.labels)
            } else {
                s.labels
            };
            data.push(s.features.clone(), labels.as_slice().to_vec());
        }
        data
    }

    /// Persist one OU's samples as CSV.
    pub fn save_ou(&self, ou: OuKind, path: &Path) -> DbResult<()> {
        let samples = self.samples(ou);
        let width = samples.first().map_or(0, |s| s.features.len());
        let mut header: Vec<String> = feature_names(ou)
            .iter()
            .map(|s| s.to_string())
            .chain((feature_names(ou).len()..width).map(|i| format!("extra_{i}")))
            .collect();
        header.extend(METRIC_NAMES.iter().map(|s| s.to_string()));
        let mut table = CsvTable::new(header);
        for s in samples {
            let mut row = s.features.clone();
            row.extend_from_slice(s.labels.as_slice());
            table.push_f64_row(&row);
        }
        table.write_to(path)
    }

    /// Load one OU's samples from CSV (appending).
    pub fn load_ou(&mut self, ou: OuKind, path: &Path) -> DbResult<usize> {
        let table = CsvTable::read_from(path)?;
        let total_cols = table.header.len();
        if total_cols < METRIC_COUNT {
            return Err(DbError::Storage("csv too narrow for labels".into()));
        }
        let n_features = total_cols - METRIC_COUNT;
        let mut loaded = 0;
        for r in 0..table.rows.len() {
            let features: Vec<f64> = (0..n_features)
                .map(|c| table.f64_at(r, c))
                .collect::<DbResult<_>>()?;
            let labels: Metrics = (0..METRIC_COUNT)
                .map(|c| table.f64_at(r, n_features + c))
                .collect::<DbResult<Vec<f64>>>()?
                .into_iter()
                .collect();
            self.add(OuSample {
                ou,
                features,
                labels,
            });
            loaded += 1;
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ou: OuKind, n: f64, elapsed: f64) -> OuSample {
        let width = crate::features::feature_width(ou);
        let mut features = vec![1.0; width];
        features[0] = n;
        let mut labels = Metrics::ZERO;
        labels[0] = elapsed;
        OuSample {
            ou,
            features,
            labels,
        }
    }

    #[test]
    fn collector_joins_by_node_and_ou() {
        let instances = vec![
            OuInstance {
                node_id: 1,
                ou: OuKind::SeqScan,
                features: vec![10.0; 7],
            },
            OuInstance {
                node_id: 0,
                ou: OuKind::OutputResult,
                features: vec![5.0; 7],
            },
        ];
        let c = TrainingCollector::new(&instances);
        c.record(1, OuKind::SeqScan, Metrics::new([1.0; 9]));
        c.record(0, OuKind::OutputResult, Metrics::new([2.0; 9]));
        c.record(9, OuKind::SortBuild, Metrics::new([3.0; 9])); // unmatched
        let joined = c.drain_joined();
        assert_eq!(joined.len(), 2);
        assert!(joined
            .iter()
            .any(|s| s.ou == OuKind::SeqScan && s.features[0] == 10.0));
        // Sink cleared.
        assert!(c.drain_joined().is_empty());
    }

    #[test]
    fn aggregate_trims_outlier_runs() {
        let mut runs = Vec::new();
        for i in 0..10 {
            let elapsed = if i == 9 { 1e9 } else { 100.0 + i as f64 };
            let mut m = Metrics::ZERO;
            m[0] = elapsed;
            runs.push(vec![(0u32, OuKind::SeqScan, m)]);
        }
        let agg = aggregate_repeats(&runs, 0.2);
        assert_eq!(agg.len(), 1);
        assert!(agg[0].2[0] < 110.0, "outlier not trimmed: {}", agg[0].2[0]);
    }

    #[test]
    fn repo_datasets_normalize() {
        let mut repo = TrainingRepo::new();
        repo.add(sample(OuKind::SeqScan, 100.0, 1000.0));
        repo.add(sample(OuKind::SeqScan, 200.0, 2000.0));
        let raw = repo.dataset(OuKind::SeqScan, false);
        let norm = repo.dataset(OuKind::SeqScan, true);
        assert_eq!(raw.y[0][0], 1000.0);
        assert_eq!(norm.y[0][0], 10.0);
        assert_eq!(norm.y[1][0], 10.0, "normalized labels converge");
    }

    #[test]
    fn repo_counts_and_merge() {
        let mut a = TrainingRepo::new();
        a.add(sample(OuKind::SeqScan, 1.0, 1.0));
        let mut b = TrainingRepo::new();
        b.add(sample(OuKind::SeqScan, 2.0, 2.0));
        b.add(sample(OuKind::SortBuild, 3.0, 3.0));
        a.merge(b);
        assert_eq!(a.count(OuKind::SeqScan), 2);
        assert_eq!(a.total_samples(), 3);
        assert_eq!(
            a.ous(),
            vec![OuKind::SortBuild, OuKind::SeqScan]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
        assert!(a.data_size_bytes() > 0);
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("mb2_repo_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("seq_scan_{}.csv", std::process::id()));
        let mut repo = TrainingRepo::new();
        repo.add(sample(OuKind::SeqScan, 100.0, 1234.0));
        repo.save_ou(OuKind::SeqScan, &path).unwrap();
        let mut back = TrainingRepo::new();
        let n = back.load_ou(OuKind::SeqScan, &path).unwrap();
        assert_eq!(n, 1);
        assert_eq!(back.samples(OuKind::SeqScan)[0].labels[0], 1234.0);
        let _ = std::fs::remove_file(&path);
    }
}
