//! Runtime-metrics adapter for the OU tracker.
//!
//! [`ObsRecorder`] implements [`OuRecorder`] by folding every OU measurement
//! into a [`MetricsRegistry`]: one `mb2_ou_elapsed_us{ou="..."}` histogram
//! and one `mb2_ou_invocations_total{ou="..."}` counter per operating unit.
//! This is the bridge between the paper's *training-time* tracker (which
//! streams full nine-metric vectors to the data collector) and the
//! *runtime* self-monitoring story: the same spans, summarized into
//! mergeable histograms a scrape can read at any moment.

use std::collections::BTreeMap;
use std::sync::Arc;

use mb2_common::{Metrics, OuKind};
use mb2_obs::{Counter, Histogram, MetricsRegistry};

use crate::tracker::OuRecorder;

struct OuSeries {
    invocations: Arc<Counter>,
    elapsed_us: Arc<Histogram>,
}

/// An [`OuRecorder`] that publishes per-OU latency histograms and
/// invocation counters into a shared registry. All series are registered
/// eagerly at construction (one per [`OuKind`]), so `record` is two map
/// lookups away from pure atomic work and never takes the registry lock.
pub struct ObsRecorder {
    by_ou: BTreeMap<&'static str, OuSeries>,
}

impl ObsRecorder {
    pub fn new(registry: &MetricsRegistry) -> Arc<ObsRecorder> {
        let by_ou = OuKind::ALL
            .into_iter()
            .map(|ou| {
                let name = ou.name();
                (
                    name,
                    OuSeries {
                        invocations: registry.counter_with(
                            "mb2_ou_invocations_total",
                            &[("ou", name)],
                            "Operating-unit invocations.",
                        ),
                        elapsed_us: registry.histogram_with(
                            "mb2_ou_elapsed_us",
                            &[("ou", name)],
                            "Operating-unit elapsed time in microseconds.",
                        ),
                    },
                )
            })
            .collect();
        Arc::new(ObsRecorder { by_ou })
    }
}

impl OuRecorder for ObsRecorder {
    fn record(&self, _node_id: u32, ou: OuKind, metrics: Metrics) {
        let series = &self.by_ou[ou.name()];
        series.invocations.inc();
        series.elapsed_us.record(metrics.elapsed_us() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_populates_per_ou_series() {
        let registry = MetricsRegistry::new();
        let rec = ObsRecorder::new(&registry);
        let mut m = Metrics::ZERO;
        m.0[mb2_common::metrics::idx::ELAPSED_US] = 250.0;
        rec.record(0, OuKind::SeqScan, m);
        rec.record(1, OuKind::SeqScan, m);
        rec.record(2, OuKind::SortBuild, m);

        let text = registry.prometheus_text();
        assert!(text.contains("mb2_ou_invocations_total{ou=\"seq_scan\"} 2"));
        assert!(text.contains("mb2_ou_invocations_total{ou=\"sort_build\"} 1"));
        assert!(text.contains("mb2_ou_elapsed_us_count{ou=\"seq_scan\"} 2"));
    }
}
