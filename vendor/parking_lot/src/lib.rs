//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors the small slice of `parking_lot` it actually uses: `Mutex` and
//! `RwLock` with non-poisoning guards. Semantics match `parking_lot` for the
//! used surface: locks never return `Err` — a panicked holder simply releases
//! the lock for the next acquirer.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock whose `read()`/`write()` never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire the write lock only if it is free right now (`None` when the
    /// lock is held). Matches `parking_lot::RwLock::try_write`.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                f.debug_tuple("RwLock").field(&&*e.into_inner()).finish()
            }
            Err(std::sync::TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: no poisoning, lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
