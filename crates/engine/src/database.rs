//! The `Database` facade.

use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use mb2_catalog::Catalog;
use mb2_common::{Column, DbError, DbResult, FaultInjector, Schema};
use mb2_exec::{
    execute, execute_batched, Batch, ExecContext, ExecPool, ExecutionMode, ObsRecorder, OuRecorder,
    QueryResult, DEFAULT_MORSEL_SLOTS,
};
use mb2_index::IndexObs;
use mb2_obs::MetricsRegistry;
use mb2_sql::{parse, PlanNode, Planner, PlannerOverrides, Statement};
use mb2_txn::{Compactor, GarbageCollector, Transaction, TxnManager};
use mb2_wal::{LogManager, LogManagerConfig, LogRecord, LoggedColumn};

use crate::config::{DatabaseConfig, Knobs};
use crate::health::{DegradedReason, HealthState, HealthTracker};
use crate::metrics::{classify, EngineMetrics, StatementKind};
use crate::session::Session;
use crate::tasks::{BackgroundTask, StatementTap};

/// An embedded in-memory DBMS instance.
pub struct Database {
    catalog: Catalog,
    txns: Arc<TxnManager>,
    gc: Arc<GarbageCollector>,
    compactor: Arc<Compactor>,
    wal: Option<Arc<LogManager>>,
    knobs: RwLock<Knobs>,
    /// Shared morsel-execution worker pool; `None` while `knobs.parallelism`
    /// is 1 (serial execution never touches the pool).
    pool: RwLock<Option<Arc<ExecPool>>>,
    metrics: Arc<MetricsRegistry>,
    engine_metrics: EngineMetrics,
    obs_recorder: Arc<ObsRecorder>,
    index_obs: Arc<IndexObs>,
    /// Fault injection shared by every subsystem (and attached to tables as
    /// they are created); `None` in production.
    faults: Option<Arc<FaultInjector>>,
    health: HealthTracker,
    /// Upper-layer background components (the autopilot) quiesced by
    /// [`Database::shutdown`] before the engine's own subsystems. Weak so
    /// registration never keeps a task alive.
    background_tasks: Mutex<Vec<Weak<dyn BackgroundTask>>>,
    /// Observer of every DML/SELECT statement (workload forecasting).
    statement_tap: RwLock<Option<Arc<dyn StatementTap>>>,
    /// Plans keyed by SQL text for [`Database::prepare_cached`] — the
    /// paper's cached-query-plan assumption (§3) made concrete so the
    /// server's admission path can price a statement without re-planning
    /// it on every arrival. Invalidated wholesale by any DDL.
    plan_cache: Mutex<std::collections::HashMap<String, Arc<PlanNode>>>,
}

/// Cap on distinct SQL texts held by the plan cache; the whole cache is
/// dropped at the cap (ad-hoc one-off texts cannot grow it unboundedly,
/// and hot templates repopulate within one round).
const PLAN_CACHE_CAP: usize = 1024;

impl Database {
    pub fn new(config: DatabaseConfig) -> DbResult<Database> {
        let metrics = config
            .metrics
            .clone()
            .unwrap_or_else(MetricsRegistry::shared);
        metrics.set_enabled(config.metrics_enabled);
        let wal = if config.wal_enabled {
            Some(Arc::new(LogManager::new(LogManagerConfig {
                path: config.wal_path.clone(),
                flush_interval: config.knobs.wal_flush_interval,
                background: config.wal_background,
                fsync: config.wal_fsync,
                sync_commit: config.wal_sync_commit,
                max_flush_retries: config.wal_flush_retries,
                retry_backoff: config.wal_retry_backoff,
                faults: config.faults.clone(),
                metrics: Some(metrics.clone()),
            })?))
        } else {
            None
        };
        let txns = TxnManager::with_metrics(wal.clone(), &metrics);
        txns.set_faults(config.faults.clone());
        let gc = GarbageCollector::with_metrics(txns.clone(), &metrics);
        gc.set_faults(config.faults.clone());
        if let Some(interval) = config.gc_interval {
            gc.start_background(interval);
        }
        let compactor = Compactor::with_metrics(txns.clone(), &metrics);
        if let Some(interval) = config.compaction_interval {
            compactor.start_background(interval);
        }
        let workers = config.knobs.parallelism.max(1);
        let pool = (workers > 1).then(|| ExecPool::with_metrics(workers, &metrics));
        Ok(Database {
            catalog: Catalog::new(),
            txns,
            gc,
            compactor,
            wal,
            knobs: RwLock::new(config.knobs),
            pool: RwLock::new(pool),
            engine_metrics: EngineMetrics::new(&metrics),
            obs_recorder: ObsRecorder::new(&metrics),
            index_obs: IndexObs::new(&metrics),
            faults: config.faults,
            health: HealthTracker::new(&metrics),
            metrics,
            background_tasks: Mutex::new(Vec::new()),
            statement_tap: RwLock::new(None),
            plan_cache: Mutex::new(std::collections::HashMap::new()),
        })
    }

    /// Open with default configuration.
    pub fn open() -> Database {
        Database::new(DatabaseConfig::default()).expect("default config cannot fail")
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn txn_manager(&self) -> &Arc<TxnManager> {
        &self.txns
    }

    pub fn gc(&self) -> &Arc<GarbageCollector> {
        &self.gc
    }

    /// The columnar compactor sealing frozen shard units into blocks.
    pub fn compactor(&self) -> &Arc<Compactor> {
        &self.compactor
    }

    /// Run one synchronous compaction pass across every table (tests and
    /// operator tooling; the background thread calls the same entry point).
    pub fn compact_now(&self) -> mb2_txn::CompactionReport {
        self.compactor.run_once()
    }

    pub fn wal(&self) -> Option<&Arc<LogManager>> {
        self.wal.as_ref()
    }

    /// The registry every subsystem of this database publishes into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Render all metrics in the Prometheus text exposition format.
    pub fn metrics_prometheus(&self) -> String {
        self.metrics.prometheus_text()
    }

    /// Render all metrics as a JSON snapshot.
    pub fn metrics_json(&self) -> String {
        self.metrics.json_snapshot()
    }

    /// Flip the registry's enable switch ("turn off the tracker"): `false`
    /// stops span clock reads; counters and histogram handles stay live.
    pub fn set_metrics_enabled(&self, enabled: bool) {
        self.metrics.set_enabled(enabled);
    }

    /// An [`OuRecorder`] that folds per-OU measurements into this database's
    /// registry. Pass it to `execute_recorded` to populate the
    /// `mb2_ou_elapsed_us{ou=...}` runtime histograms.
    pub fn obs_recorder(&self) -> &Arc<ObsRecorder> {
        &self.obs_recorder
    }

    /// Latch/build instrumentation shared by every index this database
    /// creates.
    pub fn index_obs(&self) -> &Arc<IndexObs> {
        &self.index_obs
    }

    pub fn knobs(&self) -> Knobs {
        *self.knobs.read()
    }

    pub fn set_execution_mode(&self, mode: ExecutionMode) {
        self.knobs.write().execution_mode = mode;
    }

    pub fn set_hw(&self, hw: mb2_common::HardwareProfile) {
        self.knobs.write().hw = hw;
    }

    pub fn set_jht_sleep_every(&self, n: usize) {
        self.knobs.write().jht_sleep_every = n;
    }

    /// Rows per batch in the execution pipeline (clamped to at least 1;
    /// `1` = tuple-at-a-time execution).
    pub fn set_batch_size(&self, n: usize) {
        self.knobs.write().batch_size = n.max(1);
    }

    /// Workers in the shared intra-query execution pool (clamped to at
    /// least 1; `1` = serial execution, no pool threads). Changing the knob
    /// tears down the old pool (joining its workers) and builds a new one;
    /// in-flight queries keep their `Arc` to the old pool until they finish.
    /// Change the WAL background flush interval (a behavior knob) at
    /// runtime. Updates [`Knobs::wal_flush_interval`] and, when a WAL is
    /// attached, retunes the running flusher thread in place. A no-op on
    /// WAL-less databases beyond the knob update.
    pub fn set_wal_flush_interval(&self, interval: Duration) {
        self.knobs.write().wal_flush_interval = interval;
        if let Some(wal) = &self.wal {
            wal.set_flush_interval(interval);
        }
    }

    /// Change the background GC cadence (a behavior knob) at runtime.
    /// Takes effect immediately on a running background GC thread; a
    /// no-op (beyond storing the value) when background GC was never
    /// started.
    pub fn set_gc_interval(&self, interval: Duration) {
        self.gc.set_interval(interval);
    }

    /// Change the background compaction cadence (a behavior knob) at
    /// runtime. Takes effect immediately on a running compactor thread; a
    /// no-op (beyond storing the value) when background compaction was
    /// never started.
    pub fn set_compaction_interval(&self, interval: Duration) {
        self.compactor.set_interval(interval);
    }

    /// Flip the `columnar_enabled` behavior knob: sequential scans serve
    /// clean sealed units from their columnar blocks instead of walking
    /// version chains. Row output is byte-identical either way, so the
    /// knob can flip under live traffic.
    pub fn set_columnar_enabled(&self, enabled: bool) {
        self.knobs.write().columnar_enabled = enabled;
    }

    /// Register a background component (e.g. the autopilot) to be
    /// quiesced by [`Database::shutdown`] *before* the exec pool, GC, and
    /// WAL flusher are torn down. Held weakly: a dropped task is skipped.
    pub fn register_background_task(&self, task: Weak<dyn BackgroundTask>) {
        self.background_tasks.lock().push(task);
    }

    /// Install (or clear) the statement tap consulted on every successful
    /// DML/SELECT parse. See [`StatementTap`].
    pub fn set_statement_tap(&self, tap: Option<Arc<dyn StatementTap>>) {
        *self.statement_tap.write() = tap;
    }

    /// Report a statement to the installed tap, if any. Cheap when no tap
    /// is installed (one read-lock acquisition).
    fn tap_statement(&self, stmt: &Statement, sql: &str) {
        if !matches!(
            stmt,
            Statement::Select(_)
                | Statement::Insert { .. }
                | Statement::Update { .. }
                | Statement::Delete { .. }
        ) {
            return;
        }
        if let Some(tap) = self.statement_tap.read().as_ref() {
            tap.observe(sql);
        }
    }

    pub fn set_parallelism(&self, n: usize) {
        let n = n.max(1);
        self.knobs.write().parallelism = n;
        let pool = (n > 1).then(|| ExecPool::with_metrics(n, &self.metrics));
        *self.pool.write() = pool;
    }

    /// Hash-shard count for tables created after this call (clamped to at
    /// least 1). Existing tables keep their shard count — the shard map is
    /// fixed at table creation.
    pub fn set_shard_count(&self, n: usize) {
        self.knobs.write().shard_count = n.max(1);
    }

    /// Per-shard storage statistics for every table, sorted by table name:
    /// `(table name, ShardStats)` rows. Feeds `SHOW SHARDS` and the
    /// per-shard storage gauges.
    pub fn shard_status(&self) -> Vec<(String, mb2_storage::ShardStats)> {
        let mut out = Vec::new();
        for name in self.catalog.table_names() {
            if let Ok(entry) = self.catalog.get(&name) {
                for stats in entry.table.shard_stats() {
                    out.push((name.clone(), stats));
                }
            }
        }
        out
    }

    /// Per-shard columnar block statistics for every table, sorted by table
    /// name: `(table name, BlockShardStats)` rows. Feeds `SHOW BLOCKS` and
    /// the per-shard block gauges.
    pub fn block_status(&self) -> Vec<(String, mb2_storage::BlockShardStats)> {
        let mut out = Vec::new();
        for name in self.catalog.table_names() {
            if let Ok(entry) = self.catalog.get(&name) {
                for stats in entry.table.block_stats() {
                    out.push((name.clone(), stats));
                }
            }
        }
        out
    }

    /// The shared morsel-execution pool, if parallelism is enabled.
    pub fn exec_pool(&self) -> Option<Arc<ExecPool>> {
        self.pool.read().clone()
    }

    /// Whether the WAL has latched into the read-only (poisoned) state.
    pub fn is_read_only(&self) -> bool {
        self.wal.as_ref().is_some_and(|w| w.is_poisoned())
    }

    /// The fault injector threaded through this database's subsystems.
    pub fn faults(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// Probe and return the engine's health. A poisoned WAL observed while
    /// the tracker still says healthy transitions it to degraded
    /// (read-only); the supervisor drives the recovering/healthy
    /// transitions via [`Database::set_health`].
    pub fn health(&self) -> HealthState {
        let state = self.health.state();
        if state == HealthState::Healthy && self.is_read_only() {
            let degraded = HealthState::Degraded(DegradedReason::WalPoisoned);
            self.health.set(degraded);
            return degraded;
        }
        state
    }

    /// Set the health state directly (supervisor transitions).
    pub fn set_health(&self, state: HealthState) {
        self.health.set(state);
    }

    /// Fail with [`DbError::WalUnavailable`] if durable writes are
    /// impossible. DDL checks this before mutating the catalog so schema
    /// changes never outrun what the log can persist.
    fn check_wal_writable(&self) -> DbResult<()> {
        match &self.wal {
            Some(wal) => wal.check_writable(),
            None => Ok(()),
        }
    }

    /// Log a DDL record with the same durability as a committed transaction:
    /// under `wal_sync_commit` the record is flushed before the DDL is
    /// acknowledged.
    pub(crate) fn log_ddl(&self, record: &LogRecord) -> DbResult<()> {
        if let Some(wal) = &self.wal {
            let seq = wal.append_seq(record)?;
            if wal.config().sync_commit {
                if let Err(e) = wal.flush_now() {
                    // Same phantom guard as the commit path: if a
                    // group-commit rider already made this record durable,
                    // the DDL must be acknowledged as applied.
                    if wal.durable_seq() < seq {
                        return Err(e);
                    }
                }
            }
        }
        Ok(())
    }

    /// Begin an explicit transaction.
    pub fn begin(&self) -> Transaction {
        self.txns.begin()
    }

    /// Open a session (supports BEGIN/COMMIT/ROLLBACK statements).
    pub fn session(&self) -> Session<'_> {
        self.engine_metrics.sessions.inc();
        Session::new(self)
    }

    /// Parse + plan a statement (for prepared/cached execution, matching the
    /// paper's cached-query-plan assumption in §3).
    pub fn prepare(&self, sql: &str) -> DbResult<PlanNode> {
        let stmt = parse(sql)?;
        Planner::new(&self.catalog).plan(&stmt)
    }

    /// [`prepare`](Self::prepare) through a cache keyed by SQL text. The
    /// hot path for repeated statements (the server's admission scheduler
    /// prices every arrival): a hit costs one map lookup instead of a
    /// parse + plan. DDL invalidates the whole cache — plans reference
    /// catalog state (table ids, index choices) that DDL changes.
    pub fn prepare_cached(&self, sql: &str) -> DbResult<Arc<PlanNode>> {
        if let Some(plan) = self.plan_cache.lock().get(sql) {
            self.engine_metrics.plan_cache_hits.inc();
            return Ok(plan.clone());
        }
        self.engine_metrics.plan_cache_misses.inc();
        let plan = Arc::new(self.prepare(sql)?);
        let mut cache = self.plan_cache.lock();
        if cache.len() >= PLAN_CACHE_CAP {
            cache.clear();
        }
        cache.insert(sql.to_string(), plan.clone());
        Ok(plan)
    }

    /// Drop every cached plan. Called after any successful DDL (including
    /// index builds and ANALYZE — both change what the planner would pick).
    pub fn invalidate_plan_cache(&self) {
        self.plan_cache.lock().clear();
    }

    /// [`prepare`](Self::prepare) with what-if [`PlannerOverrides`]
    /// (hypothetical and hidden indexes) applied during planning. The
    /// catalog is not touched, so this is safe under concurrent live
    /// traffic — the oracle planner uses it to price index actions. Plans
    /// produced against a hypothetical index reference an index that does
    /// not exist and must not be executed.
    pub fn prepare_with(&self, sql: &str, overrides: &PlannerOverrides) -> DbResult<PlanNode> {
        let stmt = parse(sql)?;
        Planner::with_overrides(&self.catalog, overrides).plan(&stmt)
    }

    /// Execute one statement in autocommit mode.
    pub fn execute(&self, sql: &str) -> DbResult<QueryResult> {
        self.execute_recorded(sql, None)
    }

    /// Execute one statement in autocommit mode with an OU recorder.
    pub fn execute_recorded(
        &self,
        sql: &str,
        recorder: Option<&dyn OuRecorder>,
    ) -> DbResult<QueryResult> {
        let stmt = parse(sql)?;
        let ddl_series = self.engine_metrics.stmt(StatementKind::Ddl);
        let ddl_span = self.metrics.span();
        match self.try_handle_ddl(&stmt) {
            Ok(Some(result)) => {
                self.invalidate_plan_cache();
                ddl_series.count.inc();
                ddl_span.observe(&ddl_series.latency_us);
                return Ok(result);
            }
            Ok(None) => {}
            // `try_handle_ddl` only fails inside a DDL arm, so the error
            // belongs to the `ddl` kind.
            Err(e) => {
                ddl_series.count.inc();
                ddl_series.errors.inc();
                return Err(e);
            }
        }
        match stmt {
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(DbError::Plan(
                "transaction control requires a session (Database::session)".into(),
            )),
            other => {
                self.tap_statement(&other, sql);
                let plan = Planner::new(&self.catalog).plan(&other)?;
                self.execute_plan_autocommit(&plan, recorder)
            }
        }
    }

    /// Execute a pre-planned statement in autocommit mode.
    pub fn execute_plan(
        &self,
        plan: &PlanNode,
        recorder: Option<&dyn OuRecorder>,
    ) -> DbResult<QueryResult> {
        self.execute_plan_autocommit(plan, recorder)
    }

    /// Autocommit execution with end-to-end latency accounting: the
    /// per-kind `mb2_stmt_latency_us` observation spans execution AND the
    /// commit, so commit-side stalls (WAL pressure, commit-lock
    /// contention, injected faults) are visible in the statement latency
    /// the autopilot's verify step judges by.
    fn execute_plan_autocommit(
        &self,
        plan: &PlanNode,
        recorder: Option<&dyn OuRecorder>,
    ) -> DbResult<QueryResult> {
        let series = self.engine_metrics.stmt(classify(plan));
        series.count.inc();
        let span = self.metrics.span();
        let mut txn = self.txns.begin();
        match self.execute_plan_inner(plan, &mut txn, recorder) {
            Ok(r) => match txn.commit() {
                Ok(_) => {
                    span.observe(&series.latency_us);
                    Ok(r)
                }
                Err(e) => {
                    series.errors.inc();
                    Err(e)
                }
            },
            Err(e) => {
                series.errors.inc();
                txn.abort();
                Err(e)
            }
        }
    }

    /// Execute a plan inside an existing transaction.
    pub fn execute_plan_in(
        &self,
        plan: &PlanNode,
        txn: &mut Transaction,
        recorder: Option<&dyn OuRecorder>,
    ) -> DbResult<QueryResult> {
        let series = self.engine_metrics.stmt(classify(plan));
        series.count.inc();
        let span = self.metrics.span();
        let result = self.execute_plan_inner(plan, txn, recorder);
        match &result {
            Ok(_) => {
                span.observe(&series.latency_us);
            }
            Err(_) => series.errors.inc(),
        }
        result
    }

    fn execute_plan_inner(
        &self,
        plan: &PlanNode,
        txn: &mut Transaction,
        recorder: Option<&dyn OuRecorder>,
    ) -> DbResult<QueryResult> {
        let knobs = self.knobs();
        let mut ctx = ExecContext {
            catalog: &self.catalog,
            txn,
            mode: knobs.execution_mode,
            recorder,
            hw: knobs.hw,
            jht_sleep_every: knobs.jht_sleep_every,
            index_obs: Some(self.index_obs.clone()),
            batch_size: knobs.batch_size.max(1),
            pool: self.exec_pool(),
            morsel_slots: DEFAULT_MORSEL_SLOTS,
            columnar: knobs.columnar_enabled,
        };
        // Index builds must be loggable before we spend the work building
        // them; a poisoned WAL rejects the DDL up front.
        if matches!(plan, mb2_sql::PlanNode::CreateIndex { .. }) {
            self.check_wal_writable()?;
        }
        let result = execute(plan, &mut ctx)?;
        // DDL-through-the-executor (index builds) is logged for recovery.
        if let mb2_sql::PlanNode::CreateIndex {
            table,
            index,
            columns,
            ..
        } = plan
        {
            if let Ok(entry) = self.catalog.get(table) {
                self.log_ddl(&LogRecord::CreateIndex {
                    table_id: entry.table.id.0,
                    name: index.clone(),
                    columns: columns.iter().map(|&c| c as u32).collect(),
                })?;
            }
            self.invalidate_plan_cache();
        }
        Ok(result)
    }

    /// Execute one statement in autocommit mode, streaming result batches
    /// to `on_batch` instead of materializing a [`QueryResult`] — result
    /// rows reach the caller as they are produced, and a callback error
    /// aborts the query (and its upstream scans) early. DDL runs through
    /// the normal path; DML runs to completion without invoking the
    /// callback. Returns the number of rows streamed (or rows affected).
    pub fn execute_streaming(
        &self,
        sql: &str,
        recorder: Option<&dyn OuRecorder>,
        on_batch: &mut dyn FnMut(Batch) -> DbResult<()>,
    ) -> DbResult<usize> {
        let stmt = parse(sql)?;
        match stmt {
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(DbError::Plan(
                "transaction control requires a session (Database::session)".into(),
            )),
            // DDL (including index builds, which must be WAL-logged) takes
            // the materializing path; it produces no result rows anyway.
            Statement::CreateTable { .. }
            | Statement::DropTable { .. }
            | Statement::DropIndex { .. }
            | Statement::Analyze { .. }
            | Statement::CreateIndex { .. } => self
                .execute_recorded(sql, recorder)
                .map(|r| r.rows_affected),
            other => {
                self.tap_statement(&other, sql);
                let plan = Planner::new(&self.catalog).plan(&other)?;
                let mut txn = self.txns.begin();
                let result = self.execute_plan_streaming_in(&plan, &mut txn, recorder, on_batch);
                match result {
                    Ok(n) => {
                        txn.commit()?;
                        Ok(n)
                    }
                    Err(e) => {
                        txn.abort();
                        Err(e)
                    }
                }
            }
        }
    }

    /// Streaming analog of [`Database::execute_plan_in`].
    pub fn execute_plan_streaming_in(
        &self,
        plan: &PlanNode,
        txn: &mut Transaction,
        recorder: Option<&dyn OuRecorder>,
        on_batch: &mut dyn FnMut(Batch) -> DbResult<()>,
    ) -> DbResult<usize> {
        let series = self.engine_metrics.stmt(classify(plan));
        series.count.inc();
        let span = self.metrics.span();
        let knobs = self.knobs();
        let mut ctx = ExecContext {
            catalog: &self.catalog,
            txn,
            mode: knobs.execution_mode,
            recorder,
            hw: knobs.hw,
            jht_sleep_every: knobs.jht_sleep_every,
            index_obs: Some(self.index_obs.clone()),
            batch_size: knobs.batch_size.max(1),
            pool: self.exec_pool(),
            morsel_slots: DEFAULT_MORSEL_SLOTS,
            columnar: knobs.columnar_enabled,
        };
        let result = execute_batched(plan, &mut ctx, on_batch);
        match &result {
            Ok(_) => {
                span.observe(&series.latency_us);
            }
            Err(_) => series.errors.inc(),
        }
        result
    }

    /// Execute a statement inside an existing transaction (used by sessions
    /// and by the concurrent runners).
    pub fn execute_in(
        &self,
        sql: &str,
        txn: &mut Transaction,
        recorder: Option<&dyn OuRecorder>,
    ) -> DbResult<QueryResult> {
        let stmt = parse(sql)?;
        if matches!(
            stmt,
            Statement::CreateTable { .. }
                | Statement::DropTable { .. }
                | Statement::DropIndex { .. }
                | Statement::Analyze { .. }
        ) {
            return Err(DbError::Plan("DDL is autocommit-only".into()));
        }
        self.tap_statement(&stmt, sql);
        let plan = Planner::new(&self.catalog).plan(&stmt)?;
        self.execute_plan_in(&plan, txn, recorder)
    }

    /// Handle statements that bypass the planner. Returns `Some` when the
    /// statement was DDL handled here.
    fn try_handle_ddl(&self, stmt: &Statement) -> DbResult<Option<QueryResult>> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                self.check_wal_writable()?;
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|c| {
                            let mut col = Column::new(c.name.clone(), c.ty);
                            if let Some(len) = c.varchar_len {
                                col = col.with_varchar_len(len);
                            }
                            col
                        })
                        .collect(),
                );
                let entry = self.catalog.create_table_with_shards(
                    name,
                    schema,
                    self.knobs().shard_count.max(1),
                )?;
                self.gc.register(entry.table.clone());
                self.compactor.register(entry.table.clone());
                entry.table.set_faults(self.faults.clone());
                self.log_ddl(&LogRecord::CreateTable {
                    table_id: entry.table.id.0,
                    name: entry.table.name.clone(),
                    columns: entry
                        .table
                        .schema()
                        .columns()
                        .iter()
                        .map(|c| LoggedColumn {
                            name: c.name.clone(),
                            type_tag: LogRecord::type_tag(c.ty),
                            varchar_len: c.varchar_len as u32,
                        })
                        .collect(),
                })?;
                Ok(Some(QueryResult::default()))
            }
            Statement::DropTable { name } => {
                self.check_wal_writable()?;
                let id = self.catalog.get(name)?.table.id.0;
                self.catalog.drop_table(name)?;
                self.log_ddl(&LogRecord::DropTable { table_id: id })?;
                Ok(Some(QueryResult::default()))
            }
            Statement::DropIndex { name, table } => {
                self.check_wal_writable()?;
                let entry = self.catalog.get(table)?;
                entry.drop_index(name)?;
                self.log_ddl(&LogRecord::DropIndex {
                    table_id: entry.table.id.0,
                    name: name.clone(),
                })?;
                Ok(Some(QueryResult::default()))
            }
            Statement::Analyze { table } => {
                let entry = self.catalog.get(table)?;
                entry.analyze(self.txns.now());
                Ok(Some(QueryResult::default()))
            }
            _ => Ok(None),
        }
    }

    /// Recompute statistics for every table.
    pub fn analyze_all(&self) {
        let now = self.txns.now();
        for name in self.catalog.table_names() {
            if let Ok(entry) = self.catalog.get(&name) {
                entry.analyze(now);
            }
        }
    }

    /// Stop background threads. Registered [`BackgroundTask`]s (the
    /// autopilot) are quiesced *first*, while the exec pool, GC, and WAL
    /// flusher are still alive — a task mid-action may be running a query
    /// on the pool or a WAL-logged index build, and tearing those down
    /// underneath it would turn a clean drain into an error.
    pub fn shutdown(&self) {
        let tasks: Vec<Weak<dyn BackgroundTask>> = self.background_tasks.lock().drain(..).collect();
        for task in tasks {
            if let Some(task) = task.upgrade() {
                task.quiesce();
            }
        }
        // Dropping the last `Arc` joins the pool's worker threads; queries
        // still holding a clone keep it alive until they finish.
        *self.pool.write() = None;
        self.compactor.shutdown();
        self.gc.shutdown();
        if let Some(wal) = &self.wal {
            wal.shutdown();
        }
    }
}

impl Drop for Database {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::Value;

    #[test]
    fn ddl_and_autocommit_dml() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT, b VARCHAR(8))").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
            .unwrap();
        let r = db.execute("SELECT * FROM t ORDER BY a").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[1][0], Value::Int(2));
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        assert!(db.execute("CREATE TABLE t (a INT)").is_err());
    }

    #[test]
    fn error_rolls_back_autocommit_txn() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        // Division by zero in the projection aborts the statement; the
        // update applied by... here SELECT doesn't modify, so instead test
        // a failing multi-row change: second row divides by zero.
        let err = db.execute("UPDATE t SET a = 1 / (a - 1)");
        assert!(err.is_err());
        let r = db.execute("SELECT a FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(1), "update must have rolled back");
    }

    #[test]
    fn prepared_plan_reuse() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        for i in 0..10 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        let plan = db.prepare("SELECT COUNT(*) FROM t WHERE a < 5").unwrap();
        let a = db.execute_plan(&plan, None).unwrap();
        let b = db.execute_plan(&plan, None).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.rows[0][0], Value::Int(5));
    }

    #[test]
    fn analyze_updates_stats() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t VALUES ({})", i % 5))
                .unwrap();
        }
        db.execute("ANALYZE t").unwrap();
        let stats = db.catalog().get("t").unwrap().stats();
        assert_eq!(stats.row_count, 50);
        assert_eq!(stats.columns[0].distinct, 5);
    }

    #[test]
    fn knob_changes_apply() {
        let db = Database::open();
        assert_eq!(db.knobs().execution_mode, ExecutionMode::Compiled);
        db.set_execution_mode(ExecutionMode::Interpret);
        assert_eq!(db.knobs().execution_mode, ExecutionMode::Interpret);
        db.set_jht_sleep_every(100);
        assert_eq!(db.knobs().jht_sleep_every, 100);
    }

    #[test]
    fn wal_accumulates_records() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let (_, records, ..) = db.wal().unwrap().stats().snapshot();
        assert!(records >= 3, "begin + insert + commit, got {records}");
    }

    #[test]
    fn transaction_control_requires_session() {
        let db = Database::open();
        assert!(db.execute("BEGIN").is_err());
    }

    #[test]
    fn parallelism_knob_rebuilds_pool_and_preserves_results() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
        for i in 0..300 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i % 7))
                .unwrap();
        }
        db.set_parallelism(1);
        assert!(db.exec_pool().is_none(), "parallelism 1 runs serial");
        let serial = db.execute("SELECT a, b FROM t WHERE b < 3").unwrap().rows;
        for workers in [2usize, 4] {
            db.set_parallelism(workers);
            let pool = db.exec_pool().expect("pool built for parallelism > 1");
            assert_eq!(pool.workers(), workers);
            assert_eq!(db.knobs().parallelism, workers);
            let got = db.execute("SELECT a, b FROM t WHERE b < 3").unwrap().rows;
            assert_eq!(got, serial, "parallel rows must be byte-identical");
        }
        // The pool publishes into the database's registry.
        let prom = db.metrics_prometheus();
        assert!(prom.contains("mb2_exec_pool_workers"));
        assert!(prom.contains("mb2_exec_pool_busy_workers"));
        db.set_parallelism(0); // clamps to 1
        assert_eq!(db.knobs().parallelism, 1);
        assert!(db.exec_pool().is_none());
    }

    #[test]
    fn columnar_knob_and_compaction_preserve_results() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
        let mut stmt = String::from("INSERT INTO t VALUES ");
        for i in 0..700 {
            if i > 0 {
                stmt.push(',');
            }
            stmt.push_str(&format!("({i}, {})", i % 7));
        }
        db.execute(&stmt).unwrap();
        let queries = [
            "SELECT a, b FROM t WHERE b < 3",
            "SELECT a FROM t WHERE a >= 100 AND a < 200 ORDER BY a",
            "SELECT COUNT(*) FROM t",
        ];
        let want: Vec<_> = queries
            .iter()
            .map(|q| db.execute(q).unwrap().rows)
            .collect();
        // Seal the cold unit, then flip the knob: results must not move.
        let report = db.compact_now();
        assert!(report.units_sealed >= 1, "{report:?}");
        db.set_columnar_enabled(true);
        assert!(db.knobs().columnar_enabled);
        for (q, want) in queries.iter().zip(&want) {
            assert_eq!(&db.execute(q).unwrap().rows, want, "{q}");
        }
        let blocks = db.block_status();
        assert!(blocks.iter().any(|(name, s)| name == "t" && s.blocks > 0));
        // Writers still revive sealed rows transparently.
        db.execute("UPDATE t SET b = 99 WHERE a = 5").unwrap();
        let r = db.execute("SELECT b FROM t WHERE a = 5").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(99));
    }

    #[test]
    fn streaming_matches_materialized_at_any_batch_size() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
        for i in 0..25 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i % 4))
                .unwrap();
        }
        let want = db
            .execute("SELECT a FROM t WHERE b = 1 ORDER BY a")
            .unwrap()
            .rows;
        assert!(!want.is_empty());
        for batch_size in [1usize, 3, 1024] {
            db.set_batch_size(batch_size);
            let mut got: Vec<Vec<Value>> = Vec::new();
            let mut batches = 0usize;
            let n = db
                .execute_streaming("SELECT a FROM t WHERE b = 1 ORDER BY a", None, &mut |b| {
                    batches += 1;
                    got.extend(b.rows.iter().map(|r| r.as_ref().clone()));
                    Ok(())
                })
                .unwrap();
            assert_eq!(n, want.len());
            assert_eq!(got, want);
            if batch_size == 1 {
                assert_eq!(batches, want.len(), "one row per batch at size 1");
            }
        }
        // DML and DDL run through the streaming entry point too, without
        // producing batches.
        let mut calls = 0usize;
        let n = db
            .execute_streaming("UPDATE t SET b = 9 WHERE a = 0", None, &mut |_| {
                calls += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(calls, 0);
    }
}
