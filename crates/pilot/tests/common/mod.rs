//! Shared fixtures for pilot integration tests: a seeded table and a
//! synthetic model set where index scans price 10x cheaper than
//! sequential scans, so index actions show clear predicted gains.

use std::sync::Arc;

use mb2_common::metrics::idx;
use mb2_common::{Metrics, OuKind};
use mb2_core::collect::{OuSample, TrainingRepo};
use mb2_core::training::{train_all, TrainingConfig};
use mb2_core::translate::OuTranslator;
use mb2_core::BehaviorModels;
use mb2_engine::Database;
use mb2_ml::Algorithm;

/// 3000-row table `big (pk, grp, v)` with an index on `pk` and fresh
/// statistics; `grp` has 100 distinct values and no index.
pub fn seed_big(db: &Database) {
    db.execute("CREATE TABLE big (pk INT, grp INT, v FLOAT)")
        .unwrap();
    for chunk in (0..3000i64).collect::<Vec<_>>().chunks(500) {
        let vals: Vec<String> = chunk
            .iter()
            .map(|i| format!("({i}, {}, 0.5)", i % 100))
            .collect();
        db.execute(&format!("INSERT INTO big VALUES {}", vals.join(", ")))
            .unwrap();
    }
    db.execute("CREATE INDEX big_pk ON big (pk)").unwrap();
    db.execute("ANALYZE big").unwrap();
}

/// Train linear per-OU models from synthetic costs (SeqScan 10x IdxScan,
/// IndexBuild n log n). Must run while `grp` is still unindexed so the
/// `grp = ?` training plan is a SeqScan and that OU-model gets fitted.
pub fn cost_models(db: &Database) -> Arc<BehaviorModels> {
    let mut repo = TrainingRepo::new();
    let translator = OuTranslator::default();
    let plans = [
        db.prepare("SELECT * FROM big WHERE pk = 1").unwrap(),
        db.prepare("SELECT * FROM big WHERE grp = 1").unwrap(),
        db.prepare("CREATE INDEX hyp ON big (grp) WITH (THREADS = 2)")
            .unwrap(),
        db.prepare("INSERT INTO big VALUES (9000, 1, 0.5)").unwrap(),
    ];
    for plan in &plans {
        for inst in translator.translate_plan(plan, &db.knobs()) {
            for k in 1..=15 {
                let mut f = inst.features.clone();
                f[0] = (k * 50) as f64;
                let cost = match inst.ou {
                    OuKind::SeqScan => 10.0 * f[0],
                    OuKind::IdxScan => 1.0 * f[0],
                    OuKind::IndexBuild => 5.0 * f[0] * f[0].log2(),
                    _ => 2.0 * f[0],
                };
                let mut labels = Metrics::ZERO;
                labels[idx::ELAPSED_US] = cost;
                labels[idx::CPU_US] = cost;
                repo.add(OuSample {
                    ou: inst.ou,
                    features: f,
                    labels,
                });
            }
        }
    }
    let (set, _) = train_all(
        &repo,
        &TrainingConfig {
            candidates: vec![Algorithm::Linear],
            ..TrainingConfig::default()
        },
    )
    .unwrap();
    Arc::new(BehaviorModels::new(set, None))
}
