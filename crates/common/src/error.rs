//! Error type shared across every crate in the workspace.

use std::fmt;

/// Unified error type for the DBMS substrate and the MB2 framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// A name (table, column, index) could not be resolved or already exists.
    Catalog(String),
    /// A plan or expression was semantically invalid (type mismatch, arity).
    Plan(String),
    /// Runtime execution failure (e.g. division by zero, overflow).
    Execution(String),
    /// Transaction conflict: a write-write conflict forced an abort.
    WriteConflict { table: String },
    /// The transaction was already committed or aborted.
    TxnClosed,
    /// WAL I/O failure.
    Wal(String),
    /// The WAL is poisoned: an unrecoverable flush failure latched the log
    /// into a rejecting state and the engine has degraded to read-only.
    WalUnavailable(String),
    /// Storage-level invariant violation (bad slot, missing version).
    Storage(String),
    /// ML training/inference failure (singular matrix, empty dataset, ...).
    Model(String),
    /// The server's admission control rejected the request (overload). The
    /// request was never started; the client may retry with backoff.
    ServerBusy(String),
    /// Network/front-end I/O failure (broken socket, protocol violation).
    Net(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Catalog(m) => write!(f, "catalog error: {m}"),
            DbError::Plan(m) => write!(f, "plan error: {m}"),
            DbError::Execution(m) => write!(f, "execution error: {m}"),
            DbError::WriteConflict { table } => {
                write!(f, "write-write conflict on table '{table}'")
            }
            DbError::TxnClosed => write!(f, "transaction is already closed"),
            DbError::Wal(m) => write!(f, "wal error: {m}"),
            DbError::WalUnavailable(m) => {
                write!(f, "wal unavailable (engine is read-only): {m}")
            }
            DbError::Storage(m) => write!(f, "storage error: {m}"),
            DbError::Model(m) => write!(f, "model error: {m}"),
            DbError::ServerBusy(m) => write!(f, "server busy: {m}"),
            DbError::Net(m) => write!(f, "network error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenience alias used throughout the workspace.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = DbError::WriteConflict {
            table: "customer".into(),
        };
        assert!(e.to_string().contains("customer"));
        let e = DbError::Parse("unexpected token".into());
        assert!(e.to_string().contains("unexpected token"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DbError::TxnClosed);
    }
}
