//! Report formatting and persistence for the experiment binaries.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A plain-text table builder (fixed-width columns).
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "table arity mismatch");
        self.rows.push(cells.to_vec());
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let rendered: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            let _ = writeln!(out, "| {} |", rendered.join(" | "));
        };
        line(&mut out, &self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Format a float compactly.
pub fn fmt(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Where experiment reports are persisted.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("MB2_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Print a report and persist it under `results/<name>.txt`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let path = results_dir().join(format!("{name}.txt"));
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("(saved to {})", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["a-much-longer-name".into(), "12345".into()]);
        let text = t.render();
        assert!(text.contains("## demo"));
        assert!(text.lines().count() >= 4);
        // All data lines have equal width.
        let widths: Vec<usize> = text.lines().skip(1).map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{text}");
    }

    #[test]
    fn fmt_scales() {
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(0.1234), "0.123");
    }
}
