//! Benchmark workloads (the OLTP-Bench analog, paper §8).
//!
//! Four benchmarks drive the evaluation, matching the paper:
//! * [`smallbank`] — 3 tables / 5 transactions (bank accounts).
//! * [`tatp`] — 4 tables / 7 transactions (cellphone registration).
//! * [`tpcc`] — 9 tables / 5 transactions (order fulfilment).
//! * [`tpch`] — 8 tables / analytical queries (business analytics).
//!
//! Scales are configurable and default to laptop-sized datasets; the
//! structure (tables, transaction mix, access patterns, skew) follows the
//! originals. TPC-H queries are simplified to this engine's SQL subset
//! while preserving each query's operator mix (see DESIGN.md).

pub mod smallbank;
pub mod tatp;
pub mod tpcc;
pub mod tpch;

use mb2_common::{DbResult, Prng};
use mb2_engine::Database;

/// A runnable benchmark workload.
pub trait Workload {
    fn name(&self) -> &'static str;

    /// Create tables and load data.
    fn load(&self, db: &Database) -> DbResult<()>;

    /// Names of this workload's transaction/query templates.
    fn template_names(&self) -> Vec<&'static str>;

    /// Produce one concrete SQL instance list for the given template
    /// (an OLTP transaction is a statement sequence; an OLAP query is a
    /// single statement).
    fn sample_transaction(&self, template: &str, rng: &mut Prng) -> Vec<String>;

    /// Execute one randomly chosen transaction end-to-end (with retry-free
    /// abort-on-conflict semantics); returns the template name.
    fn run_one(&self, db: &Database, rng: &mut Prng) -> DbResult<&'static str> {
        let names = self.template_names();
        let name = *rng.choose(&names);
        let statements = self.sample_transaction(name, rng);
        execute_transaction(db, &statements)?;
        Ok(name)
    }
}

/// Execute a statement sequence as one transaction; conflicts abort.
pub fn execute_transaction(db: &Database, statements: &[String]) -> DbResult<()> {
    let mut txn = db.begin();
    for sql in statements {
        if let Err(e) = db.execute_in(sql, &mut txn, None) {
            txn.abort();
            return Err(e);
        }
    }
    txn.commit()?;
    Ok(())
}

/// Bulk-insert helper shared by the loaders.
pub fn insert_batch(
    db: &Database,
    table: &str,
    rows: usize,
    mut gen: impl FnMut(usize) -> String,
) -> DbResult<()> {
    const BATCH: usize = 400;
    let mut i = 0;
    while i < rows {
        let end = (i + BATCH).min(rows);
        let values: Vec<String> = (i..end).map(&mut gen).collect();
        db.execute(&format!("INSERT INTO {table} VALUES {}", values.join(", ")))?;
        i = end;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_transaction_commits_all_or_nothing() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        // Failing second statement rolls back the first.
        let err = execute_transaction(
            &db,
            &[
                "INSERT INTO t VALUES (1)".into(),
                "INSERT INTO nope VALUES (1)".into(),
            ],
        );
        assert!(err.is_err());
        let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], mb2_common::Value::Int(0));
        execute_transaction(&db, &["INSERT INTO t VALUES (1)".into()]).unwrap();
        let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], mb2_common::Value::Int(1));
    }

    #[test]
    fn insert_batch_loads_requested_rows() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        insert_batch(&db, "t", 1234, |i| format!("({i})")).unwrap();
        let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], mb2_common::Value::Int(1234));
    }
}
