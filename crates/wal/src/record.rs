//! Logical log records and their binary encoding.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use mb2_common::types::Tuple;
use mb2_common::{Crc32, DbError, DbResult, Value};

/// Size of the on-disk record header: `[u32 length][u32 crc]`.
///
/// This is format v2. v1 had no checksum (`[u32 length][body]`); v2 adds a
/// CRC-32 (IEEE) computed over the little-endian length bytes followed by the
/// body, so recovery can distinguish a torn tail from mid-file corruption.
pub const RECORD_HEADER_LEN: usize = 8;

/// Largest record body the log will accept (enforced at append time). The
/// reader uses the same bound as a plausibility check: an on-disk length
/// claim above it can only be a damaged length field, so it is classified
/// as corruption rather than a tolerated torn tail.
pub const MAX_RECORD_LEN: usize = 1 << 20;

/// A column description inside a [`LogRecord::CreateTable`] record.
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedColumn {
    pub name: String,
    /// Type tag as produced by `type_tag` (stable across versions).
    pub type_tag: u8,
    pub varchar_len: u32,
}

/// A logical WAL record. DML records are redo-only: `Insert` carries the
/// slot the engine assigned so recovery can remap later `Update`/`Delete`
/// references.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    Begin {
        txn_id: u64,
    },
    Insert {
        txn_id: u64,
        table_id: u32,
        slot: u64,
        tuple: Tuple,
    },
    Update {
        txn_id: u64,
        table_id: u32,
        slot: u64,
        tuple: Tuple,
    },
    Delete {
        txn_id: u64,
        table_id: u32,
        slot: u64,
    },
    Commit {
        txn_id: u64,
    },
    Abort {
        txn_id: u64,
    },
    /// DDL: table creation (autocommit; applied immediately on replay).
    CreateTable {
        table_id: u32,
        name: String,
        columns: Vec<LoggedColumn>,
    },
    /// DDL: index creation over the named table's column positions.
    CreateIndex {
        table_id: u32,
        name: String,
        columns: Vec<u32>,
    },
    /// DDL: table removal.
    DropTable {
        table_id: u32,
    },
    /// DDL: index removal.
    DropIndex {
        table_id: u32,
        name: String,
    },
}

const TAG_BEGIN: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_UPDATE: u8 = 3;
const TAG_DELETE: u8 = 4;
const TAG_COMMIT: u8 = 5;
const TAG_ABORT: u8 = 6;
const TAG_CREATE_TABLE: u8 = 7;
const TAG_CREATE_INDEX: u8 = 8;
const TAG_DROP_TABLE: u8 = 9;
const TAG_DROP_INDEX: u8 = 10;

const VTAG_NULL: u8 = 0;
const VTAG_INT: u8 = 1;
const VTAG_FLOAT: u8 = 2;
const VTAG_VARCHAR: u8 = 3;
const VTAG_BOOL: u8 = 4;
const VTAG_TS: u8 = 5;

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(VTAG_NULL),
        Value::Int(x) => {
            buf.put_u8(VTAG_INT);
            buf.put_i64_le(*x);
        }
        Value::Float(x) => {
            buf.put_u8(VTAG_FLOAT);
            buf.put_f64_le(*x);
        }
        Value::Varchar(s) => {
            buf.put_u8(VTAG_VARCHAR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            buf.put_u8(VTAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Timestamp(x) => {
            buf.put_u8(VTAG_TS);
            buf.put_i64_le(*x);
        }
    }
}

fn get_value(buf: &mut Bytes) -> DbResult<Value> {
    if buf.remaining() < 1 {
        return Err(DbError::Wal("truncated value".into()));
    }
    let tag = buf.get_u8();
    Ok(match tag {
        VTAG_NULL => Value::Null,
        VTAG_INT => Value::Int(need(buf, 8)?.get_i64_le()),
        VTAG_FLOAT => Value::Float(need(buf, 8)?.get_f64_le()),
        VTAG_VARCHAR => {
            let len = need(buf, 4)?.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(DbError::Wal("truncated varchar".into()));
            }
            let bytes = buf.split_to(len);
            Value::Varchar(
                String::from_utf8(bytes.to_vec())
                    .map_err(|e| DbError::Wal(format!("invalid utf8 in log: {e}")))?,
            )
        }
        VTAG_BOOL => Value::Bool(need(buf, 1)?.get_u8() != 0),
        VTAG_TS => Value::Timestamp(need(buf, 8)?.get_i64_le()),
        other => return Err(DbError::Wal(format!("unknown value tag {other}"))),
    })
}

fn need(buf: &mut Bytes, n: usize) -> DbResult<&mut Bytes> {
    if buf.remaining() < n {
        Err(DbError::Wal("truncated record".into()))
    } else {
        Ok(buf)
    }
}

fn put_tuple(buf: &mut BytesMut, tuple: &Tuple) {
    buf.put_u16_le(tuple.len() as u16);
    for v in tuple {
        put_value(buf, v);
    }
}

fn get_tuple(buf: &mut Bytes) -> DbResult<Tuple> {
    let n = need(buf, 2)?.get_u16_le() as usize;
    (0..n).map(|_| get_value(buf)).collect()
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> DbResult<String> {
    let len = need(buf, 4)?.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DbError::Wal("truncated string".into()));
    }
    let bytes = buf.split_to(len);
    String::from_utf8(bytes.to_vec()).map_err(|e| DbError::Wal(format!("invalid utf8: {e}")))
}

impl LogRecord {
    /// Serialize into `out`, returning the encoded length in bytes. The
    /// format (v2) is `[u32 length][u32 crc][u8 tag][payload]`, where the CRC
    /// covers the length bytes and the body (`tag` + `payload`).
    pub fn serialize_into(&self, out: &mut BytesMut) -> usize {
        let start = out.len();
        out.put_u32_le(0); // length placeholder
        out.put_u32_le(0); // crc placeholder
        match self {
            LogRecord::Begin { txn_id } => {
                out.put_u8(TAG_BEGIN);
                out.put_u64_le(*txn_id);
            }
            LogRecord::Insert {
                txn_id,
                table_id,
                slot,
                tuple,
            } => {
                out.put_u8(TAG_INSERT);
                out.put_u64_le(*txn_id);
                out.put_u32_le(*table_id);
                out.put_u64_le(*slot);
                put_tuple(out, tuple);
            }
            LogRecord::Update {
                txn_id,
                table_id,
                slot,
                tuple,
            } => {
                out.put_u8(TAG_UPDATE);
                out.put_u64_le(*txn_id);
                out.put_u32_le(*table_id);
                out.put_u64_le(*slot);
                put_tuple(out, tuple);
            }
            LogRecord::Delete {
                txn_id,
                table_id,
                slot,
            } => {
                out.put_u8(TAG_DELETE);
                out.put_u64_le(*txn_id);
                out.put_u32_le(*table_id);
                out.put_u64_le(*slot);
            }
            LogRecord::Commit { txn_id } => {
                out.put_u8(TAG_COMMIT);
                out.put_u64_le(*txn_id);
            }
            LogRecord::Abort { txn_id } => {
                out.put_u8(TAG_ABORT);
                out.put_u64_le(*txn_id);
            }
            LogRecord::CreateTable {
                table_id,
                name,
                columns,
            } => {
                out.put_u8(TAG_CREATE_TABLE);
                out.put_u32_le(*table_id);
                put_string(out, name);
                out.put_u16_le(columns.len() as u16);
                for c in columns {
                    put_string(out, &c.name);
                    out.put_u8(c.type_tag);
                    out.put_u32_le(c.varchar_len);
                }
            }
            LogRecord::CreateIndex {
                table_id,
                name,
                columns,
            } => {
                out.put_u8(TAG_CREATE_INDEX);
                out.put_u32_le(*table_id);
                put_string(out, name);
                out.put_u16_le(columns.len() as u16);
                for c in columns {
                    out.put_u32_le(*c);
                }
            }
            LogRecord::DropTable { table_id } => {
                out.put_u8(TAG_DROP_TABLE);
                out.put_u32_le(*table_id);
            }
            LogRecord::DropIndex { table_id, name } => {
                out.put_u8(TAG_DROP_INDEX);
                out.put_u32_le(*table_id);
                put_string(out, name);
            }
        }
        let len = out.len() - start;
        let body_len = (len - RECORD_HEADER_LEN) as u32;
        out[start..start + 4].copy_from_slice(&body_len.to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&body_len.to_le_bytes());
        crc.update(&out[start + RECORD_HEADER_LEN..]);
        out[start + 4..start + 8].copy_from_slice(&crc.finalize().to_le_bytes());
        len
    }

    /// Deserialize one record from the front of `buf` (which must start at a
    /// record header). Verifies the CRC before decoding.
    pub fn deserialize(buf: &mut Bytes) -> DbResult<LogRecord> {
        let body_len = need(buf, 4)?.get_u32_le() as usize;
        let stored_crc = need(buf, 4)?.get_u32_le();
        if buf.remaining() < body_len {
            return Err(DbError::Wal("truncated record body".into()));
        }
        let mut body = buf.split_to(body_len);
        let mut crc = Crc32::new();
        crc.update(&(body_len as u32).to_le_bytes());
        crc.update(&body);
        let actual = crc.finalize();
        if actual != stored_crc {
            return Err(DbError::Wal(format!(
                "record checksum mismatch (stored {stored_crc:#010x}, computed {actual:#010x})"
            )));
        }
        let rec = Self::decode_body(&mut body)?;
        if body.remaining() > 0 {
            return Err(DbError::Wal(format!(
                "{} trailing bytes after record body",
                body.remaining()
            )));
        }
        Ok(rec)
    }

    /// Decode a record body (`tag` + `payload`) whose framing and CRC have
    /// already been verified.
    fn decode_body(body: &mut Bytes) -> DbResult<LogRecord> {
        let tag = need(body, 1)?.get_u8();
        let rec = match tag {
            TAG_BEGIN => LogRecord::Begin {
                txn_id: need(body, 8)?.get_u64_le(),
            },
            TAG_INSERT => LogRecord::Insert {
                txn_id: need(body, 8)?.get_u64_le(),
                table_id: need(body, 4)?.get_u32_le(),
                slot: need(body, 8)?.get_u64_le(),
                tuple: get_tuple(body)?,
            },
            TAG_UPDATE => LogRecord::Update {
                txn_id: need(body, 8)?.get_u64_le(),
                table_id: need(body, 4)?.get_u32_le(),
                slot: need(body, 8)?.get_u64_le(),
                tuple: get_tuple(body)?,
            },
            TAG_DELETE => LogRecord::Delete {
                txn_id: need(body, 8)?.get_u64_le(),
                table_id: need(body, 4)?.get_u32_le(),
                slot: need(body, 8)?.get_u64_le(),
            },
            TAG_COMMIT => LogRecord::Commit {
                txn_id: need(body, 8)?.get_u64_le(),
            },
            TAG_ABORT => LogRecord::Abort {
                txn_id: need(body, 8)?.get_u64_le(),
            },
            TAG_CREATE_TABLE => {
                let table_id = need(body, 4)?.get_u32_le();
                let name = get_string(body)?;
                let n = need(body, 2)?.get_u16_le() as usize;
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    columns.push(LoggedColumn {
                        name: get_string(body)?,
                        type_tag: need(body, 1)?.get_u8(),
                        varchar_len: need(body, 4)?.get_u32_le(),
                    });
                }
                LogRecord::CreateTable {
                    table_id,
                    name,
                    columns,
                }
            }
            TAG_CREATE_INDEX => {
                let table_id = need(body, 4)?.get_u32_le();
                let name = get_string(body)?;
                let n = need(body, 2)?.get_u16_le() as usize;
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    columns.push(need(body, 4)?.get_u32_le());
                }
                LogRecord::CreateIndex {
                    table_id,
                    name,
                    columns,
                }
            }
            TAG_DROP_TABLE => LogRecord::DropTable {
                table_id: need(body, 4)?.get_u32_le(),
            },
            TAG_DROP_INDEX => LogRecord::DropIndex {
                table_id: need(body, 4)?.get_u32_le(),
                name: get_string(body)?,
            },
            other => return Err(DbError::Wal(format!("unknown record tag {other}"))),
        };
        Ok(rec)
    }

    pub fn txn_id(&self) -> u64 {
        match self {
            LogRecord::Begin { txn_id }
            | LogRecord::Insert { txn_id, .. }
            | LogRecord::Update { txn_id, .. }
            | LogRecord::Delete { txn_id, .. }
            | LogRecord::Commit { txn_id }
            | LogRecord::Abort { txn_id } => *txn_id,
            LogRecord::CreateTable { .. }
            | LogRecord::CreateIndex { .. }
            | LogRecord::DropTable { .. }
            | LogRecord::DropIndex { .. } => 0,
        }
    }

    /// Type tag used by [`LoggedColumn`] (stable encoding).
    pub fn type_tag(ty: mb2_common::DataType) -> u8 {
        match ty {
            mb2_common::DataType::Int => 0,
            mb2_common::DataType::Float => 1,
            mb2_common::DataType::Varchar => 2,
            mb2_common::DataType::Bool => 3,
            mb2_common::DataType::Timestamp => 4,
        }
    }

    /// Inverse of [`LogRecord::type_tag`].
    pub fn tag_type(tag: u8) -> DbResult<mb2_common::DataType> {
        Ok(match tag {
            0 => mb2_common::DataType::Int,
            1 => mb2_common::DataType::Float,
            2 => mb2_common::DataType::Varchar,
            3 => mb2_common::DataType::Bool,
            4 => mb2_common::DataType::Timestamp,
            other => return Err(DbError::Wal(format!("unknown type tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(rec: LogRecord) {
        let mut buf = BytesMut::new();
        let len = rec.serialize_into(&mut buf);
        assert_eq!(len, buf.len());
        let mut bytes = buf.freeze();
        let back = LogRecord::deserialize(&mut bytes).unwrap();
        assert_eq!(back, rec);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(LogRecord::Begin { txn_id: 1 });
        round_trip(LogRecord::Insert {
            txn_id: 2,
            table_id: 3,
            slot: 41,
            tuple: vec![
                Value::Int(42),
                Value::Float(2.5),
                Value::Varchar("héllo".into()),
                Value::Bool(true),
                Value::Timestamp(123456),
                Value::Null,
            ],
        });
        round_trip(LogRecord::Update {
            txn_id: 4,
            table_id: 5,
            slot: 77,
            tuple: vec![Value::Int(-1)],
        });
        round_trip(LogRecord::Delete {
            txn_id: 6,
            table_id: 7,
            slot: 88,
        });
        round_trip(LogRecord::Commit { txn_id: 8 });
        round_trip(LogRecord::Abort { txn_id: 9 });
    }

    #[test]
    fn multiple_records_in_one_buffer() {
        let mut buf = BytesMut::new();
        let recs = vec![
            LogRecord::Begin { txn_id: 1 },
            LogRecord::Insert {
                txn_id: 1,
                table_id: 2,
                slot: 0,
                tuple: vec![Value::Int(5)],
            },
            LogRecord::Commit { txn_id: 1 },
        ];
        for r in &recs {
            r.serialize_into(&mut buf);
        }
        let mut bytes = buf.freeze();
        for r in &recs {
            assert_eq!(&LogRecord::deserialize(&mut bytes).unwrap(), r);
        }
    }

    #[test]
    fn truncated_input_is_error() {
        let mut buf = BytesMut::new();
        LogRecord::Commit { txn_id: 1 }.serialize_into(&mut buf);
        let mut short = buf.freeze().slice(0..6);
        assert!(LogRecord::deserialize(&mut short).is_err());
    }

    #[test]
    fn bit_flip_fails_checksum() {
        let mut buf = BytesMut::new();
        let len = LogRecord::Commit { txn_id: 1 }.serialize_into(&mut buf);
        // Flip one bit in every position (header and body) in turn: each
        // corruption must be detected.
        for i in 0..len {
            let mut corrupt = buf.to_vec();
            corrupt[i] ^= 0x01;
            let mut bytes = Bytes::from(corrupt);
            let res = LogRecord::deserialize(&mut bytes);
            // A flipped length byte may instead report truncation; either
            // way the corrupt record must not decode successfully.
            assert!(res.is_err(), "bit flip at byte {i} went undetected");
        }
    }

    #[test]
    fn header_includes_crc() {
        let mut buf = BytesMut::new();
        let len = LogRecord::Begin { txn_id: 7 }.serialize_into(&mut buf);
        assert!(len >= RECORD_HEADER_LEN);
        let body_len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        assert_eq!(len, RECORD_HEADER_LEN + body_len);
        let stored = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        let mut crc = Crc32::new();
        crc.update(&buf[0..4]);
        crc.update(&buf[RECORD_HEADER_LEN..]);
        assert_eq!(stored, crc.finalize());
    }

    #[test]
    fn txn_id_accessor() {
        assert_eq!(LogRecord::Begin { txn_id: 9 }.txn_id(), 9);
        assert_eq!(
            LogRecord::Delete {
                txn_id: 3,
                table_id: 1,
                slot: 0
            }
            .txn_id(),
            3
        );
    }
}
