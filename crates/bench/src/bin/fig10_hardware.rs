//! Regenerates one paper result; see `mb2_bench::experiments::fig10_hardware`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::fig10_hardware::run(scale);
    mb2_bench::report::emit("fig10_hardware", &report);
}
