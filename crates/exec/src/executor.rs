//! Plan execution: dispatch, node numbering, and result assembly.

use mb2_common::types::Tuple;
use mb2_common::{DbError, DbResult};
use mb2_sql::PlanNode;

use crate::context::ExecContext;
use crate::ops;

/// Result of executing one plan.
#[derive(Debug, Default)]
pub struct QueryResult {
    /// Rows returned to the client (SELECT).
    pub rows: Vec<Tuple>,
    /// Rows written (INSERT/UPDATE/DELETE), or index entries built.
    pub rows_affected: usize,
}

/// Number of nodes in the subtree rooted at `node` (including itself).
/// Node ids are assigned in pre-order: a node's first child is `id + 1`, its
/// second child is `id + 1 + subtree_size(first_child)`. The OU translator in
/// `mb2-core` uses the identical numbering so plan-derived features join
/// with execution-measured labels.
pub fn subtree_size(node: &PlanNode) -> u32 {
    1 + node.children().iter().map(|c| subtree_size(c)).sum::<u32>()
}

/// Execute a plan to completion inside the context's transaction.
pub fn execute(plan: &PlanNode, ctx: &mut ExecContext<'_>) -> DbResult<QueryResult> {
    match plan {
        PlanNode::Insert { table, rows, .. } => {
            let n = ops::insert(table, rows, ctx, 0)?;
            Ok(QueryResult {
                rows: Vec::new(),
                rows_affected: n,
            })
        }
        PlanNode::Update {
            table,
            scan,
            assignments,
            ..
        } => {
            let n = ops::update(table, scan, assignments, ctx, 0)?;
            Ok(QueryResult {
                rows: Vec::new(),
                rows_affected: n,
            })
        }
        PlanNode::Delete { table, scan, .. } => {
            let n = ops::delete(table, scan, ctx, 0)?;
            Ok(QueryResult {
                rows: Vec::new(),
                rows_affected: n,
            })
        }
        PlanNode::CreateIndex {
            table,
            index,
            columns,
            threads,
            ..
        } => {
            let n = ops::create_index(table, index, columns, *threads, ctx, 0)?;
            Ok(QueryResult {
                rows: Vec::new(),
                rows_affected: n,
            })
        }
        _ => {
            let rows = run(plan, 0, ctx)?;
            Ok(QueryResult {
                rows_affected: rows.len(),
                rows,
            })
        }
    }
}

/// Run a row-producing subtree.
pub(crate) fn run(node: &PlanNode, id: u32, ctx: &mut ExecContext<'_>) -> DbResult<Vec<Tuple>> {
    match node {
        PlanNode::SeqScan { table, filter, .. } => {
            let (rows, _) = ops::seq_scan(table, filter.as_ref(), ctx, id, false)?;
            Ok(rows)
        }
        PlanNode::IndexScan {
            table,
            index,
            range,
            filter,
            ..
        } => {
            let (rows, _) = ops::index_scan(table, index, range, filter.as_ref(), ctx, id, false)?;
            Ok(rows)
        }
        PlanNode::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            filter,
            ..
        } => {
            let build_id = id + 1;
            let probe_id = id + 1 + subtree_size(build);
            let build_rows = run(build, build_id, ctx)?;
            let probe_rows = run(probe, probe_id, ctx)?;
            ops::hash_join(
                build_rows,
                probe_rows,
                build_keys,
                probe_keys,
                filter.as_ref(),
                ctx,
                id,
            )
        }
        PlanNode::NestedLoopJoin {
            outer,
            inner,
            filter,
            ..
        } => {
            let outer_id = id + 1;
            let inner_id = id + 1 + subtree_size(outer);
            let outer_rows = run(outer, outer_id, ctx)?;
            let inner_rows = run(inner, inner_id, ctx)?;
            ops::nested_loop_join(outer_rows, inner_rows, filter.as_ref(), ctx, id)
        }
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let rows = run(input, id + 1, ctx)?;
            ops::aggregate(rows, group_by, aggs, ctx, id)
        }
        PlanNode::Filter {
            input, predicate, ..
        } => {
            let rows = run(input, id + 1, ctx)?;
            ops::standalone_filter(rows, predicate, ctx, id)
        }
        PlanNode::Sort { input, keys, .. } => {
            let rows = run(input, id + 1, ctx)?;
            ops::sort(rows, keys, ctx, id)
        }
        PlanNode::Project { input, exprs, .. } => {
            let rows = run(input, id + 1, ctx)?;
            ops::project(rows, exprs, ctx, id)
        }
        PlanNode::Limit { input, n, .. } => {
            let mut rows = run(input, id + 1, ctx)?;
            rows.truncate(*n);
            Ok(rows)
        }
        PlanNode::Output { input, sink, .. } => {
            let rows = run(input, id + 1, ctx)?;
            ops::output(rows, *sink, ctx, id)
        }
        other => Err(DbError::Execution(format!(
            "node {} cannot appear in a row-producing position",
            other.label()
        ))),
    }
}
