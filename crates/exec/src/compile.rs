//! Expression "compilation": lowering [`BoundExpr`] trees to nested native
//! closures ahead of the per-tuple loop — the JIT-execution-mode analog.
//!
//! Interpreted mode re-walks the expression tree (with its per-node dispatch
//! and temporary `Value`s) for every tuple; compiled mode resolves dispatch
//! once and specializes the common column-vs-literal comparison patterns, so
//! long scans run measurably faster at the cost of a per-query lowering
//! step. This cost/benefit trade-off is exactly what the execution-mode knob
//! feature lets the OU-models learn.

use std::cmp::Ordering;

use mb2_common::{DbError, DbResult, Value};
use mb2_sql::{BinOp, BoundExpr, UnOp};

/// A compiled value expression.
pub type CompiledExpr = Box<dyn Fn(&[Value]) -> DbResult<Value> + Send + Sync>;
/// A compiled predicate.
pub type CompiledPred = Box<dyn Fn(&[Value]) -> DbResult<bool> + Send + Sync>;

/// Lower an expression to a closure tree.
pub fn compile_expr(expr: &BoundExpr) -> CompiledExpr {
    match expr {
        BoundExpr::Col(i) => {
            let i = *i;
            Box::new(move |t| {
                t.get(i)
                    .cloned()
                    .ok_or_else(|| DbError::Execution(format!("column {i} out of range")))
            })
        }
        BoundExpr::Lit(v) => {
            let v = v.clone();
            Box::new(move |_| Ok(v.clone()))
        }
        BoundExpr::Unary { op, operand } => {
            let inner = compile_expr(operand);
            let op = *op;
            Box::new(move |t| {
                let v = inner(t)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                match op {
                    UnOp::Neg => match v {
                        Value::Int(x) => Ok(Value::Int(-x)),
                        Value::Float(x) => Ok(Value::Float(-x)),
                        other => Err(DbError::Execution(format!("cannot negate {other}"))),
                    },
                    UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
                }
            })
        }
        BoundExpr::Binary { op, left, right } => {
            // Specialized fast path: Col <cmp> Lit — the dominant filter
            // pattern — avoids closure-tree recursion entirely.
            if op.is_comparison() {
                if let (BoundExpr::Col(i), BoundExpr::Lit(v)) = (&**left, &**right) {
                    let i = *i;
                    let v = v.clone();
                    let op = *op;
                    return Box::new(move |t| {
                        let l = &t[i];
                        if l.is_null() || v.is_null() {
                            return Ok(Value::Bool(false));
                        }
                        Ok(Value::Bool(cmp_matches(op, l.cmp_total(&v))))
                    });
                }
            }
            let op = *op;
            let l = compile_expr(left);
            let r = compile_expr(right);
            Box::new(move |t| {
                // Delegate the general case to the same semantics as the
                // interpreter by rebuilding a tiny two-literal node.
                let lv = match op {
                    BinOp::And => {
                        let lv = l(t)?;
                        if !lv.is_null() && !lv.as_bool()? {
                            return Ok(Value::Bool(false));
                        }
                        let rv = r(t)?;
                        return Ok(Value::Bool(
                            !lv.is_null() && lv.as_bool()? && !rv.is_null() && rv.as_bool()?,
                        ));
                    }
                    BinOp::Or => {
                        let lv = l(t)?;
                        if !lv.is_null() && lv.as_bool()? {
                            return Ok(Value::Bool(true));
                        }
                        let rv = r(t)?;
                        return Ok(Value::Bool(!rv.is_null() && rv.as_bool()?));
                    }
                    _ => l(t)?,
                };
                let rv = r(t)?;
                apply_binary(op, lv, rv)
            })
        }
    }
}

fn cmp_matches(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::NotEq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::LtEq => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("not a comparison"),
    }
}

fn apply_binary(op: BinOp, l: Value, r: Value) -> DbResult<Value> {
    if l.is_null() || r.is_null() {
        return Ok(if op.is_comparison() {
            Value::Bool(false)
        } else {
            Value::Null
        });
    }
    if op.is_comparison() {
        return Ok(Value::Bool(cmp_matches(op, l.cmp_total(&r))));
    }
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => {
            let (a, b) = (*a, *b);
            Ok(match op {
                BinOp::Add => Value::Int(a.wrapping_add(b)),
                BinOp::Sub => Value::Int(a.wrapping_sub(b)),
                BinOp::Mul => Value::Int(a.wrapping_mul(b)),
                BinOp::Div => {
                    if b == 0 {
                        return Err(DbError::Execution("division by zero".into()));
                    }
                    Value::Int(a / b)
                }
                BinOp::Mod => {
                    if b == 0 {
                        return Err(DbError::Execution("modulo by zero".into()));
                    }
                    Value::Int(a % b)
                }
                _ => unreachable!(),
            })
        }
        _ => {
            let a = l.as_f64()?;
            let b = r.as_f64()?;
            Ok(match op {
                BinOp::Add => Value::Float(a + b),
                BinOp::Sub => Value::Float(a - b),
                BinOp::Mul => Value::Float(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(DbError::Execution("division by zero".into()));
                    }
                    Value::Float(a / b)
                }
                BinOp::Mod => Value::Float(a % b),
                _ => unreachable!(),
            })
        }
    }
}

/// Lower a predicate (NULL ⇒ false).
pub fn compile_pred(expr: &BoundExpr) -> CompiledPred {
    let inner = compile_expr(expr);
    Box::new(move |t| match inner(t)? {
        Value::Null => Ok(false),
        v => v.as_bool(),
    })
}

/// Evaluator abstraction the operators use: one variant per execution mode.
pub enum Evaluator {
    Interpreted(BoundExpr),
    Compiled(CompiledExpr),
}

impl Evaluator {
    pub fn new(expr: &BoundExpr, compiled: bool) -> Evaluator {
        if compiled {
            Evaluator::Compiled(compile_expr(expr))
        } else {
            Evaluator::Interpreted(expr.clone())
        }
    }

    pub fn eval(&self, tuple: &[Value]) -> DbResult<Value> {
        match self {
            Evaluator::Interpreted(e) => e.eval(tuple),
            Evaluator::Compiled(f) => f(tuple),
        }
    }

    pub fn eval_bool(&self, tuple: &[Value]) -> DbResult<bool> {
        match self.eval(tuple)? {
            Value::Null => Ok(false),
            v => v.as_bool(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::Prng;

    fn bin(op: BinOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// Compiled and interpreted evaluation must agree on random expressions.
    #[test]
    fn compiled_matches_interpreter() {
        let mut rng = Prng::new(77);
        for _ in 0..200 {
            let expr = random_expr(&mut rng, 3);
            let tuple = vec![
                Value::Int(rng.range_i64(-5, 6)),
                Value::Float(rng.next_f64() * 10.0 - 5.0),
                Value::Int(rng.range_i64(0, 3)),
            ];
            let compiled = compile_expr(&expr);
            let a = expr.eval(&tuple);
            let b = compiled(&tuple);
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "expr {expr:?} tuple {tuple:?}"),
                (Err(_), Err(_)) => {}
                (x, y) => panic!("divergence: {x:?} vs {y:?} for {expr:?}"),
            }
        }
    }

    fn random_expr(rng: &mut Prng, depth: usize) -> BoundExpr {
        if depth == 0 || rng.chance(0.3) {
            return if rng.chance(0.5) {
                BoundExpr::Col(rng.range_usize(0, 3))
            } else {
                BoundExpr::Lit(Value::Int(rng.range_i64(-3, 4)))
            };
        }
        let ops = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Eq,
            BinOp::Lt,
            BinOp::GtEq,
            BinOp::And,
            BinOp::Or,
        ];
        bin(
            *rng.choose(&ops),
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1),
        )
    }

    #[test]
    fn fast_path_comparison() {
        let expr = bin(BinOp::Gt, BoundExpr::Col(0), BoundExpr::Lit(Value::Int(5)));
        let pred = compile_pred(&expr);
        assert!(pred(&[Value::Int(6)]).unwrap());
        assert!(!pred(&[Value::Int(5)]).unwrap());
        assert!(!pred(&[Value::Null]).unwrap());
    }

    #[test]
    fn evaluator_modes_agree() {
        let expr = bin(
            BinOp::Add,
            BoundExpr::Col(0),
            bin(BinOp::Mul, BoundExpr::Col(1), BoundExpr::Lit(Value::Int(3))),
        );
        let interp = Evaluator::new(&expr, false);
        let comp = Evaluator::new(&expr, true);
        let t = vec![Value::Int(1), Value::Int(2)];
        assert_eq!(interp.eval(&t).unwrap(), comp.eval(&t).unwrap());
    }
}
