//! Property tests for the log-linear histogram core.
//!
//! These pin down the three invariants everything downstream leans on:
//! merge is associative (so per-shard / per-epoch histograms can be folded
//! in any grouping), quantiles are monotone in `q`, and every recorded
//! value lands in a bucket whose bounds contain it within the advertised
//! `2^-P` relative error.

use mb2_obs::{Histogram, HistogramSnapshot, HISTOGRAM_PRECISION_BITS};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Values spanning the full log range, not just small ints.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..1024, any::<u64>().prop_map(|v| v >> 32), any::<u64>(),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), and both equal recording everything
    /// into one histogram.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(value_strategy(), 0..40),
        b in proptest::collection::vec(value_strategy(), 0..40),
        c in proptest::collection::vec(value_strategy(), 0..40),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let left = sa.merged(&sb).merged(&sc);
        let right = sa.merged(&sb.merged(&sc));
        prop_assert_eq!(&left, &right);

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &snapshot_of(&all));
    }

    /// Merge is commutative: a ⊕ b == b ⊕ a.
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(value_strategy(), 0..60),
        b in proptest::collection::vec(value_strategy(), 0..60),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        prop_assert_eq!(sa.merged(&sb), sb.merged(&sa));
    }

    /// quantile(q) is non-decreasing in q, and pinned to [min-bucket, max].
    #[test]
    fn quantiles_are_monotone(
        values in proptest::collection::vec(value_strategy(), 1..80),
        qs in proptest::collection::vec((0u64..1001).prop_map(|v| v as f64 / 1000.0), 2..10),
    ) {
        let snap = snapshot_of(&values);
        let mut sorted_qs = qs.clone();
        sorted_qs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let mut prev = 0u64;
        for &q in &sorted_qs {
            let v = snap.quantile(q);
            prop_assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
            prev = v;
        }
        let max = *values.iter().max().unwrap();
        prop_assert_eq!(snap.quantile(1.0), max);
        prop_assert!(snap.quantile(0.0) <= max);
    }

    /// Every recorded value is inside the bounds of the bucket it counts
    /// toward, and the bucket's relative width respects the 2^-P error
    /// budget.
    #[test]
    fn recorded_values_stay_in_bounds(v in value_strategy()) {
        let (lo, hi) = HistogramSnapshot::bucket_bounds(v);
        prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        if lo > 0 {
            let width = hi - lo;
            let budget = lo >> HISTOGRAM_PRECISION_BITS;
            prop_assert!(
                width <= budget,
                "bucket [{lo}, {hi}] wider than 2^-P of its lower bound"
            );
        }
    }

    /// count/sum/min/max agree with the raw data (sum saturates, but these
    /// inputs stay far from overflow at <80 values).
    #[test]
    fn summary_stats_match_raw_data(
        values in proptest::collection::vec(0u64..(1 << 40), 1..80),
    ) {
        let snap = snapshot_of(&values);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.min, *values.iter().min().unwrap());
        prop_assert_eq!(snap.max, *values.iter().max().unwrap());
    }

    /// The quantile estimate is within 2^-P relative error of the true
    /// (nearest-rank) quantile.
    #[test]
    fn quantile_error_is_bounded(
        values in proptest::collection::vec(1u64..(1 << 48), 1..60),
        q in (1u64..101).prop_map(|v| v as f64 / 100.0),
    ) {
        let snap = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize)
            .clamp(1, sorted.len());
        let truth = sorted[rank - 1] as f64;
        let est = snap.quantile(q) as f64;
        // The estimate is a bucket upper bound clamped to max, so it can
        // only overshoot, and by at most the bucket width (2^-P relative).
        prop_assert!(est >= truth, "estimate {est} below true quantile {truth}");
        let tolerance = truth / f64::from(1u32 << HISTOGRAM_PRECISION_BITS) + 1.0;
        prop_assert!(
            est - truth <= tolerance,
            "estimate {est} overshoots true quantile {truth} by more than {tolerance}"
        );
    }
}
