//! Log-file reading for recovery.

use std::path::Path;

use bytes::{Buf, Bytes};

use mb2_common::{DbError, DbResult};

use crate::record::LogRecord;

/// Read every record from a log file. A trailing partial record (torn write
/// from a crash mid-flush) is tolerated and dropped; corruption earlier in
/// the file is an error.
pub fn read_log(path: &Path) -> DbResult<Vec<LogRecord>> {
    let data = std::fs::read(path)
        .map_err(|e| DbError::Wal(format!("read {}: {e}", path.display())))?;
    let mut buf = Bytes::from(data);
    let mut records = Vec::new();
    while buf.remaining() >= 4 {
        // Peek the length prefix to detect a torn tail.
        let body_len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if buf.remaining() < 4 + body_len {
            break; // torn tail: the crash interrupted the final flush
        }
        records.push(LogRecord::deserialize(&mut buf)?);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{LogManager, LogManagerConfig};
    use mb2_common::Value;

    fn temp_log(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("mb2_reader_{}_{name}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn reads_back_written_records() {
        let path = temp_log("basic");
        let records = vec![
            LogRecord::Begin { txn_id: 1 },
            LogRecord::Insert { txn_id: 1, table_id: 2, slot: 3, tuple: vec![Value::Int(7)] },
            LogRecord::Commit { txn_id: 1 },
        ];
        {
            let wal = LogManager::new(LogManagerConfig {
                path: Some(path.clone()),
                ..LogManagerConfig::default()
            })
            .unwrap();
            for r in &records {
                wal.append(r);
            }
            wal.flush_now().unwrap();
        }
        let back = read_log(&path).unwrap();
        assert_eq!(back, records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = temp_log("torn");
        {
            let wal = LogManager::new(LogManagerConfig {
                path: Some(path.clone()),
                ..LogManagerConfig::default()
            })
            .unwrap();
            wal.append(&LogRecord::Begin { txn_id: 1 });
            wal.append(&LogRecord::Commit { txn_id: 1 });
            wal.flush_now().unwrap();
        }
        // Simulate a crash mid-write: append garbage length prefix + partial
        // body.
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(&100u32.to_le_bytes());
        data.extend_from_slice(&[5u8, 1, 2]);
        std::fs::write(&path, &data).unwrap();
        let back = read_log(&path).unwrap();
        assert_eq!(back.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_error() {
        assert!(read_log(Path::new("/nonexistent/mb2.log")).is_err());
    }
}
