//! Hardware context (paper §4.2 / §8.6).
//!
//! The paper studies generalizing OU-models across CPU frequencies by
//! appending the frequency to every model's input features. Real frequency
//! scaling needs a power governor; this reproduction substitutes a
//! `HardwareProfile` the engine consults: frequencies below the base inject
//! calibrated spin-work proportional to `base/freq - 1` per unit of accounted
//! work, so a "slower CPU" genuinely takes longer in wall-clock terms, and the
//! simulated cycle counts scale the same way.

/// Hardware profile attached to an engine instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareProfile {
    /// Emulated CPU frequency in GHz.
    pub cpu_freq_ghz: f64,
    /// The frequency at which the host actually runs (slowdown baseline).
    pub base_freq_ghz: f64,
}

impl HardwareProfile {
    /// The paper's Xeon base frequency.
    pub const DEFAULT_BASE_GHZ: f64 = 3.1;

    pub fn new(cpu_freq_ghz: f64) -> HardwareProfile {
        HardwareProfile {
            cpu_freq_ghz,
            base_freq_ghz: Self::DEFAULT_BASE_GHZ,
        }
    }

    /// Multiplier on work cost relative to the base frequency (>= 1.0; the
    /// emulation can only slow down, never speed up).
    pub fn slowdown(&self) -> f64 {
        (self.base_freq_ghz / self.cpu_freq_ghz).max(1.0)
    }
}

impl Default for HardwareProfile {
    fn default() -> HardwareProfile {
        HardwareProfile::new(Self::DEFAULT_BASE_GHZ)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_no_slowdown() {
        assert_eq!(HardwareProfile::default().slowdown(), 1.0);
    }

    #[test]
    fn half_frequency_doubles_work() {
        let hw = HardwareProfile::new(HardwareProfile::DEFAULT_BASE_GHZ / 2.0);
        assert!((hw.slowdown() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overclock_clamps_to_one() {
        let hw = HardwareProfile::new(10.0);
        assert_eq!(hw.slowdown(), 1.0);
    }
}
