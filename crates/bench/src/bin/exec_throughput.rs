//! Batch-pipeline throughput; see `mb2_bench::experiments::exec_throughput`.
fn main() {
    let scale = mb2_bench::Scale::from_env();
    let report = mb2_bench::experiments::exec_throughput::run(scale);
    mb2_bench::report::emit("exec_throughput", &report);
}
