//! Deterministic fault injection for durability testing.
//!
//! A [`FaultInjector`] is a registry of *named fault points* that production
//! code consults at the moments where real systems fail: opening the log
//! file, writing a buffer, calling fsync. Tests arm a point with a
//! [`FaultMode`] and the next matching call reports an injected failure; the
//! code under test then exercises its real error path (retry, backoff,
//! poisoning, read-only degradation) with no actual I/O fault required.
//!
//! Probabilistic modes draw from the workspace's seeded [`Prng`], so a run
//! that fails can be replayed byte-for-byte from its seed.
//!
//! The injector is cheap when unarmed (one mutex lock and a hash probe per
//! checked point) and is only ever constructed by tests and torture
//! harnesses; production configs leave it `None`.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

use crate::rng::Prng;

/// Well-known fault-point names used by the WAL layer.
pub mod points {
    /// Opening (creating) the log file in `LogManager::new`.
    pub const WAL_OPEN: &str = "wal.open";
    /// Writing a sealed buffer to the log file.
    pub const WAL_WRITE: &str = "wal.write";
    /// The fsync (`File::sync_all`) after a successful write.
    pub const WAL_FSYNC: &str = "wal.fsync";
    /// One-shot torn write: persist a prefix of the buffer, then "crash".
    pub const WAL_TORN_WRITE: &str = "wal.torn_write";
}

/// When an armed fault point trips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultMode {
    /// Fail exactly the `n`-th call (1-based) to this point, then disarm.
    Nth(u64),
    /// Fail the `n`-th call (1-based) and every call after it.
    FromNth(u64),
    /// Fail each call independently with probability `p` (seeded PRNG).
    Probability(f64),
    /// Fail every call. Equivalent to `FromNth(1)`.
    Always,
}

#[derive(Debug)]
struct Armed {
    mode: FaultMode,
    calls: u64,
    fired: u64,
}

impl Armed {
    fn trips(&mut self, rng: &mut Prng) -> bool {
        self.calls += 1;
        let hit = match self.mode {
            FaultMode::Nth(n) => self.calls == n,
            FaultMode::FromNth(n) => self.calls >= n,
            FaultMode::Probability(p) => rng.chance(p),
            FaultMode::Always => true,
        };
        if hit {
            self.fired += 1;
        }
        hit
    }
}

#[derive(Debug, Default)]
struct State {
    points: HashMap<String, Armed>,
    /// Point name -> fraction of the buffer to keep. One-shot: consumed on use.
    torn: HashMap<String, f64>,
}

/// Registry of named fault points. Shared as `Arc<FaultInjector>` between the
/// test and the component under test (including its background threads).
pub struct FaultInjector {
    seed: u64,
    state: Mutex<State>,
    rng: Mutex<Prng>,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

impl FaultInjector {
    /// An injector whose probabilistic decisions derive from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            state: Mutex::new(State::default()),
            rng: Mutex::new(Prng::new(seed)),
        }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Arm `point` with `mode`, replacing any previous arming (and resetting
    /// its call counter).
    pub fn arm(&self, point: &str, mode: FaultMode) {
        let mut st = self.lock_state();
        st.points.insert(
            point.to_string(),
            Armed {
                mode,
                calls: 0,
                fired: 0,
            },
        );
    }

    /// Arm a one-shot torn write at `point`: the next [`torn_write`]
    /// consultation reports that only `keep_fraction` of the buffer (clamped
    /// to `[0, 1]`, rounded down, always short of the full length) reached
    /// disk before the simulated crash.
    ///
    /// [`torn_write`]: FaultInjector::torn_write
    pub fn arm_torn_write(&self, point: &str, keep_fraction: f64) {
        let mut st = self.lock_state();
        st.torn
            .insert(point.to_string(), keep_fraction.clamp(0.0, 1.0));
    }

    /// Remove any arming (failure mode and torn-write) from `point`.
    pub fn disarm(&self, point: &str) {
        let mut st = self.lock_state();
        st.points.remove(point);
        st.torn.remove(point);
    }

    /// Consult `point`. Returns `Some(description)` when the armed fault
    /// trips — the caller should fail with that description — and `None`
    /// when the call should proceed normally.
    pub fn should_fail(&self, point: &str) -> Option<String> {
        let mut st = self.lock_state();
        let armed = st.points.get_mut(point)?;
        let mut rng = match self.rng.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if armed.trips(&mut rng) {
            let call = armed.calls;
            if matches!(armed.mode, FaultMode::Nth(_)) {
                st.points.remove(point);
            }
            Some(format!("injected fault at '{point}' (call #{call})"))
        } else {
            None
        }
    }

    /// Consult a one-shot torn-write arming at `point` for a buffer of
    /// `total` bytes. Returns `Some(keep)` — the number of bytes that should
    /// reach disk before the simulated crash, strictly less than `total` —
    /// and consumes the arming. Returns `None` when not armed or `total` is 0.
    pub fn torn_write(&self, point: &str, total: usize) -> Option<usize> {
        if total == 0 {
            return None;
        }
        let mut st = self.lock_state();
        let fraction = st.torn.remove(point)?;
        let keep = ((total as f64 * fraction) as usize).min(total - 1);
        Some(keep)
    }

    /// How many times `point` has been consulted since it was (re-)armed.
    pub fn calls(&self, point: &str) -> u64 {
        self.lock_state().points.get(point).map_or(0, |a| a.calls)
    }

    /// How many times `point` has tripped since it was (re-)armed.
    pub fn fired(&self, point: &str) -> u64 {
        self.lock_state().points.get(point).map_or(0, |a| a.fired)
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_points_never_fail() {
        let inj = FaultInjector::new(7);
        for _ in 0..100 {
            assert!(inj.should_fail(points::WAL_WRITE).is_none());
        }
        assert_eq!(inj.calls(points::WAL_WRITE), 0);
    }

    #[test]
    fn nth_fires_once_then_disarms() {
        let inj = FaultInjector::new(7);
        inj.arm(points::WAL_FSYNC, FaultMode::Nth(3));
        assert!(inj.should_fail(points::WAL_FSYNC).is_none());
        assert!(inj.should_fail(points::WAL_FSYNC).is_none());
        let msg = inj
            .should_fail(points::WAL_FSYNC)
            .expect("third call trips");
        assert!(msg.contains("wal.fsync"), "{msg}");
        // Disarmed after firing: subsequent calls pass.
        assert!(inj.should_fail(points::WAL_FSYNC).is_none());
    }

    #[test]
    fn from_nth_fails_persistently() {
        let inj = FaultInjector::new(7);
        inj.arm(points::WAL_WRITE, FaultMode::FromNth(2));
        assert!(inj.should_fail(points::WAL_WRITE).is_none());
        for _ in 0..5 {
            assert!(inj.should_fail(points::WAL_WRITE).is_some());
        }
        assert_eq!(inj.fired(points::WAL_WRITE), 5);
        inj.disarm(points::WAL_WRITE);
        assert!(inj.should_fail(points::WAL_WRITE).is_none());
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let run = |seed| {
            let inj = FaultInjector::new(seed);
            inj.arm(points::WAL_WRITE, FaultMode::Probability(0.5));
            (0..64)
                .map(|_| inj.should_fail(points::WAL_WRITE).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
        // With p=0.5 over 64 trials, both outcomes must appear.
        let outcomes = run(42);
        assert!(outcomes.iter().any(|&b| b) && outcomes.iter().any(|&b| !b));
    }

    #[test]
    fn torn_write_is_one_shot_and_partial() {
        let inj = FaultInjector::new(7);
        inj.arm_torn_write(points::WAL_TORN_WRITE, 0.5);
        let keep = inj.torn_write(points::WAL_TORN_WRITE, 100).expect("armed");
        assert!(keep < 100, "torn write must be partial, kept {keep}");
        assert_eq!(keep, 50);
        assert!(
            inj.torn_write(points::WAL_TORN_WRITE, 100).is_none(),
            "one-shot"
        );
        // keep_fraction 1.0 still drops at least one byte.
        inj.arm_torn_write(points::WAL_TORN_WRITE, 1.0);
        assert_eq!(inj.torn_write(points::WAL_TORN_WRITE, 10), Some(9));
    }
}
