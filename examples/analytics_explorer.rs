//! Analytics explorer: run the TPC-H-derived analytical workload, print
//! EXPLAIN-style plans, and show how the engine's two execution modes (the
//! interpret/compile behavior knob, paper §4.2) change query latency.
//!
//! Run with: `cargo run --release --example analytics_explorer`

use mb2::common::Prng;
use mb2::engine::exec::ExecutionMode;
use mb2::engine::Database;
use mb2::workloads::tpch::Tpch;
use mb2::workloads::Workload;

fn main() {
    println!("== TPC-H analytics explorer ==");
    let tpch = Tpch::with_scale(0.25);
    let db = Database::open();
    println!(
        "loading TPC-H at scale 0.25 ({} lineitem rows)...",
        tpch.lineitem_rows()
    );
    tpch.load(&db).unwrap();

    let mut rng = Prng::new(7);
    for template in tpch.template_names() {
        let sql = tpch.query(template, &mut rng);
        let plan = db.prepare(&sql).unwrap();
        println!("\n--- {template} ---");
        println!("{sql}");
        print!("{}", plan.explain());

        let mut timings = Vec::new();
        for mode in [ExecutionMode::Interpret, ExecutionMode::Compiled] {
            db.set_execution_mode(mode);
            db.execute_plan(&plan, None).unwrap(); // warm-up
            let started = std::time::Instant::now();
            let result = db.execute_plan(&plan, None).unwrap();
            timings.push((mode, started.elapsed(), result.rows.len()));
        }
        for (mode, elapsed, rows) in &timings {
            println!("{mode:?}: {elapsed:.2?} ({rows} rows)");
        }
        let speedup = timings[0].1.as_secs_f64() / timings[1].1.as_secs_f64().max(1e-9);
        println!("compiled-mode speedup: {speedup:.2}x");
    }
}
