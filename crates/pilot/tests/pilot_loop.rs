//! End-to-end control-loop tests, stepped deterministically through
//! [`Pilot::run_once`]: a scan-heavy workload triggers exactly one index
//! build, shifting the workload away triggers the drop, and an observed
//! regression triggers a revert.

mod common;

use std::sync::Arc;
use std::time::Duration;

use mb2_common::fault::{self, FaultInjector};
use mb2_engine::{Database, DatabaseConfig, StatementTap};
use mb2_pilot::{Pilot, PilotConfig, TickOutcome};

/// Seed override for CI stress runs: `MB2_TEST_SEED=n` perturbs the
/// pilot's candidate tie-break rotation. Outcomes must not change —
/// selection is by predicted gain, the seed only rotates equal ties.
fn seed_offset() -> u64 {
    std::env::var("MB2_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn pilot_config() -> PilotConfig {
    PilotConfig {
        forecast_window: Duration::from_millis(800),
        forecast_buckets: 4,
        min_arrivals: 5,
        min_gain: 0.05,
        cooldown: Duration::ZERO,
        verify_window: Duration::ZERO,
        seed: 1 + seed_offset(),
        ..PilotConfig::fast()
    }
}

fn pilot_index_count(db: &Database) -> usize {
    db.catalog()
        .get("big")
        .unwrap()
        .indexes()
        .iter()
        .filter(|i| i.name.starts_with("pilot_"))
        .count()
}

fn scan_heavy(db: &Database, n: usize) {
    for i in 0..n {
        db.execute(&format!("SELECT * FROM big WHERE grp = {}", i % 100))
            .unwrap();
    }
}

#[test]
fn scan_heavy_builds_one_index_and_drops_on_shift_back() {
    let db = Arc::new(Database::open());
    common::seed_big(&db);
    let models = common::cost_models(&db);
    let pilot = Pilot::new(db.clone(), models, pilot_config());
    db.set_statement_tap(Some(pilot.forecaster().clone() as Arc<dyn StatementTap>));

    // Scan-heavy phase: `grp = ?` has no index, so every query seq-scans.
    scan_heavy(&db, 20);
    let out = pilot.run_once();
    assert_eq!(
        out,
        TickOutcome::Applied("build_index"),
        "{:?}",
        pilot.status()
    );
    assert_eq!(pilot_index_count(&db), 1);
    assert!(db
        .catalog()
        .get("big")
        .unwrap()
        .index_named("pilot_big_grp")
        .is_some());

    // Verify tick accepts (no regression under the new index).
    scan_heavy(&db, 10);
    assert_eq!(
        pilot.run_once(),
        TickOutcome::Verified { reverted: false },
        "{:?}",
        pilot.status()
    );
    assert_eq!(pilot.metrics().reverted.get(), 0);

    // Continued scan-heavy traffic must NOT build a second index: the
    // forecast now plans `grp = ?` through pilot_big_grp.
    scan_heavy(&db, 10);
    let out = pilot.run_once();
    assert_ne!(
        out,
        TickOutcome::Applied("build_index"),
        "{:?}",
        pilot.status()
    );
    assert_eq!(pilot_index_count(&db), 1);

    // Shift back: only pk lookups. Once the grp template ages out of the
    // sliding window the pilot drops the now-unused index it built.
    std::thread::sleep(Duration::from_millis(900));
    for i in 0..10 {
        db.execute(&format!("SELECT * FROM big WHERE pk = {i}"))
            .unwrap();
    }
    let out = pilot.run_once();
    assert_eq!(
        out,
        TickOutcome::Applied("drop_index"),
        "{:?}",
        pilot.status()
    );
    assert_eq!(pilot_index_count(&db), 0);
    assert!(db
        .catalog()
        .get("big")
        .unwrap()
        .index_named("pilot_big_grp")
        .is_none());
    // User-created indexes were never touched.
    assert!(db
        .catalog()
        .get("big")
        .unwrap()
        .index_named("big_pk")
        .is_some());

    assert_eq!(
        pilot.run_once(),
        TickOutcome::Verified { reverted: false },
        "{:?}",
        pilot.status()
    );
    let status = pilot.status();
    assert!(
        status.history.iter().any(|h| h.contains("accepted")),
        "{status:?}"
    );
    // Applied counters: one build, one drop.
    assert_eq!(pilot.metrics().applied("build_index").get(), 1);
    assert_eq!(pilot.metrics().applied("drop_index").get(), 1);
}

#[test]
fn observed_regression_triggers_revert() {
    let faults = Arc::new(FaultInjector::new(42));
    let db = Arc::new(
        Database::new(DatabaseConfig {
            faults: Some(faults.clone()),
            ..DatabaseConfig::default()
        })
        .unwrap(),
    );
    common::seed_big(&db);
    let models = common::cost_models(&db);
    let config = PilotConfig {
        revert_threshold: 0.25,
        ..pilot_config()
    };
    let pilot = Pilot::new(db.clone(), models, config);
    db.set_statement_tap(Some(pilot.forecaster().clone() as Arc<dyn StatementTap>));

    // Tick with too little traffic: plans nothing, but records the
    // baseline snapshot the next tick measures from.
    scan_heavy(&db, 3);
    assert_eq!(pilot.run_once(), TickOutcome::NoForecast);

    // Normal-latency window, then the pilot applies the index build.
    scan_heavy(&db, 10);
    let out = pilot.run_once();
    assert_eq!(
        out,
        TickOutcome::Applied("build_index"),
        "{:?}",
        pilot.status()
    );

    // Sabotage the verify window: every commit now stalls, so observed
    // mean latency regresses far past baseline * (1 + 0.25).
    // 50ms dwarfs even debug-build seq-scan latencies in the baseline.
    faults.arm_delay(fault::points::TXN_COMMIT, Duration::from_millis(50));
    for i in 0..8 {
        db.execute(&format!("INSERT INTO big VALUES ({}, 1, 0.5)", 10_000 + i))
            .unwrap();
    }
    faults.disarm(fault::points::TXN_COMMIT);

    let out = pilot.run_once();
    assert_eq!(
        out,
        TickOutcome::Verified { reverted: true },
        "{:?}",
        pilot.status()
    );
    // The revert dropped the index the pilot had just built.
    assert_eq!(pilot_index_count(&db), 0);
    assert_eq!(pilot.metrics().reverted.get(), 1);
    let status = pilot.status();
    assert!(
        status.history.iter().any(|h| h.contains("reverted")),
        "{status:?}"
    );
}

#[test]
fn status_json_is_well_formed() {
    let db = Arc::new(Database::open());
    common::seed_big(&db);
    let models = common::cost_models(&db);
    let pilot = Pilot::new(db.clone(), models, pilot_config());
    let json = pilot.status_json();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    for key in [
        "\"state\"",
        "\"ticks\"",
        "\"actions_considered\"",
        "\"actions_reverted\"",
        "\"inflight\"",
        "\"built_indexes\"",
        "\"history\"",
    ] {
        assert!(json.contains(key), "{json} missing {key}");
    }
    assert!(json.contains("\"state\":\"idle\""), "{json}");
}
