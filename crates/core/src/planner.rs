//! The "oracle" self-driving planner (paper §8.7): it evaluates candidate
//! actions by comparing MB2's predictions of their cost (how long the
//! action takes), impact (how much it slows the workload while running),
//! and benefit (how much faster the workload becomes afterwards).
//!
//! Originally this ran only offline in the end-to-end experiments; since
//! the autopilot landed it is also the pricing engine of the *live*
//! control loop — `mb2-pilot` calls [`OraclePlanner::evaluate`] against
//! forecasts summarized from real traffic and applies the best
//! positive-gain action to the running engine. What-if planning uses
//! [`mb2_sql::PlannerOverrides`] (hypothetical/hidden indexes carried in
//! the planner, not the catalog), so evaluation never mutates shared
//! state and is safe under concurrent queries.

use std::time::Duration;

use mb2_common::{DbResult, OuKind};
use mb2_engine::{Database, Knobs};
use mb2_exec::ExecutionMode;
use mb2_sql::{HypotheticalIndex, PlanNode, PlannerOverrides};

use crate::forecast::WorkloadForecast;
use crate::inference::{ActionForecast, BehaviorModels};

/// A candidate self-driving action.
///
/// Note on pricing honesty: knob flips that change query-plan OU features
/// (execution mode, batch size, parallelism, shard count, columnar) are
/// priced by re-predicting the forecast under the new knob vector, so
/// they discriminate exactly as well as the trained models do. Cadence
/// knobs ([`Action::SetWalFlushInterval`], [`Action::SetGcInterval`],
/// [`Action::SetCompactionInterval`]) do not change any query's isolated
/// cost; they are priced through the *background* OUs (Log Flush, GC,
/// Compaction): the planner predicts the recurring per-interval cost of
/// the background thread at the old and new cadence from the forecast's
/// write volume, and amortizes the delta across the interval's expected
/// query count. With no trained model for the background OU the delta
/// degenerates to zero — untrained knobs stay honestly unpriced.
#[derive(Debug, Clone)]
pub enum Action {
    /// Change the execution-mode behavior knob.
    SetExecutionMode(ExecutionMode),
    /// Build an index with the given parallelism.
    BuildIndex {
        sql: String,
        table: String,
        index: String,
        columns: Vec<String>,
        threads: usize,
    },
    /// Drop an existing secondary index.
    DropIndex { table: String, index: String },
    /// Change the executor's batch-size knob.
    SetBatchSize(usize),
    /// Change the morsel-parallelism knob (exec-pool worker count).
    SetParallelism(usize),
    /// Change the WAL background flush interval.
    SetWalFlushInterval(Duration),
    /// Change the background GC cadence.
    SetGcInterval(Duration),
    /// Flip the columnar-scan behavior knob (sealed units served from
    /// column-major blocks instead of version chains).
    SetColumnarEnabled(bool),
    /// Change the background columnar-compaction cadence.
    SetCompactionInterval(Duration),
}

impl Action {
    /// Stable short label for metrics and logs (`mb2_pilot_*` families
    /// use this as the `action` label value).
    pub fn label(&self) -> &'static str {
        match self {
            Action::SetExecutionMode(_) => "set_execution_mode",
            Action::BuildIndex { .. } => "build_index",
            Action::DropIndex { .. } => "drop_index",
            Action::SetBatchSize(_) => "set_batch_size",
            Action::SetParallelism(_) => "set_parallelism",
            Action::SetWalFlushInterval(_) => "set_wal_flush_interval",
            Action::SetGcInterval(_) => "set_gc_interval",
            Action::SetColumnarEnabled(_) => "set_columnar_enabled",
            Action::SetCompactionInterval(_) => "set_compaction_interval",
        }
    }

    /// Human-readable one-line description.
    pub fn describe(&self) -> String {
        match self {
            Action::SetExecutionMode(mode) => format!("set execution mode to {mode:?}"),
            Action::BuildIndex { sql, .. } => sql.clone(),
            Action::DropIndex { table, index } => format!("DROP INDEX {index} ON {table}"),
            Action::SetBatchSize(n) => format!("set batch size to {n}"),
            Action::SetParallelism(n) => format!("set parallelism to {n}"),
            Action::SetWalFlushInterval(d) => format!("set WAL flush interval to {d:?}"),
            Action::SetGcInterval(d) => format!("set GC interval to {d:?}"),
            Action::SetColumnarEnabled(on) => format!("set columnar scans to {on}"),
            Action::SetCompactionInterval(d) => format!("set compaction interval to {d:?}"),
        }
    }
}

/// Predicted consequences of an action (paper §2.1's four questions).
#[derive(Debug, Clone)]
pub struct ActionEvaluation {
    /// Average query runtime (µs) for the interval without the action.
    pub baseline_us: f64,
    /// Average query runtime while the action deploys (impact).
    pub during_us: f64,
    /// Average query runtime after the action is deployed (benefit).
    pub after_us: f64,
    /// How long the action itself takes (µs); 0 for knob flips.
    pub action_duration_us: f64,
    /// Predicted CPU time (µs) the action consumes.
    pub action_cpu_us: f64,
}

impl ActionEvaluation {
    /// Relative runtime reduction the action is predicted to deliver.
    pub fn predicted_gain(&self) -> f64 {
        if self.baseline_us <= 0.0 {
            return 0.0;
        }
        (self.baseline_us - self.after_us) / self.baseline_us
    }
}

/// Evaluates actions against forecasts with behavior models.
pub struct OraclePlanner<'a> {
    pub db: &'a Database,
    pub models: &'a BehaviorModels,
}

impl<'a> OraclePlanner<'a> {
    pub fn new(db: &'a Database, models: &'a BehaviorModels) -> OraclePlanner<'a> {
        OraclePlanner { db, models }
    }

    /// Evaluate an action against one forecast interval.
    pub fn evaluate(
        &self,
        action: &Action,
        forecast: &WorkloadForecast,
        interval: usize,
        knobs: &Knobs,
    ) -> DbResult<ActionEvaluation> {
        let baseline = self
            .models
            .predict_interval(forecast, interval, knobs, None);
        let baseline_us = baseline.avg_query_runtime_us();
        match action {
            Action::SetExecutionMode(mode) => {
                let new_knobs = Knobs {
                    execution_mode: *mode,
                    ..*knobs
                };
                Ok(self.knob_flip(forecast, interval, knobs, &new_knobs))
            }
            Action::BuildIndex {
                sql,
                table,
                index,
                columns,
                threads,
            } => {
                // Cost + impact: predict the interval with the build running.
                let plan = self.db.prepare(sql)?;
                let action_fc = ActionForecast {
                    plan: plan.clone(),
                    threads: *threads,
                };
                let during =
                    self.models
                        .predict_interval(forecast, interval, knobs, Some(&action_fc));
                let (_, action_adjusted) = during.action_us.expect("action predicted");
                let action_pred = self.models.predict_plan(&plan, knobs);
                let action_cpu_us = action_pred.total_for(OuKind::IndexBuild).cpu_us();

                // Benefit: re-plan the forecast's queries against a
                // hypothetical index (a planner override — the catalog is
                // never touched, so live traffic cannot see it) and
                // predict the new plans.
                let entry = self.db.catalog().get(table)?;
                let schema = entry.table.schema();
                let positions: Vec<usize> = columns
                    .iter()
                    .map(|c| schema.index_of(c))
                    .collect::<DbResult<_>>()?;
                let overrides = PlannerOverrides {
                    hypothetical_indexes: vec![HypotheticalIndex {
                        table: table.clone(),
                        name: index.clone(),
                        columns: positions,
                    }],
                    hidden_indexes: Vec::new(),
                };
                let after_us = self.replan_and_predict(forecast, interval, knobs, &overrides)?;
                Ok(ActionEvaluation {
                    baseline_us,
                    during_us: during.avg_query_runtime_us(),
                    after_us,
                    action_duration_us: action_adjusted,
                    action_cpu_us,
                })
            }
            Action::DropIndex { index, .. } => {
                // Benefit/regression: re-plan with the index hidden. The
                // drop itself is metadata-only, so cost and impact are
                // negligible; the interesting output is `after_us` (how
                // much the workload *loses* without the index — ~zero
                // when no forecast plan uses it).
                let overrides = PlannerOverrides {
                    hypothetical_indexes: Vec::new(),
                    hidden_indexes: vec![index.clone()],
                };
                let after_us = self.replan_and_predict(forecast, interval, knobs, &overrides)?;
                Ok(ActionEvaluation {
                    baseline_us,
                    during_us: baseline_us,
                    after_us,
                    action_duration_us: 0.0,
                    action_cpu_us: 0.0,
                })
            }
            Action::SetBatchSize(n) => {
                let new_knobs = Knobs {
                    batch_size: *n,
                    ..*knobs
                };
                Ok(self.knob_flip(forecast, interval, knobs, &new_knobs))
            }
            Action::SetParallelism(n) => {
                let new_knobs = Knobs {
                    parallelism: *n,
                    ..*knobs
                };
                Ok(self.knob_flip(forecast, interval, knobs, &new_knobs))
            }
            Action::SetWalFlushInterval(d) => {
                let new_knobs = Knobs {
                    wal_flush_interval: *d,
                    ..*knobs
                };
                let mut eval = self.knob_flip(forecast, interval, knobs, &new_knobs);
                let old_bg = self.wal_flush_cost_us(forecast, interval, knobs);
                let new_bg = self.wal_flush_cost_us(forecast, interval, &new_knobs);
                self.amortize_background(&mut eval, forecast, interval, new_bg - old_bg);
                Ok(eval)
            }
            // The GC cadence is not a query-plan feature, so the isolated
            // query costs never move; the honest price is the change in
            // recurring background GC work.
            Action::SetGcInterval(d) => {
                let mut eval = self.knob_flip(forecast, interval, knobs, knobs);
                let old_bg = self.gc_cost_us(forecast, interval, self.db.gc().interval(), knobs);
                let new_bg = self.gc_cost_us(forecast, interval, *d, knobs);
                self.amortize_background(&mut eval, forecast, interval, new_bg - old_bg);
                Ok(eval)
            }
            Action::SetColumnarEnabled(on) => {
                let new_knobs = Knobs {
                    columnar_enabled: *on,
                    ..*knobs
                };
                Ok(self.knob_flip(forecast, interval, knobs, &new_knobs))
            }
            Action::SetCompactionInterval(d) => {
                let mut eval = self.knob_flip(forecast, interval, knobs, knobs);
                let cur = self.db.compactor().interval();
                let old_bg = self.compaction_cost_us(forecast, interval, cur, knobs);
                let new_bg = self.compaction_cost_us(forecast, interval, *d, knobs);
                self.amortize_background(&mut eval, forecast, interval, new_bg - old_bg);
                Ok(eval)
            }
        }
    }

    /// Forecast write volume for one interval, from the DML templates'
    /// cardinality estimates: `(rows written, WAL bytes)`.
    fn forecast_write_volume(&self, forecast: &WorkloadForecast, interval: usize) -> (f64, f64) {
        let iv = &forecast.intervals[interval];
        let mut rows = 0.0;
        let mut bytes = 0.0;
        for (i, t) in forecast.templates.iter().enumerate() {
            let count = iv.expected_count(i);
            let (r, width) = match &t.plan {
                PlanNode::Insert { est, .. } => (est.rows_in.max(1.0), est.width),
                PlanNode::Update { est, .. } | PlanNode::Delete { est, .. } => {
                    (est.rows_out.max(1.0), est.width)
                }
                _ => continue,
            };
            rows += r * count;
            bytes += r * width.max(8.0) * count;
        }
        (rows, bytes)
    }

    /// Recurring per-interval cost (µs) of the WAL background flusher at
    /// the cadence in `knobs`: `duration / interval` passes, each priced
    /// by the Log Flush OU-model on its share of the forecast write bytes.
    fn wal_flush_cost_us(
        &self,
        forecast: &WorkloadForecast,
        interval: usize,
        knobs: &Knobs,
    ) -> f64 {
        let (_, bytes) = self.forecast_write_volume(forecast, interval);
        let iv = &forecast.intervals[interval];
        let interval_ms = (knobs.wal_flush_interval.as_secs_f64() * 1000.0).max(0.001);
        let passes = ((iv.duration_s * 1000.0) / interval_ms).max(1.0);
        let inst = self
            .models
            .translator
            .log_flush_features(bytes / passes, knobs);
        let per_pass = self
            .models
            .ou_models
            .predict(OuKind::LogFlush, &inst.features)
            .elapsed_us();
        passes * per_pass.max(0.0)
    }

    /// Recurring per-interval cost (µs) of background GC at the given
    /// cadence, priced by the GC OU-model on the forecast's version churn.
    /// Zero cadence means background GC is not running — no cost.
    fn gc_cost_us(
        &self,
        forecast: &WorkloadForecast,
        interval: usize,
        cadence: Duration,
        knobs: &Knobs,
    ) -> f64 {
        if cadence.is_zero() {
            return 0.0;
        }
        let (rows, _) = self.forecast_write_volume(forecast, interval);
        let iv = &forecast.intervals[interval];
        let interval_ms = (cadence.as_secs_f64() * 1000.0).max(0.001);
        let passes = ((iv.duration_s * 1000.0) / interval_ms).max(1.0);
        let inst =
            self.models
                .translator
                .gc_features(rows / passes, rows.max(1.0), interval_ms, knobs);
        let per_pass = self
            .models
            .ou_models
            .predict(OuKind::GarbageCollection, &inst.features)
            .elapsed_us();
        passes * per_pass.max(0.0)
    }

    /// Recurring per-interval cost (µs) of columnar compaction at the
    /// given cadence, priced by the Compaction OU-model on the forecast's
    /// insert volume (cold data that will freeze into sealable units).
    fn compaction_cost_us(
        &self,
        forecast: &WorkloadForecast,
        interval: usize,
        cadence: Duration,
        knobs: &Knobs,
    ) -> f64 {
        if cadence.is_zero() {
            return 0.0;
        }
        let unit = mb2_engine::storage::SHARD_UNIT_SLOTS as f64;
        let (rows, _) = self.forecast_write_volume(forecast, interval);
        let iv = &forecast.intervals[interval];
        let interval_ms = (cadence.as_secs_f64() * 1000.0).max(0.001);
        let passes = ((iv.duration_s * 1000.0) / interval_ms).max(1.0);
        let per_pass_rows = rows / passes;
        let inst = self.models.translator.compaction_features(
            per_pass_rows,
            (per_pass_rows / unit).ceil().max(1.0),
            interval_ms,
            knobs,
        );
        let per_pass = self
            .models
            .ou_models
            .predict(OuKind::Compaction, &inst.features)
            .elapsed_us();
        passes * per_pass.max(0.0)
    }

    /// Fold a recurring background-cost delta (µs per forecast interval)
    /// into `after_us`: a cadence change leaves every query's isolated
    /// cost alone, but the background thread's work is overhead the
    /// interval pays — amortized across the expected query count.
    fn amortize_background(
        &self,
        eval: &mut ActionEvaluation,
        forecast: &WorkloadForecast,
        interval: usize,
        delta_us: f64,
    ) {
        let total = forecast.intervals[interval].total_queries();
        if total > 0.0 {
            eval.after_us += delta_us / total;
        }
    }

    /// Price a pure knob flip: compare isolated per-query predictions
    /// under the old and new knob settings (interference noise would
    /// otherwise swamp a knob's often-modest effect). Knob flips deploy
    /// instantly, so cost and impact are zero.
    fn knob_flip(
        &self,
        forecast: &WorkloadForecast,
        interval: usize,
        knobs: &Knobs,
        new_knobs: &Knobs,
    ) -> ActionEvaluation {
        let baseline = self
            .models
            .predict_interval(forecast, interval, knobs, None);
        let after = self
            .models
            .predict_interval(forecast, interval, new_knobs, None);
        ActionEvaluation {
            baseline_us: baseline.avg_isolated_runtime_us(),
            during_us: baseline.avg_query_runtime_us(),
            after_us: after.avg_isolated_runtime_us(),
            action_duration_us: 0.0,
            action_cpu_us: 0.0,
        }
    }

    /// Re-plan every forecast template under the given what-if overrides
    /// and return the predicted average query runtime of the re-planned
    /// workload.
    fn replan_and_predict(
        &self,
        forecast: &WorkloadForecast,
        interval: usize,
        knobs: &Knobs,
        overrides: &PlannerOverrides,
    ) -> DbResult<f64> {
        let mut fc = forecast.clone();
        for t in fc.templates.iter_mut() {
            t.plan = self.db.prepare_with(&t.sql, overrides)?;
        }
        Ok(self
            .models
            .predict_interval(&fc, interval, knobs, None)
            .avg_query_runtime_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{OuSample, TrainingRepo};
    use crate::forecast::QueryTemplate;
    use crate::training::{train_all, TrainingConfig};
    use crate::translate::OuTranslator;
    use mb2_common::metrics::idx;
    use mb2_common::Metrics;
    use mb2_ml::Algorithm;

    /// Models where index scans are predicted much cheaper than sequential
    /// scans, so index actions show a benefit.
    fn cost_models(db: &Database) -> BehaviorModels {
        let mut repo = TrainingRepo::new();
        let translator = OuTranslator::default();
        // Synthesize per-OU linear costs with SeqScan 10× IdxScan.
        let plans = [
            db.prepare("SELECT * FROM big WHERE pk = 1").unwrap(),
            db.prepare("SELECT * FROM big WHERE grp = 1").unwrap(),
            db.prepare("CREATE INDEX hyp ON big (grp) WITH (THREADS = 4)")
                .unwrap(),
        ];
        for plan in &plans {
            for inst in translator.translate_plan(plan, &db.knobs()) {
                for k in 1..=15 {
                    let mut f = inst.features.clone();
                    f[0] = (k * 50) as f64;
                    // Synthetic costs matching each OU's real complexity
                    // (index builds sort, so O(n log n)).
                    let cost = match inst.ou {
                        OuKind::SeqScan => 10.0 * f[0],
                        OuKind::IdxScan => 1.0 * f[0],
                        OuKind::IndexBuild => 5.0 * f[0] * f[0].log2(),
                        _ => 2.0 * f[0],
                    };
                    let mut labels = Metrics::ZERO;
                    labels[idx::ELAPSED_US] = cost;
                    labels[idx::CPU_US] = cost;
                    repo.add(OuSample {
                        ou: inst.ou,
                        features: f,
                        labels,
                    });
                }
            }
        }
        let (set, _) = train_all(
            &repo,
            &TrainingConfig {
                candidates: vec![Algorithm::Linear],
                ..TrainingConfig::default()
            },
        )
        .unwrap();
        BehaviorModels::new(set, None)
    }

    fn setup() -> Database {
        let db = Database::open();
        db.execute("CREATE TABLE big (pk INT, grp INT, v FLOAT)")
            .unwrap();
        for chunk in (0..3000i64).collect::<Vec<_>>().chunks(500) {
            let vals: Vec<String> = chunk
                .iter()
                .map(|i| format!("({i}, {}, 0.5)", i % 100))
                .collect();
            db.execute(&format!("INSERT INTO big VALUES {}", vals.join(", ")))
                .unwrap();
        }
        db.execute("CREATE INDEX big_pk ON big (pk)").unwrap();
        db.execute("ANALYZE big").unwrap();
        db
    }

    #[test]
    fn index_action_shows_benefit_and_cost() {
        let db = setup();
        let models = cost_models(&db);
        let planner = OraclePlanner::new(&db, &models);
        let sql = "SELECT * FROM big WHERE grp = 7";
        let template = QueryTemplate {
            name: "grp_lookup".into(),
            sql: sql.into(),
            plan: db.prepare(sql).unwrap(),
        };
        let mut forecast = WorkloadForecast::new(vec![template], 2);
        forecast.push_interval(10.0, vec![20.0]);
        let action = Action::BuildIndex {
            sql: "CREATE INDEX big_grp ON big (grp) WITH (THREADS = 4)".into(),
            table: "big".into(),
            index: "big_grp".into(),
            columns: vec!["grp".into()],
            threads: 4,
        };
        let eval = planner
            .evaluate(&action, &forecast, 0, &db.knobs())
            .unwrap();
        assert!(eval.after_us < eval.baseline_us, "{eval:?}");
        assert!(eval.predicted_gain() > 0.5, "{eval:?}");
        assert!(eval.action_duration_us > 0.0);
        // The hypothetical index must be gone afterwards.
        assert!(db
            .catalog()
            .get("big")
            .unwrap()
            .index_named("big_grp")
            .is_none());
    }

    #[test]
    fn drop_unused_index_predicts_no_loss() {
        let db = setup();
        // Train before big_grp exists so `grp = 1` still plans as a
        // SeqScan and the SeqScan OU-model gets fitted — hiding big_pk
        // below must price the seq-scan fallback.
        let models = cost_models(&db);
        db.execute("CREATE INDEX big_grp ON big (grp)").unwrap();
        let planner = OraclePlanner::new(&db, &models);
        // Workload only touches pk, so hiding big_grp changes nothing…
        let sql = "SELECT * FROM big WHERE pk = 1";
        let template = QueryTemplate {
            name: "pk_lookup".into(),
            sql: sql.into(),
            plan: db.prepare(sql).unwrap(),
        };
        let mut forecast = WorkloadForecast::new(vec![template], 2);
        forecast.push_interval(10.0, vec![10.0]);
        let drop = Action::DropIndex {
            table: "big".into(),
            index: "big_grp".into(),
        };
        let eval = planner.evaluate(&drop, &forecast, 0, &db.knobs()).unwrap();
        assert!(
            (eval.after_us - eval.baseline_us).abs() / eval.baseline_us < 1e-9,
            "{eval:?}"
        );
        // …while hiding the pk index the workload depends on predicts a
        // clear regression.
        let drop_pk = Action::DropIndex {
            table: "big".into(),
            index: "big_pk".into(),
        };
        let eval = planner
            .evaluate(&drop_pk, &forecast, 0, &db.knobs())
            .unwrap();
        assert!(eval.after_us > eval.baseline_us * 2.0, "{eval:?}");
        // Evaluation never touched the catalog.
        assert!(db
            .catalog()
            .get("big")
            .unwrap()
            .index_named("big_grp")
            .is_some());
        assert!(db
            .catalog()
            .get("big")
            .unwrap()
            .index_named("big_pk")
            .is_some());
    }

    #[test]
    fn unmodeled_knobs_predict_zero_gain() {
        let db = setup();
        let models = cost_models(&db);
        let planner = OraclePlanner::new(&db, &models);
        let sql = "SELECT * FROM big WHERE grp = 7";
        let template = QueryTemplate {
            name: "q".into(),
            sql: sql.into(),
            plan: db.prepare(sql).unwrap(),
        };
        let mut forecast = WorkloadForecast::new(vec![template], 2);
        forecast.push_interval(10.0, vec![5.0]);
        // `cost_models` trains no Log Flush / GC / Compaction / Block Scan
        // models, and this read-only forecast carries no write volume, so
        // every one of these prices honestly to exactly zero gain.
        for action in [
            Action::SetBatchSize(64),
            Action::SetParallelism(8),
            Action::SetWalFlushInterval(Duration::from_millis(1)),
            Action::SetGcInterval(Duration::from_millis(100)),
            Action::SetColumnarEnabled(true),
            Action::SetCompactionInterval(Duration::from_millis(100)),
        ] {
            let eval = planner
                .evaluate(&action, &forecast, 0, &db.knobs())
                .unwrap();
            assert_eq!(
                eval.predicted_gain(),
                0.0,
                "{} should price to zero without trained background models",
                action.label()
            );
            assert_eq!(eval.action_duration_us, 0.0);
        }
    }

    #[test]
    fn wal_cadence_prices_background_flush_cost() {
        let db = setup();
        // Train only the Log Flush OU: elapsed grows with flushed bytes.
        let mut repo = TrainingRepo::new();
        let translator = OuTranslator::default();
        let knobs = db.knobs();
        for k in 1..=15 {
            let bytes = (k * 1024) as f64;
            let inst = translator.log_flush_features(bytes, &knobs);
            let mut labels = Metrics::ZERO;
            labels[idx::ELAPSED_US] = 5.0 + 0.01 * bytes;
            labels[idx::CPU_US] = 5.0 + 0.01 * bytes;
            repo.add(OuSample {
                ou: OuKind::LogFlush,
                features: inst.features,
                labels,
            });
        }
        let (set, _) = train_all(
            &repo,
            &TrainingConfig {
                candidates: vec![Algorithm::Linear],
                ..TrainingConfig::default()
            },
        )
        .unwrap();
        let models = BehaviorModels::new(set, None);
        let planner = OraclePlanner::new(&db, &models);
        let write_sql = "INSERT INTO big VALUES (9001, 1, 0.5)";
        let templates = vec![QueryTemplate {
            name: "w".into(),
            sql: write_sql.into(),
            plan: db.prepare(write_sql).unwrap(),
        }];
        let mut forecast = WorkloadForecast::new(templates, 2);
        forecast.push_interval(10.0, vec![50.0]);
        // Flushing 10× more often pays more recurring background work;
        // 10× less often pays less. Both must move `after_us`.
        let fast = planner
            .evaluate(
                &Action::SetWalFlushInterval(knobs.wal_flush_interval / 10),
                &forecast,
                0,
                &knobs,
            )
            .unwrap();
        assert!(fast.after_us > fast.baseline_us, "{fast:?}");
        let slow = planner
            .evaluate(
                &Action::SetWalFlushInterval(knobs.wal_flush_interval * 10),
                &forecast,
                0,
                &knobs,
            )
            .unwrap();
        assert!(slow.after_us < slow.baseline_us, "{slow:?}");
    }

    #[test]
    fn action_labels_are_stable() {
        assert_eq!(Action::SetBatchSize(1).label(), "set_batch_size");
        assert_eq!(
            Action::SetColumnarEnabled(true).label(),
            "set_columnar_enabled"
        );
        assert_eq!(
            Action::SetCompactionInterval(Duration::from_millis(1)).label(),
            "set_compaction_interval"
        );
        assert_eq!(
            Action::DropIndex {
                table: "t".into(),
                index: "i".into()
            }
            .label(),
            "drop_index"
        );
        assert!(Action::DropIndex {
            table: "t".into(),
            index: "i".into()
        }
        .describe()
        .contains("DROP INDEX i ON t"));
    }

    #[test]
    fn knob_action_evaluates_instantly() {
        let db = setup();
        let models = cost_models(&db);
        let planner = OraclePlanner::new(&db, &models);
        let sql = "SELECT * FROM big WHERE grp = 7";
        let template = QueryTemplate {
            name: "q".into(),
            sql: sql.into(),
            plan: db.prepare(sql).unwrap(),
        };
        let mut forecast = WorkloadForecast::new(vec![template], 2);
        forecast.push_interval(10.0, vec![5.0]);
        let eval = planner
            .evaluate(
                &Action::SetExecutionMode(ExecutionMode::Interpret),
                &forecast,
                0,
                &db.knobs(),
            )
            .unwrap();
        assert_eq!(eval.action_duration_us, 0.0);
        assert!(eval.baseline_us > 0.0);
    }
}
