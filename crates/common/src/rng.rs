//! Deterministic pseudo-random number generation.
//!
//! Experiments must be reproducible run-to-run, so the workspace uses an
//! in-repo xoshiro256++ generator seeded explicitly everywhere instead of
//! OS entropy. Includes the distributions the workload generators need:
//! uniform ranges, Gaussian noise (for the §8.5 cardinality-noise study),
//! Zipfian skew (TPC-C/YCSB-style access skew), and NURand (TPC-C §2.1.6).

/// xoshiro256++ PRNG (public-domain algorithm by Blackman & Vigna).
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
    /// Cached second Gaussian variate from the Box-Muller transform.
    gauss_spare: Option<f64>,
}

impl Prng {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Prng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Prng {
            s: [next(), next(), next(), next()],
            gauss_spare: None,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        // Lemire's multiply-shift rejection method.
        let span = hi - lo;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)` as i64.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo.wrapping_add(self.range_u64(0, (hi - lo) as u64) as i64)
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal variate (Box-Muller with caching).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(v) = self.gauss_spare.take() {
            return v;
        }
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.gauss_spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Normal variate with explicit mean / standard deviation.
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }

    /// Random lowercase ASCII string of the given length.
    pub fn string(&mut self, len: usize) -> String {
        (0..len)
            .map(|_| (b'a' + self.range_u64(0, 26) as u8) as char)
            .collect()
    }

    /// Random numeric string (TPC-C zip codes etc.).
    pub fn digit_string(&mut self, len: usize) -> String {
        (0..len)
            .map(|_| (b'0' + self.range_u64(0, 10) as u8) as char)
            .collect()
    }

    /// TPC-C non-uniform random (clause 2.1.6): `NURand(A, x, y)`.
    pub fn nurand(&mut self, a: u64, x: u64, y: u64, c: u64) -> u64 {
        (((self.range_u64(0, a + 1) | self.range_u64(x, y + 1)) + c) % (y - x + 1)) + x
    }

    /// Fork an independent child stream (for per-thread generators).
    pub fn fork(&mut self) -> Prng {
        Prng::new(self.next_u64())
    }
}

/// Zipfian distribution over `[0, n)` with parameter `theta` (0 = uniform).
///
/// Uses the Gray et al. rejection-free method; `O(1)` per sample after `O(n)`
/// setup amortized into a closed form (we use the standard approximation with
/// precomputed `zeta(n)`).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0);
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n; integral approximation for large n keeps
        // construction cheap for multi-million-row tables.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let tail = ((n as f64).powf(1.0 - theta) - 10_000f64.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// Sample a value in `[0, n)`; smaller values are more popular.
    pub fn sample(&self, rng: &mut Prng) -> u64 {
        if self.theta == 0.0 {
            return rng.range_u64(0, self.n);
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Prng::new(7);
        let mut b = Prng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Prng::new(3);
        for _ in 0..10_000 {
            let v = rng.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_close_to_center() {
        let mut rng = Prng::new(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Prng::new(13);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn zipf_skews_to_head() {
        let zipf = Zipf::new(1000, 0.9);
        let mut rng = Prng::new(17);
        let n = 50_000;
        let head = (0..n).filter(|_| zipf.sample(&mut rng) < 10).count();
        // With theta=0.9 the top-10 of 1000 items should get far more than
        // the uniform 1% of traffic.
        assert!(
            head as f64 / n as f64 > 0.15,
            "head fraction {}",
            head as f64 / n as f64
        );
    }

    #[test]
    fn zipf_zero_theta_is_uniform() {
        let zipf = Zipf::new(100, 0.0);
        let mut rng = Prng::new(19);
        let mut counts = [0usize; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.5, "max {max} min {min}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn nurand_in_range() {
        let mut rng = Prng::new(29);
        for _ in 0..10_000 {
            let v = rng.nurand(255, 0, 999, 123);
            assert!(v <= 999);
        }
    }

    #[test]
    fn strings_have_requested_length() {
        let mut rng = Prng::new(31);
        assert_eq!(rng.string(12).len(), 12);
        assert!(rng.digit_string(6).chars().all(|c| c.is_ascii_digit()));
    }
}
