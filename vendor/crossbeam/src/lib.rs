//! Offline drop-in subset of the `crossbeam` API, backed by `std::sync::mpsc`.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors the slice of `crossbeam` it uses: `channel::bounded` with
//! non-blocking `try_send`/`try_recv` plus blocking `send`/`recv`.

pub mod channel {
    use std::sync::mpsc;

    /// Create a bounded channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }

        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn bounded_send_recv() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn disconnect_observed() {
        let (tx, rx) = bounded::<u32>(1);
        drop(tx);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }
}
