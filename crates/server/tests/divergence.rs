//! Result-divergence tests: everything served over the wire must be
//! byte-identical to executing the same SQL in-process.

use std::sync::Arc;

use mb2_common::Value;
use mb2_engine::{Database, DatabaseConfig};
use mb2_server::{Client, Server, ServerConfig};

/// A deterministic per-client statement script: DDL, batched inserts,
/// updates, deletes, and verification selects over a private table.
fn client_script(id: usize) -> Vec<String> {
    let t = format!("t{id}");
    let mut script = vec![format!("CREATE TABLE {t} (id INT, grp INT, v INT)")];
    for chunk in 0..4 {
        let rows: Vec<String> = (0..50)
            .map(|i| {
                let k = chunk * 50 + i;
                format!("({k}, {}, {})", k % 7, (k * 31 + id) % 101)
            })
            .collect();
        script.push(format!("INSERT INTO {t} VALUES {}", rows.join(", ")));
    }
    script.push(format!(
        "UPDATE {t} SET v = v + 1000 WHERE grp = {}",
        id % 7
    ));
    script.push(format!("DELETE FROM {t} WHERE grp = {}", (id + 3) % 7));
    script.push(format!("SELECT id, grp, v FROM {t} ORDER BY id"));
    script.push(format!(
        "SELECT grp, COUNT(*), SUM(v) FROM {t} GROUP BY grp ORDER BY grp"
    ));
    script.push(format!("DELETE FROM {t} WHERE id >= 150"));
    script.push(format!("SELECT COUNT(*) FROM {t}"));
    script
}

/// Run a script in-process and return `(rows, count)` per statement with
/// the same count semantics as the wire's Done frame (rows streamed for
/// queries, rows affected for DML/DDL).
fn run_in_process(db: &Database, script: &[String]) -> Vec<(Vec<Vec<Value>>, u64)> {
    script
        .iter()
        .map(|sql| {
            let r = db.execute(sql).expect("oracle execution");
            let count = if r.rows.is_empty() {
                r.rows_affected as u64
            } else {
                r.rows.len() as u64
            };
            (r.rows, count)
        })
        .collect()
}

/// Concurrent clients running DDL+DML scripts over the wire produce results
/// byte-identical to the same scripts executed in-process.
#[test]
fn concurrent_ddl_dml_matches_in_process() {
    let server = Server::start(
        Arc::new(Database::new(DatabaseConfig::default()).unwrap()),
        ServerConfig::default(),
    )
    .expect("server");
    let addr = server.local_addr().to_string();

    // The oracle runs each script against its own in-process database:
    // scripts touch disjoint tables, so concurrency on the server side
    // must not change any per-client result.
    let handles: Vec<_> = (0..8)
        .map(|id| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let script = client_script(id);
                let oracle_db = Database::new(DatabaseConfig::default()).unwrap();
                let expected = run_in_process(&oracle_db, &script);
                oracle_db.shutdown();

                let mut client = Client::connect(&addr).expect("connect");
                for (sql, (exp_rows, exp_count)) in script.iter().zip(&expected) {
                    let got = client.query(sql).expect("wire execution");
                    assert_eq!(
                        &got.rows, exp_rows,
                        "row divergence for client {id} on `{sql}`"
                    );
                    assert_eq!(
                        got.count, *exp_count,
                        "count divergence for client {id} on `{sql}`"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
}

/// 32 concurrent read-only connections against one loaded database: every
/// wire result must equal the in-process result for the same query on the
/// same database.
#[test]
fn thirty_two_concurrent_readers_see_identical_results() {
    let db = Arc::new(Database::new(DatabaseConfig::default()).unwrap());
    db.execute("CREATE TABLE facts (id INT, grp INT, v INT)")
        .unwrap();
    for chunk in 0..10 {
        let rows: Vec<String> = (0..100)
            .map(|i| {
                let k = chunk * 100 + i;
                format!("({k}, {}, {})", k % 13, (k * 17) % 251)
            })
            .collect();
        db.execute(&format!("INSERT INTO facts VALUES {}", rows.join(", ")))
            .unwrap();
    }

    let queries: Arc<Vec<String>> = Arc::new(
        (0..13)
            .map(|g| format!("SELECT id, v FROM facts WHERE grp = {g} ORDER BY id"))
            .chain(std::iter::once(
                "SELECT grp, COUNT(*), SUM(v) FROM facts GROUP BY grp ORDER BY grp".to_string(),
            ))
            .collect(),
    );
    let expected: Arc<Vec<Vec<Vec<Value>>>> = Arc::new(
        queries
            .iter()
            .map(|q| db.execute(q).unwrap().rows)
            .collect(),
    );

    let server = Server::start(
        db,
        ServerConfig {
            max_connections: 64,
            max_inflight_queries: 64,
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let addr = server.local_addr().to_string();

    // 32 workers + the main thread: everyone connects before anyone
    // queries, so all 32 connections are provably concurrent.
    let barrier = Arc::new(std::sync::Barrier::new(33));
    let handles: Vec<_> = (0..32)
        .map(|cid| {
            let addr = addr.clone();
            let queries = queries.clone();
            let expected = expected.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                barrier.wait();
                for round in 0..3 {
                    for (qi, q) in queries.iter().enumerate() {
                        let got = client.query(q).expect("wire query");
                        assert_eq!(
                            got.rows, expected[qi],
                            "client {cid} round {round} diverged on `{q}`"
                        );
                    }
                }
            })
        })
        .collect();
    barrier.wait();
    assert_eq!(server.active_connections(), 32);
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
}
