//! Columnar block path — selective-filter scan throughput on sealed data.
//!
//! Loads a four-column table sized in whole 512-slot shard units, seals
//! every unit with one compaction pass, and measures the same prepared
//! selective-filter query with `columnar_enabled` off (row batch path)
//! and on (sealed blocks: vectorized range predicate, zone-map skipping,
//! late materialization). Two data layouts:
//!
//! * **clustered** — the filter column is insert-ordered, so zone maps
//!   exclude every non-matching unit outright; this is the layout the
//!   block path is built for and carries the acceptance gate.
//! * **uniform** — the filter column is uniform random, so every zone map
//!   straddles the predicate and the win is the vectorized sweep plus
//!   late materialization alone; reported for context, ungated.
//!
//! Acceptance gate for this reproduction: clustered selective-filter scan
//! throughput with columnar on must reach [`COLUMNAR_SPEEDUP_GATE`] times
//! the row path. Emits `results/columnar_scan.txt` and machine-readable
//! `results/BENCH_columnar.json`.

use std::fmt::Write as _;
use std::time::Instant;

use mb2_engine::{Database, DatabaseConfig};

use crate::report::{fmt, results_dir, Table};
use crate::Scale;

/// Required clustered selective-scan speedup, columnar on vs off.
pub const COLUMNAR_SPEEDUP_GATE: f64 = 2.0;

/// Slots per shard-map unit (the seal granule).
const UNIT: usize = 512;

/// Rows matched by the selective predicate, as a fraction of the table.
const SELECTIVITY: f64 = 0.02;

struct Layout {
    name: &'static str,
    /// Filter-column value for row `i` of `n`.
    key: fn(i: usize, n: usize) -> i64,
}

/// Build, load, and seal one table; return the database.
fn build(rows: usize, layout: &Layout) -> Database {
    let cfg = DatabaseConfig {
        wal_enabled: false,
        ..DatabaseConfig::bench()
    };
    let db = Database::new(cfg).expect("database");
    db.execute("CREATE TABLE wide (a INT, b INT, c INT, d INT)")
        .unwrap();
    let mut i = 0;
    while i < rows {
        let n = 256.min(rows - i);
        let vals: Vec<String> = (i..i + n)
            .map(|j| {
                let k = (layout.key)(j, rows);
                format!("({j}, {k}, {}, {})", j % 97, j % 13)
            })
            .collect();
        db.execute(&format!("INSERT INTO wide VALUES {}", vals.join(", ")))
            .unwrap();
        i += n;
    }
    let report = db.compact_now();
    assert!(
        report.units_sealed >= rows / UNIT,
        "expected every full unit sealed, got {report:?}"
    );
    db
}

/// Median swept rows/sec for `query` over `reps` timed repetitions (one
/// warmup rep discarded).
fn measure(db: &Database, sql: &str, rows: usize, reps: usize) -> (f64, usize) {
    let plan = db.prepare(sql).expect("prepare scan");
    let mut rates = Vec::with_capacity(reps);
    let mut matched = 0usize;
    for rep in 0..=reps {
        let t0 = Instant::now();
        let result = db.execute_plan(&plan, None).expect("scan");
        let secs = t0.elapsed().as_secs_f64();
        matched = result.rows.len();
        if rep > 0 {
            rates.push(rows as f64 / secs);
        }
    }
    rates.sort_by(|a, b| a.total_cmp(b));
    (rates[rates.len() / 2], matched)
}

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Columnar block path — selective scan throughput on sealed data\n\n");

    let units = scale.pick(16, 64);
    let rows = units * UNIT;
    let reps = scale.pick(5, 9);

    let layouts = [
        Layout {
            name: "clustered",
            key: |i, _| i as i64,
        },
        Layout {
            name: "uniform",
            // Multiplicative hash scatters keys uniformly over [0, n).
            key: |i, n| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) % n as u64) as i64,
        },
    ];

    let mut table = Table::new(
        format!("swept rows/sec, {rows} sealed rows (median of {reps})"),
        &["layout", "query", "row path", "columnar", "speedup"],
    );
    let mut json_rows = Vec::new();
    let mut clustered_selective_speedup = 0.0;
    for layout in &layouts {
        let db = build(rows, layout);
        let hi = (rows as f64 * SELECTIVITY) as i64;
        let mid = rows as i64 / 2;
        let queries = [
            (
                "selective",
                format!(
                    "SELECT a, d FROM wide WHERE b >= {mid} AND b < {}",
                    mid + hi
                ),
            ),
            ("full", "SELECT a, d FROM wide".to_string()),
        ];
        for (qname, sql) in &queries {
            db.set_columnar_enabled(false);
            let (row_rate, row_matched) = measure(&db, sql, rows, reps);
            db.set_columnar_enabled(true);
            let (col_rate, col_matched) = measure(&db, sql, rows, reps);
            assert_eq!(
                row_matched, col_matched,
                "result cardinality drifted: {} {qname}",
                layout.name
            );
            let speedup = col_rate / row_rate;
            if layout.name == "clustered" && *qname == "selective" {
                clustered_selective_speedup = speedup;
            }
            table.row(&[
                layout.name.to_string(),
                qname.to_string(),
                fmt(row_rate),
                fmt(col_rate),
                format!("{speedup:.2}x"),
            ]);
            json_rows.push(format!(
                "    {{\"layout\": \"{}\", \"query\": \"{qname}\", \
                 \"row_rows_per_sec\": {row_rate:.1}, \
                 \"columnar_rows_per_sec\": {col_rate:.1}, \
                 \"speedup\": {speedup:.4}, \"matched\": {row_matched}}}",
                layout.name
            ));
        }
        db.shutdown();
    }
    out.push_str(&table.render());

    let pass = clustered_selective_speedup >= COLUMNAR_SPEEDUP_GATE;
    let verdict = if pass { "PASS" } else { "FAIL" };
    let _ = writeln!(
        out,
        "\nclustered selective-scan speedup: {clustered_selective_speedup:.2}x \
         (gate {COLUMNAR_SPEEDUP_GATE:.1}x) — {verdict}"
    );

    // Machine-readable companion: hand-rolled JSON, no serde dependency.
    let mut json = String::from("{\n  \"experiment\": \"columnar_scan\",\n");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"selectivity\": {SELECTIVITY},");
    let _ = writeln!(
        json,
        "  \"clustered_selective_speedup\": {clustered_selective_speedup:.4},"
    );
    let _ = writeln!(json, "  \"gate\": {COLUMNAR_SPEEDUP_GATE},");
    let _ = writeln!(json, "  \"gate_pass\": {pass},");
    json.push_str("  \"results\": [\n");
    json.push_str(&json_rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    let path = results_dir().join("BENCH_columnar.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        let _ = writeln!(out, "\njson: {}", path.display());
    }

    out
}
