//! Fig. 8 — Interference-model accuracy: actual vs estimated average query
//! runtime increment under concurrency.
//!
//! Protocol mirrors §8.4: train the interference model from concurrent
//! runners on odd thread counts in interpretive mode over one TPC-H size,
//! then test on even thread counts in compiled mode (8a) and on other
//! dataset sizes (8b).

use std::sync::Arc;
use std::time::Duration;

use mb2_core::runners::concurrent::{measure_isolated, run_concurrent_window, ConcurrentRunConfig};
use mb2_core::{BehaviorModels, WorkloadForecast};
use mb2_engine::exec::ExecutionMode;
use mb2_engine::Database;
use mb2_workloads::tpch::Tpch;
use mb2_workloads::Workload;

use crate::experiments::common::tpch_templates;
use crate::pipeline::{build_interference_model, build_ou_models, PipelineConfig};
use crate::report::{fmt, Table};
use crate::Scale;

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Fig. 8 — interference model accuracy (runtime increment)\n\n");

    let cfg = PipelineConfig::for_scale(scale);
    let built = build_ou_models(&cfg).expect("pipeline");

    // Training database and windows (interpretive mode, odd thread counts).
    let train_scale = scale.pick(0.05, 0.25);
    let tpch = Tpch::with_scale(train_scale);
    let db = Arc::new(Database::open());
    tpch.load(&db).expect("tpch");
    db.set_execution_mode(ExecutionMode::Interpret);
    let templates = tpch_templates(&db, &tpch);
    let window = Duration::from_millis(scale.pick(400, 1200));
    let (interference, _, rows) = build_interference_model(
        &db,
        &templates,
        &built.models,
        &scale.pick(vec![1usize, 3, 5], vec![1, 3, 5, 7, 9, 13, 17]),
        window,
        11,
    )
    .expect("interference training");
    out.push_str(&format!(
        "interference model: {} training rows, chosen algorithm {}, \
         validation rel-err {:.3}\n\n",
        rows,
        interference.chosen.name(),
        interference.validation_error
    ));
    let behavior = BehaviorModels::new(built.models, Some(interference));

    // 8a: generalize to even thread counts, compiled mode.
    db.set_execution_mode(ExecutionMode::Compiled);
    let mut table = Table::new(
        "Fig. 8a — avg query runtime increment vs concurrent threads (compiled mode; trained on odd threads, interpret mode)",
        &["threads", "actual", "estimated"],
    );
    for &threads in &scale.pick(vec![2usize, 4], vec![2, 4, 8, 16]) {
        let (actual, estimated) = increments(&db, &templates, &behavior, threads, window);
        table.row(&[threads.to_string(), fmt(actual), fmt(estimated)]);
    }
    out.push_str(&table.render());
    out.push('\n');

    // 8b: generalize to other dataset sizes at a fixed thread count.
    let mut table = Table::new(
        format!("Fig. 8b — increment across dataset sizes (trained at {train_scale}x)"),
        &["tpch scale", "actual", "estimated"],
    );
    for &ds in &scale.pick(vec![0.01, 0.1], vec![0.05, 1.0]) {
        let tpch2 = Tpch::with_scale(ds);
        let db2 = Arc::new(Database::open());
        tpch2.load(&db2).expect("tpch");
        let templates2 = tpch_templates(&db2, &tpch2);
        let (actual, estimated) = increments(&db2, &templates2, &behavior, 4, window);
        table.row(&[format!("{ds}x"), fmt(actual), fmt(estimated)]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape (paper Fig. 8): estimated increments track actual \
         within ~20%, growing with thread count; small datasets are noisiest.\n",
    );
    out
}

/// Measure actual and predicted runtime increments for one configuration.
fn increments(
    db: &Arc<Database>,
    templates: &[mb2_core::QueryTemplate],
    behavior: &BehaviorModels,
    threads: usize,
    window: Duration,
) -> (f64, f64) {
    let isolated_actual = measure_isolated(db, templates, 3).expect("isolated");
    let outcome = run_concurrent_window(
        db,
        templates,
        &behavior.ou_models,
        &ConcurrentRunConfig {
            threads,
            duration: window,
            rate_per_thread: None,
            seed: 13,
        },
    )
    .expect("concurrent window");

    // Actual increment: weighted by completed executions.
    let mut actual_num = 0.0;
    let mut pred_num = 0.0;
    let mut weight = 0.0;
    // Forecast with the measured average arrival rates (the §8.4 input).
    let mut forecast = WorkloadForecast::new(templates.to_vec(), threads);
    let rates: Vec<f64> = outcome
        .per_template_count
        .iter()
        .map(|&c| c as f64 / window.as_secs_f64())
        .collect();
    forecast.push_interval(window.as_secs_f64(), rates);
    let prediction = behavior.predict_interval(&forecast, 0, &db.knobs(), None);

    for (i, t) in prediction.per_template.iter().enumerate() {
        let count = outcome.per_template_count[i] as f64;
        if count == 0.0 || isolated_actual[i] <= 0.0 || t.isolated_us <= 0.0 {
            continue;
        }
        let actual_inc = (outcome.per_template_actual_us[i] / isolated_actual[i] - 1.0).max(0.0);
        let pred_inc = (t.adjusted_us / t.isolated_us - 1.0).max(0.0);
        actual_num += actual_inc * count;
        pred_num += pred_inc * count;
        weight += count;
    }
    if weight == 0.0 {
        (0.0, 0.0)
    } else {
        (actual_num / weight, pred_num / weight)
    }
}
