//! Segmented table heap.
//!
//! A table is an append-only array of slots, organized into fixed-size
//! segments so concurrent appends never invalidate existing slot references.
//! Each slot holds a [`VersionChain`] behind a light mutex.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use mb2_common::types::Tuple;
use mb2_common::{fault, DbError, DbResult, FaultInjector, Schema};

use crate::ts::Ts;
use crate::version::VersionChain;

/// Identifies a table within the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Physical tuple address: segment index + offset within the segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId {
    pub segment: u32,
    pub offset: u32,
}

/// Number of slots per segment.
pub const SEGMENT_SIZE: usize = 4096;

struct Segment {
    chains: Vec<Mutex<VersionChain>>,
}

impl Segment {
    fn new() -> Segment {
        let mut chains = Vec::with_capacity(SEGMENT_SIZE);
        chains.resize_with(SEGMENT_SIZE, || Mutex::new(VersionChain::default()));
        Segment { chains }
    }
}

/// A table heap with MVCC slots.
pub struct Table {
    pub id: TableId,
    pub name: String,
    schema: Schema,
    segments: RwLock<Vec<Arc<Segment>>>,
    /// Total slots ever allocated (tail pointer).
    next_slot: AtomicUsize,
    /// Approximate count of live (committed, non-deleted) tuples; maintained
    /// by commit/GC bookkeeping in higher layers calling the delta methods.
    live_tuples: AtomicUsize,
    /// Approximate total version count across all slots.
    version_count: AtomicUsize,
    /// Fault injection for chaos tests (`storage.segment_alloc` point);
    /// `None` in production.
    faults: RwLock<Option<Arc<FaultInjector>>>,
}

impl Table {
    pub fn new(id: TableId, name: impl Into<String>, schema: Schema) -> Table {
        Table {
            id,
            name: name.into(),
            schema,
            segments: RwLock::new(Vec::new()),
            next_slot: AtomicUsize::new(0),
            live_tuples: AtomicUsize::new(0),
            version_count: AtomicUsize::new(0),
            faults: RwLock::new(None),
        }
    }

    /// Attach (or detach) a fault injector consulted when the segment
    /// directory grows.
    pub fn set_faults(&self, faults: Option<Arc<FaultInjector>>) {
        *self.faults.write() = faults;
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of slots allocated so far (upper bound on tuple count).
    pub fn num_slots(&self) -> usize {
        self.next_slot.load(Ordering::Acquire)
    }

    /// Approximate live tuple count (used by the optimizer's statistics).
    pub fn live_tuples(&self) -> usize {
        self.live_tuples.load(Ordering::Relaxed)
    }

    /// Approximate number of versions (live + garbage) across the heap.
    pub fn version_count(&self) -> usize {
        self.version_count.load(Ordering::Relaxed)
    }

    /// Look up the segment for `slot`, or `None` for an address outside the
    /// heap. Out-of-range slots are a client-reachable condition (a stale
    /// `SlotId` held across DDL, a corrupted index entry), so the accessors
    /// built on this return errors instead of panicking — one bad request
    /// must not take down a server worker.
    fn try_segment(&self, idx: u32) -> Option<Arc<Segment>> {
        self.segments.read().get(idx as usize).cloned()
    }

    fn try_chain<R>(&self, slot: SlotId, f: impl FnOnce(&mut VersionChain) -> R) -> Option<R> {
        if slot.offset as usize >= SEGMENT_SIZE {
            return None;
        }
        let seg = self.try_segment(slot.segment)?;
        let mut chain = seg.chains[slot.offset as usize].lock();
        Some(f(&mut chain))
    }

    fn chain<R>(&self, slot: SlotId, f: impl FnOnce(&mut VersionChain) -> R) -> DbResult<R> {
        self.try_chain(slot, f).ok_or_else(|| {
            DbError::Storage(format!(
                "slot ({}, {}) is outside table '{}' ({} slots)",
                slot.segment,
                slot.offset,
                self.name,
                self.num_slots()
            ))
        })
    }

    /// Validate a tuple against the schema (arity; types are permissive with
    /// NULL allowed everywhere).
    fn check_tuple(&self, tuple: &Tuple) -> DbResult<()> {
        if tuple.len() != self.schema.len() {
            return Err(DbError::Storage(format!(
                "tuple arity {} does not match schema arity {} for table '{}'",
                tuple.len(),
                self.schema.len(),
                self.name
            )));
        }
        Ok(())
    }

    /// Insert a tuple as an uncommitted version owned by `txn`.
    pub fn insert(&self, tuple: Tuple, txn: Ts) -> DbResult<SlotId> {
        self.check_tuple(&tuple)?;
        let idx = self.next_slot.fetch_add(1, Ordering::AcqRel);
        let segment = (idx / SEGMENT_SIZE) as u32;
        let offset = (idx % SEGMENT_SIZE) as u32;
        {
            // Grow the segment directory if needed.
            let need = segment as usize + 1;
            if need > self.segments.read().len() {
                if let Some(inj) = self.faults.read().clone() {
                    if let Some(msg) = inj.check(fault::points::STORAGE_SEGMENT_ALLOC) {
                        // The reserved slot index stays a hole: no chain is
                        // ever installed, so scans skip it like any other
                        // never-written slot.
                        return Err(DbError::Storage(msg));
                    }
                }
            }
            let mut segs = self.segments.write();
            while segs.len() < need {
                segs.push(Arc::new(Segment::new()));
            }
        }
        let slot = SlotId { segment, offset };
        self.chain(slot, |c| {
            *c = VersionChain::new_insert(tuple, txn);
        })?;
        self.version_count.fetch_add(1, Ordering::Relaxed);
        Ok(slot)
    }

    /// Read the version of `slot` visible at `read_ts` to transaction `own`.
    /// Out-of-range slots read as absent, like any other invisible tuple.
    pub fn read(&self, slot: SlotId, read_ts: Ts, own: Ts) -> Option<Arc<Tuple>> {
        self.try_chain(slot, |c| c.visible(read_ts, own).cloned())
            .flatten()
    }

    /// Update `slot`, installing a new uncommitted version. Returns the old
    /// data for undo logging.
    pub fn update(&self, slot: SlotId, tuple: Tuple, txn: Ts, read_ts: Ts) -> DbResult<Arc<Tuple>> {
        self.check_tuple(&tuple)?;
        let old = self
            .chain(slot, |c| c.install(Some(tuple), txn, read_ts))?
            .map_err(|e| self.annotate(e))?;
        self.version_count.fetch_add(1, Ordering::Relaxed);
        old.ok_or_else(|| DbError::Storage("update produced no prior version".into()))
    }

    /// Delete `slot` (install a tombstone). Returns the old data.
    pub fn delete(&self, slot: SlotId, txn: Ts, read_ts: Ts) -> DbResult<Arc<Tuple>> {
        let old = self
            .chain(slot, |c| c.install(None, txn, read_ts))?
            .map_err(|e| self.annotate(e))?;
        self.version_count.fetch_add(1, Ordering::Relaxed);
        old.ok_or_else(|| DbError::Storage("delete of already-deleted tuple".into()))
    }

    fn annotate(&self, e: DbError) -> DbError {
        match e {
            DbError::WriteConflict { .. } => DbError::WriteConflict {
                table: self.name.clone(),
            },
            other => other,
        }
    }

    /// Stamp the uncommitted version of `txn` at `slot` with `commit_ts`.
    /// `delta_live` is +1 for inserts, -1 for deletes, 0 for updates.
    pub fn commit_slot(&self, slot: SlotId, txn: Ts, commit_ts: Ts, delta_live: i64) {
        // Slots in a commit/abort write set were produced by this table's
        // `insert`, so they are always in range; tolerate rather than panic.
        let _ = self.try_chain(slot, |c| c.commit(txn, commit_ts));
        if delta_live > 0 {
            self.live_tuples
                .fetch_add(delta_live as usize, Ordering::Relaxed);
        } else if delta_live < 0 {
            let d = (-delta_live) as usize;
            let mut cur = self.live_tuples.load(Ordering::Relaxed);
            while cur > 0 {
                match self.live_tuples.compare_exchange_weak(
                    cur,
                    cur.saturating_sub(d),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Roll back `txn`'s uncommitted version at `slot`.
    pub fn abort_slot(&self, slot: SlotId, txn: Ts) {
        if self
            .try_chain(slot, |c| {
                c.abort(txn);
            })
            .is_none()
        {
            return; // out-of-range slot: nothing to roll back
        }
        // Saturating for the same reason as `gc`: the gauge is advisory and
        // must never wrap, even if bookkeeping races make it momentarily
        // inconsistent with the heap.
        let _ = self
            .version_count
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Visit every slot's visible version at `read_ts`. The callback gets the
    /// slot id and a borrowed tuple; returning `false` stops the scan early.
    pub fn scan_visible(&self, read_ts: Ts, own: Ts, mut f: impl FnMut(SlotId, &Tuple) -> bool) {
        self.scan_visible_from(0, read_ts, own, |slot, arc| f(slot, arc));
    }

    /// Resumable zero-copy scan: visit visible versions starting at global
    /// slot index `start`. The callback receives the slot id and the `Arc`'d
    /// version, so accepting a tuple is a refcount bump and rejecting one
    /// (a pushed-down predicate deciding inside the visitor) costs nothing —
    /// no tuple is ever deep-cloned by the scan itself. Returning `false` is
    /// the continuation signal: the scan stops *after* that tuple (batch
    /// full, LIMIT satisfied) and the returned global slot index can be
    /// passed back as `start` to resume where it left off. When the heap is
    /// exhausted the return value equals the slot count at scan time.
    pub fn scan_visible_from(
        &self,
        start: usize,
        read_ts: Ts,
        own: Ts,
        f: impl FnMut(SlotId, &Arc<Tuple>) -> bool,
    ) -> usize {
        self.scan_visible_range(start, usize::MAX, read_ts, own, f)
    }

    /// Bounded variant of [`Table::scan_visible_from`]: visit visible
    /// versions in the half-open global slot range `[start, end)`. This is
    /// the morsel API — parallel scans carve the heap into fixed-size slot
    /// ranges and hand each to a worker. The bound applies to *slots*, not
    /// visible tuples, so disjoint ranges partition the heap exactly and the
    /// concatenation of per-range visits in range order equals one
    /// `scan_visible_from(start)` pass. Returns the resume index exactly as
    /// the unbounded scan does, clamped to `end`.
    pub fn scan_visible_range(
        &self,
        start: usize,
        end: usize,
        read_ts: Ts,
        own: Ts,
        mut f: impl FnMut(SlotId, &Arc<Tuple>) -> bool,
    ) -> usize {
        let total = self.num_slots().min(end);
        if start >= total {
            return total;
        }
        let segs = self.segments.read().clone();
        let mut idx = start;
        while idx < total {
            let si = idx / SEGMENT_SIZE;
            let off = idx % SEGMENT_SIZE;
            let chain = segs[si].chains[off].lock();
            if let Some(data) = chain.visible(read_ts, own) {
                let slot = SlotId {
                    segment: si as u32,
                    offset: off as u32,
                };
                if !f(slot, data) {
                    return idx + 1;
                }
            }
            idx += 1;
        }
        total
    }

    /// Garbage-collect version chains against the watermark. Returns the
    /// number of versions reclaimed.
    pub fn gc(&self, watermark: Ts) -> usize {
        let total = self.num_slots();
        let segs = self.segments.read().clone();
        let mut reclaimed = 0usize;
        for (si, seg) in segs.iter().enumerate() {
            let upper = if (si + 1) * SEGMENT_SIZE <= total {
                SEGMENT_SIZE
            } else {
                total - si * SEGMENT_SIZE
            };
            for off in 0..upper {
                let mut chain = seg.chains[off].lock();
                reclaimed += chain.prune(watermark);
            }
        }
        if reclaimed > 0 {
            // Single atomic read-modify-write: a separate `load` + `fetch_sub`
            // is a TOCTOU race — a concurrent `abort_slot` decrement landing
            // between the two underflows the gauge and wraps it to huge
            // values. Saturate inside the CAS loop instead.
            let _ = self
                .version_count
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(reclaimed))
                });
        }
        reclaimed
    }

    /// Approximate heap size in bytes (live + garbage versions).
    pub fn approx_bytes(&self) -> usize {
        let total = self.num_slots();
        let segs = self.segments.read().clone();
        let mut bytes = 0usize;
        for (si, seg) in segs.iter().enumerate() {
            let upper = if (si + 1) * SEGMENT_SIZE <= total {
                SEGMENT_SIZE
            } else {
                total - si * SEGMENT_SIZE
            };
            for off in 0..upper {
                bytes += seg.chains[off].lock().approx_bytes();
            }
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::{Column, DataType, Value};

    fn table() -> Table {
        Table::new(
            TableId(1),
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
            ]),
        )
    }

    fn tup(a: i64, b: i64) -> Tuple {
        vec![Value::Int(a), Value::Int(b)]
    }

    #[test]
    fn insert_commit_read() {
        let t = table();
        let slot = t.insert(tup(1, 2), Ts::txn(1)).unwrap();
        t.commit_slot(slot, Ts::txn(1), Ts(10), 1);
        assert_eq!(t.read(slot, Ts(10), Ts::txn(2)).unwrap()[0], Value::Int(1));
        assert!(t.read(slot, Ts(9), Ts::txn(2)).is_none());
        assert_eq!(t.live_tuples(), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let t = table();
        assert!(t.insert(vec![Value::Int(1)], Ts::txn(1)).is_err());
    }

    #[test]
    fn update_and_abort_round_trip() {
        let t = table();
        let slot = t.insert(tup(1, 1), Ts::txn(1)).unwrap();
        t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        let old = t.update(slot, tup(2, 2), Ts::txn(2), Ts(6)).unwrap();
        assert_eq!(old[0], Value::Int(1));
        t.abort_slot(slot, Ts::txn(2));
        assert_eq!(t.read(slot, Ts(10), Ts::txn(3)).unwrap()[0], Value::Int(1));
    }

    #[test]
    fn conflict_names_table() {
        let t = table();
        let slot = t.insert(tup(1, 1), Ts::txn(1)).unwrap();
        t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        t.update(slot, tup(2, 2), Ts::txn(2), Ts(6)).unwrap();
        match t.update(slot, tup(3, 3), Ts::txn(3), Ts(6)) {
            Err(DbError::WriteConflict { table }) => assert_eq!(table, "t"),
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn scan_sees_committed_only() {
        let t = table();
        for i in 0..10 {
            let slot = t.insert(tup(i, i), Ts::txn(1)).unwrap();
            t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        }
        // One uncommitted insert from another transaction.
        t.insert(tup(99, 99), Ts::txn(2)).unwrap();
        let mut seen = Vec::new();
        t.scan_visible(Ts(5), Ts::txn(3), |_, tuple| {
            seen.push(tuple[0].as_i64().unwrap());
            true
        });
        assert_eq!(seen.len(), 10);
        assert!(!seen.contains(&99));
    }

    #[test]
    fn scan_early_stop() {
        let t = table();
        for i in 0..10 {
            let slot = t.insert(tup(i, i), Ts::txn(1)).unwrap();
            t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        }
        let mut count = 0;
        t.scan_visible(Ts(5), Ts::txn(2), |_, _| {
            count += 1;
            count < 3
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn segments_grow_across_boundary() {
        let t = table();
        let n = SEGMENT_SIZE + 10;
        for i in 0..n {
            let slot = t.insert(tup(i as i64, 0), Ts::txn(1)).unwrap();
            t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        }
        assert_eq!(t.num_slots(), n);
        let mut count = 0;
        t.scan_visible(Ts(5), Ts::txn(2), |_, _| {
            count += 1;
            true
        });
        assert_eq!(count, n);
    }

    #[test]
    fn resumable_scan_continues_where_it_stopped() {
        let t = table();
        for i in 0..10 {
            let slot = t.insert(tup(i, i), Ts::txn(1)).unwrap();
            t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        }
        // First batch of 4, stop, then resume for the rest.
        let mut seen = Vec::new();
        let pos = t.scan_visible_from(0, Ts(5), Ts::txn(2), |_, tuple| {
            seen.push(tuple[0].as_i64().unwrap());
            seen.len() < 4
        });
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(pos, 4);
        let end = t.scan_visible_from(pos, Ts(5), Ts::txn(2), |_, tuple| {
            seen.push(tuple[0].as_i64().unwrap());
            true
        });
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(end, 10);
        // Resuming at the end is a no-op.
        assert_eq!(t.scan_visible_from(end, Ts(5), Ts::txn(2), |_, _| true), 10);
    }

    #[test]
    fn range_scans_partition_the_heap_exactly() {
        let t = table();
        for i in 0..25 {
            let slot = t.insert(tup(i, i), Ts::txn(1)).unwrap();
            // Leave a third of the rows invisible at the read timestamp.
            let ts = if i % 3 == 0 { Ts(50) } else { Ts(5) };
            t.commit_slot(slot, Ts::txn(1), ts, 1);
        }
        let mut full = Vec::new();
        t.scan_visible_from(0, Ts(10), Ts::txn(2), |_, tuple| {
            full.push(tuple[0].as_i64().unwrap());
            true
        });
        // Concatenating disjoint morsel ranges in order must reproduce the
        // unbounded scan exactly, for any morsel size.
        for morsel in [1usize, 4, 7, 25, 100] {
            let mut pieced = Vec::new();
            let mut start = 0;
            while start < t.num_slots() {
                let end = start + morsel;
                let ret = t.scan_visible_range(start, end, Ts(10), Ts::txn(2), |_, tuple| {
                    pieced.push(tuple[0].as_i64().unwrap());
                    true
                });
                assert_eq!(ret, end.min(t.num_slots()));
                start = end;
            }
            assert_eq!(pieced, full, "morsel size {morsel}");
        }
    }

    #[test]
    fn range_scan_clamps_and_stops_early() {
        let t = table();
        for i in 0..10 {
            let slot = t.insert(tup(i, i), Ts::txn(1)).unwrap();
            t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        }
        // Range past the heap clamps to the slot count.
        let mut seen = Vec::new();
        let ret = t.scan_visible_range(8, 1000, Ts(5), Ts::txn(2), |_, tuple| {
            seen.push(tuple[0].as_i64().unwrap());
            true
        });
        assert_eq!(seen, vec![8, 9]);
        assert_eq!(ret, 10);
        // Early stop inside a range returns the resume index.
        let mut n = 0;
        let ret = t.scan_visible_range(2, 8, Ts(5), Ts::txn(2), |_, _| {
            n += 1;
            n < 2
        });
        assert_eq!(ret, 4);
        // Empty and inverted ranges visit nothing.
        let ret = t.scan_visible_range(5, 5, Ts(5), Ts::txn(2), |_, _| {
            panic!("empty range must not visit")
        });
        assert_eq!(ret, 5);
    }

    #[test]
    fn resumable_scan_skips_invisible_without_emitting() {
        let t = table();
        for i in 0..6 {
            let slot = t.insert(tup(i, i), Ts::txn(1)).unwrap();
            // Commit only even rows at ts 5; odd rows commit later.
            let ts = if i % 2 == 0 { Ts(5) } else { Ts(50) };
            t.commit_slot(slot, Ts::txn(1), ts, 1);
        }
        let mut seen = Vec::new();
        t.scan_visible_from(0, Ts(10), Ts::txn(2), |_, tuple| {
            seen.push(tuple[0].as_i64().unwrap());
            true
        });
        assert_eq!(seen, vec![0, 2, 4]);
    }

    #[test]
    fn gc_reclaims_old_versions() {
        let t = table();
        let slot = t.insert(tup(0, 0), Ts::txn(1)).unwrap();
        t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        for i in 0..5u64 {
            let txn = Ts::txn(10 + i);
            let ts = 10 + i;
            t.update(slot, tup(i as i64 + 1, 0), txn, Ts(ts - 1))
                .unwrap();
            t.commit_slot(slot, txn, Ts(ts), 0);
        }
        let before = t.version_count();
        let reclaimed = t.gc(Ts(14));
        assert!(reclaimed >= 4, "reclaimed {reclaimed}");
        assert!(t.version_count() < before);
        // Newest version still readable.
        assert_eq!(t.read(slot, Ts(20), Ts::txn(99)).unwrap()[0], Value::Int(5));
    }

    #[test]
    fn delete_decrements_live_count() {
        let t = table();
        let slot = t.insert(tup(1, 1), Ts::txn(1)).unwrap();
        t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        t.delete(slot, Ts::txn(2), Ts(6)).unwrap();
        t.commit_slot(slot, Ts::txn(2), Ts(7), -1);
        assert_eq!(t.live_tuples(), 0);
        assert!(t.read(slot, Ts(7), Ts::txn(3)).is_none());
    }

    #[test]
    fn concurrent_inserts_are_safe() {
        let t = Arc::new(table());
        let threads: Vec<_> = (0..4)
            .map(|ti| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let txn = Ts::txn((ti * 1000 + i) as u64 + 1);
                        let slot = t.insert(tup(i as i64, ti as i64), txn).unwrap();
                        t.commit_slot(slot, txn, Ts(100), 1);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.num_slots(), 2000);
        assert_eq!(t.live_tuples(), 2000);
    }

    #[test]
    fn gc_version_count_never_underflows_under_concurrent_aborts() {
        // Regression for the load+fetch_sub TOCTOU in `gc`: with GC racing
        // writers that abort (each abort decrements version_count), the old
        // two-step decrement could wrap the gauge to usize::MAX. Hammer the
        // race and assert the gauge stays sane throughout.
        let t = Arc::new(table());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        // Seed one committed row per writer thread so updates have a base.
        let mut slots = Vec::new();
        for i in 0..4i64 {
            let txn = Ts::txn(1000 + i as u64);
            let slot = t.insert(tup(i, 0), txn).unwrap();
            t.commit_slot(slot, txn, Ts(1), 1);
            slots.push(slot);
        }

        let writers: Vec<_> = (0..4usize)
            .map(|wi| {
                let t = t.clone();
                let stop = stop.clone();
                let slot = slots[wi];
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    let mut ts = 1u64;
                    while !stop.load(Ordering::Relaxed) {
                        let txn = Ts::txn(10_000 + wi as u64 * 1_000_000 + n);
                        if t.update(slot, tup(n as i64, 1), txn, Ts(ts)).is_ok() {
                            if n.is_multiple_of(2) {
                                // Committed garbage for GC to reclaim
                                // (batched fetch_update decrement) ...
                                ts += 1;
                                t.commit_slot(slot, txn, Ts(ts), 0);
                            } else {
                                // ... racing aborts (single decrements).
                                t.abort_slot(slot, txn);
                            }
                        }
                        n += 1;
                    }
                })
            })
            .collect();

        let gc_t = t.clone();
        let gc_stop = stop.clone();
        let gc_thread = std::thread::spawn(move || {
            while !gc_stop.load(Ordering::Relaxed) {
                gc_t.gc(Ts(u64::MAX >> 1));
                // The gauge must never wrap: anything close to usize::MAX
                // means a subtraction underflowed.
                assert!(
                    gc_t.version_count() < 1 << 32,
                    "version_count wrapped: {}",
                    gc_t.version_count()
                );
            }
        });

        std::thread::sleep(std::time::Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
        for th in writers {
            th.join().unwrap();
        }
        gc_thread.join().unwrap();
        assert!(t.version_count() < 1 << 32);
    }

    #[test]
    fn out_of_range_slot_errors_instead_of_panicking() {
        let t = table();
        let slot = t.insert(tup(1, 1), Ts::txn(1)).unwrap();
        t.commit_slot(slot, Ts::txn(1), Ts(5), 1);
        let bogus = SlotId {
            segment: 99,
            offset: 7,
        };
        assert!(t.read(bogus, Ts(10), Ts::txn(2)).is_none());
        assert!(matches!(
            t.update(bogus, tup(2, 2), Ts::txn(2), Ts(6)),
            Err(DbError::Storage(_))
        ));
        assert!(matches!(
            t.delete(bogus, Ts::txn(2), Ts(6)),
            Err(DbError::Storage(_))
        ));
        // Commit/abort of a bogus slot are tolerated no-ops.
        t.commit_slot(bogus, Ts::txn(2), Ts(7), 0);
        t.abort_slot(bogus, Ts::txn(2));
        // Offset beyond the segment width is also rejected.
        let wide = SlotId {
            segment: 0,
            offset: SEGMENT_SIZE as u32 + 1,
        };
        assert!(t.read(wide, Ts(10), Ts::txn(2)).is_none());
        // The real slot is untouched.
        assert_eq!(t.read(slot, Ts(10), Ts::txn(3)).unwrap()[0], Value::Int(1));
    }
}
