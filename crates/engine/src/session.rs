//! Sessions: multi-statement transactions over the SQL interface.

use mb2_common::{DbError, DbResult};
use mb2_exec::{OuRecorder, QueryResult};
use mb2_sql::{parse, Statement};
use mb2_txn::Transaction;

use crate::database::Database;

/// A client session with optional explicit transaction scope.
pub struct Session<'db> {
    db: &'db Database,
    txn: Option<Transaction>,
}

impl<'db> Session<'db> {
    pub fn new(db: &'db Database) -> Session<'db> {
        Session { db, txn: None }
    }

    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Execute a statement, honoring BEGIN/COMMIT/ROLLBACK.
    pub fn execute(&mut self, sql: &str) -> DbResult<QueryResult> {
        self.execute_recorded(sql, None)
    }

    pub fn execute_recorded(
        &mut self,
        sql: &str,
        recorder: Option<&dyn OuRecorder>,
    ) -> DbResult<QueryResult> {
        let stmt = parse(sql)?;
        match stmt {
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(DbError::Plan("nested BEGIN".into()));
                }
                self.txn = Some(self.db.begin());
                Ok(QueryResult::default())
            }
            Statement::Commit => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| DbError::Plan("COMMIT outside a transaction".into()))?;
                txn.commit()?;
                Ok(QueryResult::default())
            }
            Statement::Rollback => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| DbError::Plan("ROLLBACK outside a transaction".into()))?;
                txn.abort();
                Ok(QueryResult::default())
            }
            _ => match self.txn.as_mut() {
                Some(txn) => self.db.execute_in(sql, txn, recorder),
                None => self.db.execute_recorded(sql, recorder),
            },
        }
    }

    /// Execute a statement, streaming result batches to `on_batch` instead
    /// of materializing them. Honors the session's open transaction.
    /// Transaction control and DDL take the materializing path (they
    /// produce no result rows). Returns rows streamed / rows affected.
    pub fn execute_streaming(
        &mut self,
        sql: &str,
        recorder: Option<&dyn OuRecorder>,
        on_batch: &mut dyn FnMut(mb2_exec::Batch) -> DbResult<()>,
    ) -> DbResult<usize> {
        let stmt = parse(sql)?;
        match stmt {
            Statement::Begin | Statement::Commit | Statement::Rollback => self
                .execute_recorded(sql, recorder)
                .map(|r| r.rows_affected),
            _ => match self.txn.as_mut() {
                Some(txn) => {
                    let plan = mb2_sql::Planner::new(self.db.catalog()).plan(&stmt)?;
                    self.db
                        .execute_plan_streaming_in(&plan, txn, recorder, on_batch)
                }
                None => self.db.execute_streaming(sql, recorder, on_batch),
            },
        }
    }

    /// Abort any open transaction (also happens on drop).
    pub fn rollback_open(&mut self) {
        if let Some(txn) = self.txn.take() {
            txn.abort();
        }
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        self.rollback_open();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::Value;

    #[test]
    fn explicit_commit_makes_writes_visible() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let mut s = db.session();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        // Another autocommit reader doesn't see it yet.
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
            Value::Int(0)
        );
        // The session itself does (own writes).
        assert_eq!(
            s.execute("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
            Value::Int(1)
        );
        s.execute("COMMIT").unwrap();
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
            Value::Int(1)
        );
    }

    #[test]
    fn rollback_discards_writes() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let mut s = db.session();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        s.execute("ROLLBACK").unwrap();
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
            Value::Int(0)
        );
    }

    #[test]
    fn drop_rolls_back() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        {
            let mut s = db.session();
            s.execute("BEGIN").unwrap();
            s.execute("INSERT INTO t VALUES (1)").unwrap();
        }
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
            Value::Int(0)
        );
    }

    #[test]
    fn nested_begin_rejected() {
        let db = Database::open();
        let mut s = db.session();
        s.execute("BEGIN").unwrap();
        assert!(s.execute("BEGIN").is_err());
    }

    #[test]
    fn commit_without_begin_rejected() {
        let db = Database::open();
        let mut s = db.session();
        assert!(s.execute("COMMIT").is_err());
        assert!(s.execute("ROLLBACK").is_err());
    }

    #[test]
    fn autocommit_passthrough() {
        let db = Database::open();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let mut s = db.session();
        s.execute("INSERT INTO t VALUES (7)").unwrap();
        assert!(!s.in_transaction());
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
            Value::Int(1)
        );
    }
}
