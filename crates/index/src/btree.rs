//! In-memory B+Tree over composite [`Value`] keys with duplicate support.
//!
//! Nodes hold up to [`ORDER`] keys. Deletes are lazy (no rebalancing): an
//! emptied leaf stays in place until the next bulk rebuild, which is the
//! standard trade-off for in-memory research systems.

use mb2_common::types::tuple_size_bytes;
use mb2_common::Value;

/// Maximum keys per node.
pub const ORDER: usize = 64;

type Key = Vec<Value>;

#[derive(Debug)]
enum Node<V> {
    Internal {
        /// `keys[i]` is the smallest key in `children[i + 1]`.
        keys: Vec<Key>,
        children: Vec<Node<V>>,
    },
    Leaf {
        keys: Vec<Key>,
        /// Parallel to `keys`; each key may map to multiple values.
        values: Vec<Vec<V>>,
    },
}

/// The B+Tree. Not internally synchronized — see [`crate::Index`].
#[derive(Debug)]
pub struct BPlusTree<V> {
    root: Node<V>,
    len: usize,
}

impl<V: Clone> Default for BPlusTree<V> {
    fn default() -> Self {
        BPlusTree::new()
    }
}

fn cmp_keys(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = x.cmp_total(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

/// Compare a key against a (possibly shorter) bound, considering only the
/// bound's columns. A key that matches the bound on its full length compares
/// Equal regardless of trailing key columns.
fn cmp_prefix(key: &[Value], bound: &[Value]) -> std::cmp::Ordering {
    for (x, y) in key.iter().zip(bound) {
        let ord = x.cmp_total(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    if key.len() < bound.len() {
        std::cmp::Ordering::Less
    } else {
        std::cmp::Ordering::Equal
    }
}

impl<V: Clone> BPlusTree<V> {
    pub fn new() -> BPlusTree<V> {
        BPlusTree {
            root: Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
            },
            len: 0,
        }
    }

    /// Total number of (key, value) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value under a key (duplicates allowed).
    pub fn insert(&mut self, key: Key, value: V) {
        self.len += 1;
        if let Some((split_key, right)) = Self::insert_into(&mut self.root, key, value) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    keys: Vec::new(),
                    values: Vec::new(),
                },
            );
            self.root = Node::Internal {
                keys: vec![split_key],
                children: vec![old_root, right],
            };
        }
    }

    /// Returns `Some((first_key_of_right, right_node))` when the node split.
    fn insert_into(node: &mut Node<V>, key: Key, value: V) -> Option<(Key, Node<V>)> {
        match node {
            Node::Leaf { keys, values } => match keys.binary_search_by(|k| cmp_keys(k, &key)) {
                Ok(i) => {
                    values[i].push(value);
                    None
                }
                Err(i) => {
                    keys.insert(i, key);
                    values.insert(i, vec![value]);
                    if keys.len() > ORDER {
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_values = values.split_off(mid);
                        let split_key = right_keys[0].clone();
                        Some((
                            split_key,
                            Node::Leaf {
                                keys: right_keys,
                                values: right_values,
                            },
                        ))
                    } else {
                        None
                    }
                }
            },
            Node::Internal { keys, children } => {
                let child_idx = match keys.binary_search_by(|k| cmp_keys(k, &key)) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let split = Self::insert_into(&mut children[child_idx], key, value)?;
                let (split_key, right) = split;
                keys.insert(child_idx, split_key);
                children.insert(child_idx + 1, right);
                if keys.len() > ORDER {
                    let mid = keys.len() / 2;
                    // Key at `mid` moves up; right node takes keys after it.
                    let right_keys = keys.split_off(mid + 1);
                    let up_key = keys.pop().expect("mid key");
                    let right_children = children.split_off(mid + 1);
                    Some((
                        up_key,
                        Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        },
                    ))
                } else {
                    None
                }
            }
        }
    }

    /// All values stored under `key`.
    pub fn get(&self, key: &[Value]) -> Vec<V> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { keys, values } => {
                    return match keys.binary_search_by(|k| cmp_keys(k, key)) {
                        Ok(i) => values[i].clone(),
                        Err(_) => Vec::new(),
                    };
                }
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search_by(|k| cmp_keys(k, key)) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = &children[idx];
                }
            }
        }
    }

    /// Remove values matching `pred` under `key`; returns how many were
    /// removed.
    pub fn remove(&mut self, key: &[Value], pred: impl Fn(&V) -> bool) -> usize {
        let removed = Self::remove_in(&mut self.root, key, &pred);
        self.len -= removed;
        removed
    }

    fn remove_in(node: &mut Node<V>, key: &[Value], pred: &impl Fn(&V) -> bool) -> usize {
        match node {
            Node::Leaf { keys, values } => {
                if let Ok(i) = keys.binary_search_by(|k| cmp_keys(k, key)) {
                    let before = values[i].len();
                    values[i].retain(|v| !pred(v));
                    let removed = before - values[i].len();
                    if values[i].is_empty() {
                        keys.remove(i);
                        values.remove(i);
                    }
                    removed
                } else {
                    0
                }
            }
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search_by(|k| cmp_keys(k, key)) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                Self::remove_in(&mut children[idx], key, pred)
            }
        }
    }

    /// Visit all entries with `lo <= key <= hi` in key order; the callback
    /// returns `false` to stop early.
    pub fn range(&self, lo: &[Value], hi: &[Value], mut f: impl FnMut(&[Value], &V) -> bool) {
        Self::range_in(&self.root, lo, hi, &mut f);
    }

    /// Prefix-range scan: visit entries whose key *prefix* (truncated to the
    /// bound's length) lies within `lo..=hi`. With `lo == hi == [v1..vk]`
    /// this yields every key starting with that k-column prefix — the
    /// composite-index point-lookup the planner emits.
    pub fn range_prefix(
        &self,
        lo: &[Value],
        hi: &[Value],
        mut f: impl FnMut(&[Value], &V) -> bool,
    ) {
        Self::range_prefix_in(&self.root, lo, hi, &mut f);
    }

    fn range_prefix_in(
        node: &Node<V>,
        lo: &[Value],
        hi: &[Value],
        f: &mut impl FnMut(&[Value], &V) -> bool,
    ) -> bool {
        match node {
            Node::Leaf { keys, values } => {
                let start = keys.partition_point(|k| cmp_prefix(k, lo) == std::cmp::Ordering::Less);
                for i in start..keys.len() {
                    if cmp_prefix(&keys[i], hi) == std::cmp::Ordering::Greater {
                        return false;
                    }
                    for v in &values[i] {
                        if !f(&keys[i], v) {
                            return false;
                        }
                    }
                }
                true
            }
            Node::Internal { keys, children } => {
                // Keys with a prefix equal to `lo` can sit on either side of
                // a separator whose prefix equals `lo`, so descend from the
                // first separator that is not prefix-less than lo.
                let start = keys.partition_point(|k| cmp_prefix(k, lo) == std::cmp::Ordering::Less);
                for idx in start..children.len() {
                    if idx > 0 && cmp_prefix(&keys[idx - 1], hi) == std::cmp::Ordering::Greater {
                        return true;
                    }
                    if !Self::range_prefix_in(&children[idx], lo, hi, f) {
                        return false;
                    }
                }
                true
            }
        }
    }

    fn range_in(
        node: &Node<V>,
        lo: &[Value],
        hi: &[Value],
        f: &mut impl FnMut(&[Value], &V) -> bool,
    ) -> bool {
        match node {
            Node::Leaf { keys, values } => {
                let start = keys.partition_point(|k| cmp_keys(k, lo) == std::cmp::Ordering::Less);
                for i in start..keys.len() {
                    if cmp_keys(&keys[i], hi) == std::cmp::Ordering::Greater {
                        return false;
                    }
                    for v in &values[i] {
                        if !f(&keys[i], v) {
                            return false;
                        }
                    }
                }
                true
            }
            Node::Internal { keys, children } => {
                // Separators <= lo route right, so child `start` is the one
                // whose key range contains `lo`.
                let start =
                    keys.partition_point(|k| cmp_keys(k, lo) != std::cmp::Ordering::Greater);
                for idx in start..children.len() {
                    // Prune children entirely above hi.
                    if idx > 0 && cmp_keys(&keys[idx - 1], hi) == std::cmp::Ordering::Greater {
                        return true;
                    }
                    if !Self::range_in(&children[idx], lo, hi, f) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Build a tree from entries already sorted by key (duplicate keys must
    /// be adjacent). Used by the parallel bulk builder.
    pub fn bulk_load(sorted: Vec<(Key, V)>) -> BPlusTree<V> {
        let mut tree = BPlusTree::new();
        if sorted.is_empty() {
            return tree;
        }
        let total = sorted.len();
        // Group duplicates.
        let mut grouped_keys: Vec<Key> = Vec::new();
        let mut grouped_values: Vec<Vec<V>> = Vec::new();
        for (k, v) in sorted {
            if grouped_keys
                .last()
                .is_some_and(|last| cmp_keys(last, &k) == std::cmp::Ordering::Equal)
            {
                grouped_values.last_mut().expect("non-empty").push(v);
            } else {
                grouped_keys.push(k);
                grouped_values.push(vec![v]);
            }
        }
        // Build leaves at ~3/4 fill.
        let per_leaf = ORDER * 3 / 4;
        let mut level: Vec<(Key, Node<V>)> = Vec::new();
        let mut i = 0;
        while i < grouped_keys.len() {
            let end = (i + per_leaf).min(grouped_keys.len());
            let keys: Vec<Key> = grouped_keys[i..end].to_vec();
            let values: Vec<Vec<V>> = grouped_values[i..end].to_vec();
            level.push((keys[0].clone(), Node::Leaf { keys, values }));
            i = end;
        }
        // Build internal levels bottom-up.
        while level.len() > 1 {
            let mut next: Vec<(Key, Node<V>)> = Vec::new();
            let mut j = 0;
            let per_node = ORDER * 3 / 4 + 1;
            while j < level.len() {
                let end = (j + per_node).min(level.len());
                let group = level.drain(..end - j).collect::<Vec<_>>();
                let first_key = group[0].0.clone();
                let mut keys = Vec::with_capacity(group.len() - 1);
                let mut children = Vec::with_capacity(group.len());
                for (gi, (k, node)) in group.into_iter().enumerate() {
                    if gi > 0 {
                        keys.push(k);
                    }
                    children.push(node);
                }
                next.push((first_key, Node::Internal { keys, children }));
                j = 0; // we drained, restart at front
            }
            level = next;
        }
        tree.root = level.pop().expect("non-empty level").1;
        tree.len = total;
        tree
    }

    /// Approximate memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        fn walk<V>(node: &Node<V>) -> usize {
            match node {
                Node::Leaf { keys, values } => {
                    keys.iter().map(|k| tuple_size_bytes(k)).sum::<usize>()
                        + values.iter().map(|v| 24 + v.len() * 16).sum::<usize>()
                }
                Node::Internal { keys, children } => {
                    keys.iter().map(|k| tuple_size_bytes(k)).sum::<usize>()
                        + children.iter().map(walk).sum::<usize>()
                        + children.len() * 8
                }
            }
        }
        walk(&self.root) + 32
    }

    /// Depth of the tree (1 = just a root leaf).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            d += 1;
            node = &children[0];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ik(v: i64) -> Vec<Value> {
        vec![Value::Int(v)]
    }

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new();
        for i in 0..10 {
            t.insert(ik(i), i * 10);
        }
        assert_eq!(t.get(&ik(5)), vec![50]);
        assert_eq!(t.get(&ik(99)), Vec::<i64>::new());
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn survives_splits_with_many_keys() {
        let mut t = BPlusTree::new();
        let n = 10_000i64;
        // Insert in a scrambled order.
        for i in 0..n {
            let k = (i * 7919) % n;
            t.insert(ik(k), k);
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.depth() > 1);
        for probe in [0, 1, 1234, 9998, 9999] {
            assert_eq!(t.get(&ik(probe)), vec![probe], "probe {probe}");
        }
    }

    #[test]
    fn duplicates_accumulate() {
        let mut t = BPlusTree::new();
        t.insert(ik(1), "a");
        t.insert(ik(1), "b");
        assert_eq!(t.get(&ik(1)).len(), 2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn range_scan_in_order() {
        let mut t = BPlusTree::new();
        for i in (0..1000).rev() {
            t.insert(ik(i), i);
        }
        let mut seen = Vec::new();
        t.range(&ik(100), &ik(199), |_, &v| {
            seen.push(v);
            true
        });
        assert_eq!(seen, (100..200).collect::<Vec<_>>());
    }

    #[test]
    fn range_early_stop() {
        let mut t = BPlusTree::new();
        for i in 0..1000 {
            t.insert(ik(i), i);
        }
        let mut count = 0;
        t.range(&ik(0), &ik(999), |_, _| {
            count += 1;
            count < 5
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn composite_keys_order_lexicographically() {
        let mut t = BPlusTree::new();
        for a in 0..20 {
            for b in 0..20 {
                t.insert(vec![Value::Int(a), Value::Int(b)], a * 100 + b);
            }
        }
        let mut seen = Vec::new();
        t.range(
            &[Value::Int(3), Value::Int(5)],
            &[Value::Int(3), Value::Int(8)],
            |_, &v| {
                seen.push(v);
                true
            },
        );
        assert_eq!(seen, vec![305, 306, 307, 308]);
    }

    #[test]
    fn remove_with_predicate() {
        let mut t = BPlusTree::new();
        t.insert(ik(1), 10);
        t.insert(ik(1), 20);
        assert_eq!(t.remove(&ik(1), |&v| v == 10), 1);
        assert_eq!(t.get(&ik(1)), vec![20]);
        assert_eq!(t.remove(&ik(1), |_| true), 1);
        assert!(t.get(&ik(1)).is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let n = 5000i64;
        let sorted: Vec<(Vec<Value>, i64)> = (0..n).map(|i| (ik(i), i)).collect();
        let t = BPlusTree::bulk_load(sorted);
        assert_eq!(t.len(), n as usize);
        for probe in [0, 77, 2500, 4999] {
            assert_eq!(t.get(&ik(probe)), vec![probe]);
        }
        let mut seen = Vec::new();
        t.range(&ik(4990), &ik(4999), |_, &v| {
            seen.push(v);
            true
        });
        assert_eq!(seen, (4990..5000).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_load_groups_duplicates() {
        let sorted = vec![(ik(1), 10), (ik(1), 11), (ik(2), 20)];
        let t = BPlusTree::bulk_load(sorted);
        assert_eq!(t.get(&ik(1)), vec![10, 11]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn bulk_load_empty() {
        let t = BPlusTree::<i64>::bulk_load(Vec::new());
        assert!(t.is_empty());
        assert!(t.get(&ik(1)).is_empty());
    }

    #[test]
    fn mixed_type_keys() {
        let mut t = BPlusTree::new();
        t.insert(vec![Value::from("alice")], 1);
        t.insert(vec![Value::from("bob")], 2);
        assert_eq!(t.get(&[Value::from("alice")]), vec![1]);
        let mut seen = Vec::new();
        t.range(&[Value::from("a")], &[Value::from("z")], |_, &v| {
            seen.push(v);
            true
        });
        assert_eq!(seen, vec![1, 2]);
    }
    #[test]
    fn prefix_range_finds_all_suffixes() {
        let mut t = BPlusTree::new();
        for a in 0..50 {
            for b in 0..10 {
                t.insert(vec![Value::Int(a), Value::Int(b)], a * 100 + b);
            }
        }
        let mut seen = Vec::new();
        let bound = vec![Value::Int(7)];
        t.range_prefix(&bound, &bound, |_, &v| {
            seen.push(v);
            true
        });
        seen.sort_unstable();
        assert_eq!(seen, (700..710).collect::<Vec<_>>());
    }

    #[test]
    fn prefix_range_between_prefixes() {
        let mut t = BPlusTree::new();
        for a in 0..20 {
            for b in 0..3 {
                t.insert(vec![Value::Int(a), Value::Int(b)], a * 10 + b);
            }
        }
        let mut count = 0;
        t.range_prefix(&[Value::Int(5)], &[Value::Int(7)], |_, _| {
            count += 1;
            true
        });
        assert_eq!(count, 9);
    }
}
