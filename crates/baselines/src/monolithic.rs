//! Monolithic per-query model — the design §2.2 argues against, used as an
//! extra decomposition ablation: one flat regressor over bag-of-operators
//! plan features predicting whole-query latency.

use mb2_common::{DbError, DbResult};
use mb2_ml::forest::{ForestConfig, RandomForest};
use mb2_ml::Regressor;
use mb2_sql::PlanNode;

/// Operator types tracked in the flattened feature vector.
const OP_TYPES: [&str; 10] = [
    "SeqScan",
    "IndexScan",
    "HashJoin",
    "NestedLoopJoin",
    "Aggregate",
    "Sort",
    "Project",
    "Limit",
    "Output",
    "Insert",
];

/// Per-op-type: count, total rows_in, total rows_out → 3 features each.
pub const MONO_FEATURES: usize = OP_TYPES.len() * 3;

/// Flatten a plan to the monolithic feature vector.
pub fn plan_features(plan: &PlanNode) -> Vec<f64> {
    let mut f = vec![0.0; MONO_FEATURES];
    fn walk(node: &PlanNode, f: &mut [f64]) {
        if let Some(i) = OP_TYPES.iter().position(|&t| t == node.label()) {
            let est = node.est();
            f[i * 3] += 1.0;
            f[i * 3 + 1] += (est.rows_in + 1.0).ln();
            f[i * 3 + 2] += (est.rows_out + 1.0).ln();
        }
        for c in node.children() {
            walk(c, f);
        }
    }
    walk(plan, &mut f);
    f
}

/// The monolithic baseline model.
pub struct MonolithicModel {
    forest: RandomForest,
    trained: bool,
}

impl Default for MonolithicModel {
    fn default() -> Self {
        MonolithicModel {
            forest: RandomForest::new(ForestConfig {
                n_estimators: 30,
                ..ForestConfig::default()
            }),
            trained: false,
        }
    }
}

impl MonolithicModel {
    /// Train on (plan, measured latency µs) pairs.
    pub fn fit(&mut self, samples: &[(&PlanNode, f64)]) -> DbResult<()> {
        if samples.is_empty() {
            return Err(DbError::Model("monolithic: empty training set".into()));
        }
        let x: Vec<Vec<f64>> = samples.iter().map(|(p, _)| plan_features(p)).collect();
        let y: Vec<Vec<f64>> = samples.iter().map(|(_, l)| vec![(l + 1.0).ln()]).collect();
        self.forest.fit(&x, &y)?;
        self.trained = true;
        Ok(())
    }

    /// Predict query latency (µs).
    pub fn predict(&self, plan: &PlanNode) -> DbResult<f64> {
        if !self.trained {
            return Err(DbError::Model("monolithic: predict before fit".into()));
        }
        let log = self.forest.predict_one(&plan_features(plan))[0];
        Ok(log.exp() - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_engine::Database;

    #[test]
    fn fits_and_predicts_in_range() {
        let db = Database::open();
        db.execute("CREATE TABLE m (a INT)").unwrap();
        for i in 0..1000 {
            if i % 500 == 0 {
                // keep insert batches small
            }
            db.execute(&format!("INSERT INTO m VALUES ({i})")).unwrap();
        }
        db.execute("ANALYZE m").unwrap();
        let mut samples = Vec::new();
        for bound in [100, 300, 600, 900] {
            let plan = db
                .prepare(&format!("SELECT * FROM m WHERE a < {bound}"))
                .unwrap();
            let latency = plan.est().rows_out * 2.0;
            samples.push((plan, latency));
        }
        let refs: Vec<(&PlanNode, f64)> = samples.iter().map(|(p, l)| (p, *l)).collect();
        let mut m = MonolithicModel::default();
        m.fit(&refs).unwrap();
        let plan = db.prepare("SELECT * FROM m WHERE a < 450").unwrap();
        let pred = m.predict(&plan).unwrap();
        assert!(pred > 100.0 && pred < 2000.0, "pred {pred}");
    }

    #[test]
    fn feature_vector_counts_operators() {
        let db = Database::open();
        db.execute("CREATE TABLE m (a INT)").unwrap();
        db.execute("INSERT INTO m VALUES (1)").unwrap();
        let plan = db
            .prepare("SELECT * FROM m WHERE a = 1 ORDER BY a")
            .unwrap();
        let f = plan_features(&plan);
        assert_eq!(f.len(), MONO_FEATURES);
        // At least scan + sort + output counted.
        assert!(f.iter().step_by(3).sum::<f64>() >= 3.0);
    }

    #[test]
    fn predict_before_fit_is_error() {
        let db = Database::open();
        db.execute("CREATE TABLE m (a INT)").unwrap();
        let plan = db.prepare("SELECT * FROM m").unwrap();
        assert!(MonolithicModel::default().predict(&plan).is_err());
    }
}
