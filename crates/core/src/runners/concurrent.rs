//! Concurrent runners (paper §6.3): execute end-to-end workloads with
//! multiple threads to produce interference-model training data.
//!
//! Each configuration is a (template subset, thread count, arrival rate)
//! cell of the paper's grid. During the window every worker records its
//! per-OU actual metrics; afterwards the runner pairs them with the
//! OU-models' isolated predictions to produce (summary features → ratio
//! labels) rows (paper §5).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mb2_common::{DbResult, Metrics, Prng};
use mb2_engine::Database;
use mb2_ml::Dataset;

use crate::collect::TrainingCollector;
use crate::forecast::QueryTemplate;
use crate::inference::BehaviorModels;
use crate::interference::InterferenceInputs;
use crate::training::OuModelSet;
use crate::translate::OuTranslator;

/// One concurrent execution window's configuration.
#[derive(Debug, Clone)]
pub struct ConcurrentRunConfig {
    pub threads: usize,
    pub duration: Duration,
    /// Per-thread target arrival rate in queries/second (`None` = maximum).
    pub rate_per_thread: Option<f64>,
    pub seed: u64,
}

/// Result of one window.
pub struct ConcurrentOutcome {
    /// Interference training rows (features → ratio labels).
    pub interference_rows: Dataset,
    /// Actual average query latency per template (µs), measured as the sum
    /// of the query's OU spans — the measurement the interference model
    /// adjusts (wall time additionally includes inter-OU scheduling gaps,
    /// which §5 does not model).
    pub per_template_actual_us: Vec<f64>,
    /// Actual average wall-clock latency per template (µs).
    pub per_template_wall_us: Vec<f64>,
    /// Completed executions per template.
    pub per_template_count: Vec<usize>,
    /// Per-thread predicted totals (the summary the model consumed).
    pub thread_totals: Vec<Metrics>,
}

/// Run one concurrent window and derive interference training data.
pub fn run_concurrent_window(
    db: &Arc<Database>,
    templates: &[QueryTemplate],
    models: &OuModelSet,
    cfg: &ConcurrentRunConfig,
) -> DbResult<ConcurrentOutcome> {
    assert!(!templates.is_empty());
    let translator = OuTranslator::default();
    let knobs = db.knobs();
    let stop = Arc::new(AtomicBool::new(false));

    // (template idx, wall µs, per-OU samples) per executed query, per thread.
    type Execution = (usize, f64, Vec<crate::collect::OuSample>);
    let thread_results: Vec<Vec<Execution>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|worker| {
                let db = db.clone();
                let stop = stop.clone();
                let translator = &translator;
                scope.spawn(move || {
                    let mut rng = Prng::new(cfg.seed.wrapping_add(worker as u64 * 7919));
                    // Pre-translate every template once (cached plans).
                    let prepared: Vec<(TrainingCollector, &QueryTemplate)> = templates
                        .iter()
                        .map(|t| {
                            let instances = translator.translate_plan(&t.plan, &knobs);
                            (TrainingCollector::new(&instances), t)
                        })
                        .collect();
                    let mut executions: Vec<Execution> = Vec::new();
                    let mut i = worker; // stagger template order across threads
                    while !stop.load(Ordering::Relaxed) {
                        let ti = i % prepared.len();
                        i += 1;
                        let (collector, template) = &prepared[ti];
                        collector.reset();
                        let started = Instant::now();
                        if db.execute_plan(&template.plan, Some(collector)).is_err() {
                            continue; // conflicts under concurrency: skip
                        }
                        let wall_us = started.elapsed().as_nanos() as f64 / 1000.0;
                        executions.push((ti, wall_us, collector.drain_joined()));
                        if let Some(rate) = cfg.rate_per_thread {
                            let target_gap = 1.0 / rate;
                            let jitter = rng.next_f64() * 0.2 * target_gap;
                            std::thread::sleep(Duration::from_secs_f64(target_gap * 0.9 + jitter));
                        }
                    }
                    executions
                })
            })
            .collect();
        // Drive the window.
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Release);
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Per-thread predicted totals (paper §5.1 summary input).
    let thread_totals: Vec<Metrics> = thread_results
        .iter()
        .map(|execs| {
            let mut total = Metrics::ZERO;
            for (_, _, samples) in execs {
                for s in samples {
                    total += models.predict(s.ou, &s.features);
                }
            }
            total
        })
        .collect();

    // Interference rows + per-template actual latencies.
    let mut rows = Dataset::default();
    let mut per_template_sum = vec![0.0; templates.len()];
    let mut per_template_wall = vec![0.0; templates.len()];
    let mut per_template_count = vec![0usize; templates.len()];
    for execs in &thread_results {
        for (ti, wall_us, samples) in execs {
            per_template_wall[*ti] += wall_us;
            per_template_sum[*ti] += samples.iter().map(|s| s.labels.elapsed_us()).sum::<f64>();
            per_template_count[*ti] += 1;
            for s in samples {
                let pred = models.predict(s.ou, &s.features);
                if pred.elapsed_us() < 0.5 {
                    continue; // below measurement resolution; ratio undefined
                }
                let features = InterferenceInputs::features(
                    &pred,
                    &thread_totals,
                    cfg.duration.as_nanos() as f64 / 1000.0,
                );
                let labels = InterferenceInputs::ratio_labels(&s.labels, &pred);
                rows.push(features, labels);
            }
        }
    }
    let avg = |sums: &[f64]| -> Vec<f64> {
        sums.iter()
            .zip(&per_template_count)
            .map(|(sum, &n)| if n == 0 { 0.0 } else { sum / n as f64 })
            .collect()
    };
    Ok(ConcurrentOutcome {
        interference_rows: rows,
        per_template_actual_us: avg(&per_template_sum),
        per_template_wall_us: avg(&per_template_wall),
        per_template_count,
        thread_totals,
    })
}

/// Measure each template's isolated latency (single-threaded, sequential) —
/// the denominator of the paper's Fig. 8 "runtime increment". Measured as
/// the sum of OU spans, consistent with the concurrent measurement.
pub fn measure_isolated(
    db: &Database,
    templates: &[QueryTemplate],
    repetitions: usize,
) -> DbResult<Vec<f64>> {
    let translator = OuTranslator::default();
    let knobs = db.knobs();
    let mut out = Vec::with_capacity(templates.len());
    for t in templates {
        // Warm-up.
        db.execute_plan(&t.plan, None)?;
        let instances = translator.translate_plan(&t.plan, &knobs);
        let collector = TrainingCollector::new(&instances);
        let mut latencies = Vec::with_capacity(repetitions);
        for _ in 0..repetitions {
            collector.reset();
            db.execute_plan(&t.plan, Some(&collector))?;
            let ou_us: f64 = collector
                .drain_joined()
                .iter()
                .map(|s| s.labels.elapsed_us())
                .sum();
            latencies.push(ou_us);
        }
        out.push(mb2_common::stats::trimmed_mean(&latencies, 0.2));
    }
    Ok(out)
}

/// Convenience: predict each template's isolated latency with the models
/// (sanity hook used by benches to sanity-check OU-model quality before the
/// interference stage).
pub fn predicted_isolated(
    models: &BehaviorModels,
    templates: &[QueryTemplate],
    knobs: &mb2_engine::Knobs,
) -> Vec<f64> {
    templates
        .iter()
        .map(|t| models.predict_query_elapsed_us(&t.plan, knobs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{OuSample, TrainingRepo};
    use crate::training::{train_all, TrainingConfig};
    use mb2_common::metrics::idx;
    use mb2_ml::Algorithm;

    fn test_db() -> Arc<Database> {
        let db = Database::open();
        db.execute("CREATE TABLE ct (a INT, b INT)").unwrap();
        for chunk in (0..2000).collect::<Vec<i64>>().chunks(500) {
            let vals: Vec<String> = chunk.iter().map(|i| format!("({i}, {})", i % 20)).collect();
            db.execute(&format!("INSERT INTO ct VALUES {}", vals.join(", ")))
                .unwrap();
        }
        db.execute("ANALYZE ct").unwrap();
        Arc::new(db)
    }

    fn templates(db: &Database) -> Vec<QueryTemplate> {
        [
            "SELECT b, COUNT(*) FROM ct GROUP BY b",
            "SELECT * FROM ct WHERE a < 500 ORDER BY a",
        ]
        .iter()
        .map(|sql| QueryTemplate {
            name: sql.to_string(),
            sql: sql.to_string(),
            plan: db.prepare(sql).unwrap(),
        })
        .collect()
    }

    /// A model set with synthetic constants is enough to drive the plumbing.
    fn trivial_models(db: &Database, templates: &[QueryTemplate]) -> OuModelSet {
        let translator = OuTranslator::default();
        let mut repo = TrainingRepo::new();
        for t in templates {
            for inst in translator.translate_plan(&t.plan, &db.knobs()) {
                for k in 1..=10 {
                    let mut f = inst.features.clone();
                    f[0] = (k * 100) as f64;
                    let mut labels = Metrics::ZERO;
                    labels[idx::ELAPSED_US] = f[0];
                    labels[idx::CPU_US] = f[0];
                    repo.add(OuSample {
                        ou: inst.ou,
                        features: f,
                        labels,
                    });
                }
            }
        }
        train_all(
            &repo,
            &TrainingConfig {
                candidates: vec![Algorithm::Linear],
                ..TrainingConfig::default()
            },
        )
        .unwrap()
        .0
    }

    #[test]
    fn window_produces_interference_rows() {
        let db = test_db();
        let ts = templates(&db);
        let models = trivial_models(&db, &ts);
        let outcome = run_concurrent_window(
            &db,
            &ts,
            &models,
            &ConcurrentRunConfig {
                threads: 2,
                duration: Duration::from_millis(300),
                rate_per_thread: None,
                seed: 1,
            },
        )
        .unwrap();
        assert!(
            !outcome.interference_rows.is_empty(),
            "no interference rows"
        );
        assert_eq!(outcome.thread_totals.len(), 2);
        assert!(outcome.per_template_count.iter().sum::<usize>() > 0);
        assert_eq!(
            outcome.interference_rows.n_features(),
            crate::interference::INTERFERENCE_FEATURE_COUNT
        );
    }

    #[test]
    fn isolated_measurement_returns_latencies() {
        let db = test_db();
        let ts = templates(&db);
        let lat = measure_isolated(&db, &ts, 3).unwrap();
        assert_eq!(lat.len(), 2);
        assert!(lat.iter().all(|&l| l > 0.0));
    }
}
