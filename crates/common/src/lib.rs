//! Shared kernel for the MB2 reproduction.
//!
//! This crate holds the types that every layer of the system agrees on:
//! SQL values and schemas, the nine-element behavior-metric vector that all
//! OU-models predict (paper §4.3), a deterministic PRNG so experiments are
//! reproducible, the robust statistics MB2 uses to derive labels from noisy
//! measurements (paper §6.2), and a small CSV layer for training-data
//! artifacts.

pub mod crc32;
pub mod csv;
pub mod error;
pub mod fault;
pub mod hardware;
pub mod metrics;
pub mod ou;
pub mod rng;
pub mod schema;
pub mod stats;
pub mod types;

pub use crc32::{crc32, Crc32};
pub use error::{DbError, DbResult};
pub use fault::{FaultInjector, FaultMode};
pub use hardware::HardwareProfile;
pub use metrics::{Metrics, METRIC_COUNT, METRIC_NAMES};
pub use ou::{OuCategory, OuKind};
pub use rng::Prng;
pub use schema::{Column, Schema};
pub use types::{DataType, Value};
