//! Fixed-capacity log buffers.

use bytes::BytesMut;

/// Capacity of one log buffer in bytes (one "disk block" for the block-write
/// accounting in the behavior metrics).
pub const LOG_BUFFER_CAPACITY: usize = 4096;

/// A log buffer being filled with serialized records.
#[derive(Debug)]
pub struct LogBuffer {
    pub data: BytesMut,
    /// Number of records encoded into this buffer.
    pub record_count: usize,
    /// Append sequence number of the last record in this buffer (0 while
    /// empty). Successful flushes advance the manager's durable watermark
    /// to the batch's highest `last_seq`.
    pub last_seq: u64,
}

impl LogBuffer {
    pub fn new() -> LogBuffer {
        LogBuffer {
            data: BytesMut::with_capacity(LOG_BUFFER_CAPACITY),
            record_count: 0,
            last_seq: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Remaining capacity before this buffer should be handed to the flusher.
    pub fn remaining(&self) -> usize {
        LOG_BUFFER_CAPACITY.saturating_sub(self.data.len())
    }

    /// True once the buffer has reached its capacity target.
    pub fn is_full(&self) -> bool {
        self.data.len() >= LOG_BUFFER_CAPACITY
    }
}

impl Default for LogBuffer {
    fn default() -> Self {
        LogBuffer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BufMut;

    #[test]
    fn fills_to_capacity() {
        let mut b = LogBuffer::new();
        assert!(b.is_empty());
        assert_eq!(b.remaining(), LOG_BUFFER_CAPACITY);
        b.data.put_slice(&vec![0u8; LOG_BUFFER_CAPACITY]);
        assert!(b.is_full());
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn oversize_payload_reports_full() {
        let mut b = LogBuffer::new();
        b.data.put_slice(&vec![0u8; LOG_BUFFER_CAPACITY + 100]);
        assert!(b.is_full());
        assert_eq!(b.remaining(), 0);
    }
}
