//! Lock-free counters and gauges.
//!
//! [`Counter`] is sharded: each incrementing thread is assigned (once, via a
//! thread-local) one of [`COUNTER_SHARDS`] cache-line-padded atomic cells,
//! so concurrent increments from different threads do not bounce a shared
//! cache line. Reads sum the shards — reads are rare (scrapes), writes are
//! the hot path, which is the right trade for runtime metrics.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of shards per counter. A small power of two: enough to spread the
/// engine's worker threads, small enough that a scrape's shard sum is cheap.
pub const COUNTER_SHARDS: usize = 16;

/// One cache line per shard so increments from different threads never
/// contend on the same line (the classic false-sharing trap of a naive
/// `AtomicU64` counter).
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's shard, assigned round-robin on first use.
fn shard_index() -> usize {
    SHARD_INDEX.with(|cell| {
        let cached = cell.get();
        if cached != usize::MAX {
            return cached;
        }
        let assigned = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
        cell.set(assigned);
        assigned
    })
}

/// A monotonically increasing counter, sharded for write scalability.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedCell; COUNTER_SHARDS],
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (sum over shards). Not a consistent snapshot under
    /// concurrent increments, but never loses a completed increment.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A gauge: a value that can go up and down (active transactions, queue
/// depth). Single atomic — gauges are set/adjusted, not hammered.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn dec(&self) {
        self.sub(1);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

/// A gauge holding a floating-point value (durations in seconds, ratios).
/// Stored as the f64 bit pattern in one atomic; set/get only — fractional
/// read-modify-write has no callers and would need a CAS loop.
#[derive(Default)]
pub struct FloatGauge {
    bits: AtomicU64,
}

impl FloatGauge {
    pub fn new() -> FloatGauge {
        FloatGauge::default()
    }

    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for FloatGauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("FloatGauge").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_shards() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn counter_concurrent_increments_all_land() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn float_gauge_round_trips() {
        let g = FloatGauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.125);
        assert_eq!(g.get(), 0.125);
        g.set(-3.5);
        assert_eq!(g.get(), -3.5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
        g.add(10);
        assert_eq!(g.get(), 3);
    }
}
