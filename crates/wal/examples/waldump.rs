//! Dump a WAL file's records in log order, one line each.
//!
//! ```sh
//! cargo run -p mb2-wal --example waldump -- /path/to/wal.log
//! ```

use mb2_wal::{read_log_with, LogRecord};

fn main() {
    let path = std::env::args().nth(1).expect("usage: waldump <log-file>");
    let scan = read_log_with(path.as_ref(), true).expect("read log");
    for (i, rec) in scan.records.iter().enumerate() {
        match rec {
            LogRecord::Begin { txn_id } => println!("{i:6} Begin txn={txn_id}"),
            LogRecord::Commit { txn_id } => println!("{i:6} Commit txn={txn_id}"),
            LogRecord::Abort { txn_id } => println!("{i:6} Abort txn={txn_id}"),
            LogRecord::Insert {
                txn_id,
                table_id,
                slot,
                tuple,
            } => println!("{i:6} Insert txn={txn_id} table={table_id} slot={slot} tuple={tuple:?}"),
            LogRecord::Update {
                txn_id,
                table_id,
                slot,
                tuple,
            } => println!("{i:6} Update txn={txn_id} table={table_id} slot={slot} tuple={tuple:?}"),
            LogRecord::Delete {
                txn_id,
                table_id,
                slot,
            } => println!("{i:6} Delete txn={txn_id} table={table_id} slot={slot}"),
            LogRecord::CreateTable { table_id, name, .. } => {
                println!("{i:6} CreateTable table={table_id} name={name}")
            }
            LogRecord::CreateIndex { table_id, name, .. } => {
                println!("{i:6} CreateIndex table={table_id} name={name}")
            }
            LogRecord::DropTable { table_id } => println!("{i:6} DropTable table={table_id}"),
            LogRecord::DropIndex { table_id, name } => {
                println!("{i:6} DropIndex table={table_id} name={name}")
            }
        }
    }
    if scan.torn_tail_bytes > 0 {
        println!("# torn tail: {} bytes", scan.torn_tail_bytes);
    }
    if let Some(c) = scan.corruption {
        println!("# corruption at offset {}: {}", c.offset, c.reason);
    }
}
