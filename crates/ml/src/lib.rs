//! From-scratch ML library for MB2's behavior models.
//!
//! Implements the seven regression families the paper trains per OU
//! (§6.4): linear regression, Huber regression, support-vector regression,
//! kernel regression, random forest, gradient boosting machine, and a
//! multi-layer-perceptron neural network — plus dataset utilities
//! (train/test split, k-fold cross validation, standardization) and the
//! model-selection procedure MB2 uses (train each candidate on an 80/20
//! split, pick the best by validation error, refit on all data).
//!
//! All models implement [`Regressor`] and natively support multi-output
//! regression because every OU-model predicts a nine-element metric vector.

pub mod data;
pub mod eval;
pub mod forest;
pub mod gbm;
pub mod kernel;
pub mod linalg;
pub mod linear;
pub mod nn;
pub mod persist;
pub mod selection;
pub mod svr;
pub mod tree;

pub use data::{train_test_split, Dataset, StandardScaler};
pub use eval::{mean_absolute_error, mean_relative_error, mean_squared_error, r2_score};
pub use persist::{load_model, save_model, SaveableRegressor};
pub use selection::{Algorithm, ModelSelector, SelectionReport};

use mb2_common::DbResult;

/// A multi-output regression model.
///
/// `fit` consumes row-major features `x` (`n_samples × n_features`) and
/// targets `y` (`n_samples × n_outputs`). Implementations must tolerate
/// repeated `fit` calls (refitting replaces prior state).
pub trait Regressor: Send + Sync {
    /// Train on the given data.
    fn fit(&mut self, x: &[Vec<f64>], y: &[Vec<f64>]) -> DbResult<()>;

    /// Predict the output vector for one sample.
    fn predict_one(&self, x: &[f64]) -> Vec<f64>;

    /// Predict for a batch of samples.
    fn predict(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|row| self.predict_one(row)).collect()
    }

    /// Short identifier for reports (e.g. `"random_forest"`).
    fn name(&self) -> &'static str;

    /// Approximate in-memory model size in bytes (for the paper's Table 2
    /// model-size accounting).
    fn size_bytes(&self) -> usize;

    /// Serialize to the textual model format (see [`persist`]); the
    /// counterpart of [`persist::load_model`].
    fn save_text(&self) -> DbResult<String>;
}
