//! MB2 pipeline CLI: run the offline stages separately with on-disk
//! artifacts, the way a deployment would (paper §3: data generation and
//! training happen offline; the DBMS then ships with the trained models).
//!
//! ```text
//! mb2_pipeline collect <data-dir>               # runners -> per-OU CSVs
//! mb2_pipeline train <data-dir> <model-dir>     # CSVs -> saved OU-models
//! mb2_pipeline evaluate <model-dir>             # models vs live TPC-H
//! ```
//!
//! Honors `MB2_SCALE=quick|standard`.

use std::path::Path;

use mb2_bench::pipeline::{measure_latency_us, PipelineConfig};
use mb2_bench::Scale;
use mb2_common::OuKind;
use mb2_core::runners::execution::run_execution_runners;
use mb2_core::runners::txn::run_txn_runner;
use mb2_core::runners::util::run_util_runners;
use mb2_core::training::{train_all, OuModelSet};
use mb2_core::{BehaviorModels, TrainingRepo};
use mb2_engine::Database;
use mb2_workloads::tpch::Tpch;
use mb2_workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_env();
    let result = match args.get(1).map(String::as_str) {
        Some("collect") if args.len() == 3 => collect(scale, Path::new(&args[2])),
        Some("train") if args.len() == 4 => train(scale, Path::new(&args[2]), Path::new(&args[3])),
        Some("evaluate") if args.len() == 3 => evaluate(scale, Path::new(&args[2])),
        _ => {
            eprintln!(
                "usage: mb2_pipeline collect <data-dir>\n       \
                 mb2_pipeline train <data-dir> <model-dir>\n       \
                 mb2_pipeline evaluate <model-dir>"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn collect(scale: Scale, dir: &Path) -> mb2_common::DbResult<()> {
    std::fs::create_dir_all(dir)
        .map_err(|e| mb2_common::DbError::Storage(format!("create {}: {e}", dir.display())))?;
    let cfg = PipelineConfig::for_scale(scale);
    eprintln!("running OU-runners ({scale:?})...");
    let mut repo = run_execution_runners(&cfg.exec)?;
    repo.merge(run_util_runners(&cfg.util)?);
    repo.merge(run_txn_runner(&cfg.txn)?);
    for ou in repo.ous() {
        let path = dir.join(format!("{ou}.csv"));
        repo.save_ou(ou, &path)?;
        eprintln!("  {ou}: {} samples -> {}", repo.count(ou), path.display());
    }
    eprintln!(
        "total: {} samples, {} KiB",
        repo.total_samples(),
        repo.data_size_bytes() / 1024
    );
    Ok(())
}

fn train(scale: Scale, data_dir: &Path, model_dir: &Path) -> mb2_common::DbResult<()> {
    let mut repo = TrainingRepo::new();
    for ou in OuKind::ALL {
        let path = data_dir.join(format!("{ou}.csv"));
        if path.exists() {
            let n = repo.load_ou(ou, &path)?;
            eprintln!("loaded {n} samples for {ou}");
        }
    }
    let cfg = PipelineConfig::for_scale(scale);
    let (models, report) = train_all(&repo, &cfg.training)?;
    models.save_dir(model_dir)?;
    eprintln!(
        "trained {} OU-models in {:.1?} ({} KiB on disk); saved to {}",
        models.len(),
        report.total_training_time,
        models.total_size_bytes() / 1024,
        model_dir.display()
    );
    for (ou, alg, err, _) in &report.per_ou {
        eprintln!("  {ou:<18} {:<18} validation rel-err {err:.3}", alg.name());
    }
    Ok(())
}

fn evaluate(scale: Scale, model_dir: &Path) -> mb2_common::DbResult<()> {
    let models = OuModelSet::load_dir(model_dir)?;
    eprintln!(
        "loaded {} OU-models from {}",
        models.len(),
        model_dir.display()
    );
    let behavior = BehaviorModels::new(models, None);
    let tpch = Tpch::with_scale(scale.pick(0.05, 0.5));
    let db = Database::open();
    eprintln!("loading TPC-H ({} lineitem rows)...", tpch.lineitem_rows());
    tpch.load(&db)?;
    println!(
        "{:<8} {:>14} {:>14} {:>9}",
        "query", "predicted (us)", "actual (us)", "rel-err"
    );
    for (name, sql) in tpch.fixed_queries() {
        let plan = db.prepare(&sql)?;
        let predicted = behavior.predict_query_elapsed_us(&plan, &db.knobs());
        let actual = measure_latency_us(&db, &plan, scale.pick(3, 5)).max(1.0);
        println!(
            "{name:<8} {predicted:>14.0} {actual:>14.0} {:>9.3}",
            (actual - predicted).abs() / actual
        );
    }
    Ok(())
}
