//! Server resilience: mid-stream engine errors stay in-band, protocol
//! violations are answered before teardown, injected accept/read faults
//! behave like real network failures, and the health supervisor turns a
//! poisoned WAL into an automatic restart-with-recovery that live clients
//! survive by reconnecting.

use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mb2_common::fault::{points, FaultMode};
use mb2_common::{DbError, FaultInjector, Value};
use mb2_engine::{Database, DatabaseConfig};
use mb2_server::wire::{self, Frame, FrameReader, PROTOCOL_VERSION};
use mb2_server::{Client, Server, ServerConfig, SupervisorConfig};

fn temp_wal(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("mb2_resilience_{}_{name}.log", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn start_server(db_cfg: DatabaseConfig, srv_cfg: ServerConfig) -> Server {
    let db = Arc::new(Database::new(db_cfg).expect("database"));
    Server::start(db, srv_cfg).expect("server start")
}

/// A database configuration with real durability on: on-disk WAL, fsync at
/// every commit, fault injection wired through the engine.
fn durable_cfg(path: &Path, faults: &Arc<FaultInjector>) -> DatabaseConfig {
    DatabaseConfig {
        wal_enabled: true,
        wal_path: Some(path.to_path_buf()),
        wal_fsync: true,
        wal_sync_commit: true,
        wal_flush_retries: 1,
        wal_retry_backoff: Duration::from_micros(50),
        faults: Some(faults.clone()),
        ..DatabaseConfig::default()
    }
}

/// An engine error at a late row — after result batches already went out —
/// must arrive as a typed in-band `Error` frame, and the connection must
/// stay usable for the next query.
#[test]
fn mid_stream_error_is_typed_and_connection_survives() {
    let mut db_cfg = DatabaseConfig::default();
    db_cfg.knobs.batch_size = 8; // many RowBatch frames before the error
    let server = start_server(db_cfg, ServerConfig::default());
    let mut client = Client::connect(server.local_addr().to_string()).expect("connect");

    client.query("CREATE TABLE t (id INT)").unwrap();
    for chunk in 0..4 {
        let rows: Vec<String> = (0..50).map(|i| format!("({})", chunk * 50 + i)).collect();
        client
            .query(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
            .unwrap();
    }

    // Divides by zero at id = 150: ~18 batches of 8 stream first.
    let mut rows_before_error = 0usize;
    let err = client
        .query_streaming("SELECT 1000 / (150 - id) FROM t", &mut |rows| {
            rows_before_error += rows.len();
            Ok(())
        })
        .expect_err("late-row division by zero must fail");
    assert!(matches!(err, DbError::Execution(_)), "got {err:?}");
    assert!(
        rows_before_error > 0,
        "the error must arrive mid-stream, after at least one RowBatch"
    );

    // The framing-preserving drain leaves the connection usable.
    let resp = client.query("SELECT COUNT(*) FROM t").expect("after error");
    assert_eq!(resp.rows, vec![vec![Value::Int(200)]]);
    server.shutdown();
}

/// A protocol violation (unknown frame tag) is answered with a typed
/// `Error` frame before the server closes the connection.
#[test]
fn malformed_frame_gets_typed_error_before_close() {
    let server = start_server(DatabaseConfig::default(), ServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = FrameReader::new();

    wire::write_frame(
        &mut stream,
        &Frame::ClientHello {
            version: PROTOCOL_VERSION,
            tenant: String::new(),
            tier: u8::MAX,
        },
    )
    .unwrap();
    match reader.read_frame_blocking(&mut stream).unwrap() {
        Frame::ServerHello { .. } => {}
        other => panic!("expected ServerHello, got {other:?}"),
    }

    // Length-prefixed garbage: tag 0xEE does not exist.
    use std::io::Write;
    stream.write_all(&2u32.to_le_bytes()).unwrap();
    stream.write_all(&[0xEE, 0x00]).unwrap();

    match reader.read_frame_blocking(&mut stream) {
        Ok(Frame::Error { error }) => {
            assert!(matches!(error, DbError::Net(_)), "got {error:?}");
        }
        other => panic!("expected a typed Error frame before close, got {other:?}"),
    }
    server.shutdown();
}

/// An armed `server.accept` fault drops exactly the chosen connection, the
/// way a dying acceptor would; later connects succeed.
#[test]
fn accept_fault_drops_one_connection() {
    let faults = Arc::new(FaultInjector::new(42));
    faults.arm(points::SERVER_ACCEPT, FaultMode::Nth(1));
    let server = start_server(
        DatabaseConfig::default(),
        ServerConfig {
            faults: Some(faults.clone()),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr().to_string();

    let err = match Client::connect(&addr) {
        Ok(_) => panic!("first connection must be dropped"),
        Err(e) => e,
    };
    assert!(matches!(err, DbError::Net(_)), "got {err:?}");

    let mut c = Client::connect(&addr).expect("second connection survives");
    c.query("CREATE TABLE ping (id INT)").unwrap();
    assert_eq!(faults.fired(points::SERVER_ACCEPT), 1);
    server.shutdown();
}

/// An armed `server.read` fault tears the connection on the chosen request
/// frame; a reconnect gets a clean session.
#[test]
fn read_fault_tears_connection_mid_session() {
    let faults = Arc::new(FaultInjector::new(42));
    faults.arm(points::SERVER_READ, FaultMode::Nth(3));
    let server = start_server(
        DatabaseConfig::default(),
        ServerConfig {
            faults: Some(faults.clone()),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr().to_string();

    let mut c = Client::connect(&addr).expect("connect");
    c.query("CREATE TABLE t (id INT)").unwrap();
    c.query("INSERT INTO t VALUES (1)").unwrap();
    // Third request frame trips the injected read failure: the connection
    // tears without a response, like a mid-request crash.
    let err = c
        .query("SELECT * FROM t")
        .expect_err("read fault must tear");
    assert!(matches!(err, DbError::Net(_)), "got {err:?}");

    // The committed work survives; the fault was one-shot.
    let mut c2 = Client::connect(&addr).expect("reconnect");
    let resp = c2.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(resp.rows, vec![vec![Value::Int(1)]]);
    server.shutdown();
}

/// The headline self-healing path: a persistent fsync failure poisons the
/// WAL and degrades the engine to read-only (reads keep working, writes get
/// the typed `WalUnavailable`); the supervisor replays the log into a
/// replacement engine, swaps it in, and drains pinned connections with
/// `Busy(Draining)`. A reconnecting client lands on the recovered engine
/// with every acknowledged commit intact and writes working again.
#[test]
fn wal_poison_degrades_then_supervisor_recovers() {
    let path = temp_wal("supervisor");
    let faults = Arc::new(FaultInjector::new(7));
    let db_cfg = durable_cfg(&path, &faults);
    // The replacement engine keeps durability on but gets no fault
    // injector, so recovery itself cannot be poisoned by the armed point.
    let template = DatabaseConfig {
        faults: None,
        ..durable_cfg(&path, &faults)
    };
    let server = start_server(
        db_cfg,
        ServerConfig {
            poll_interval: Duration::from_millis(5),
            supervisor: Some(SupervisorConfig {
                probe_interval: Duration::from_millis(10),
                template: DatabaseConfig {
                    faults: None,
                    ..template
                },
                ..SupervisorConfig::default()
            }),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    client.query("CREATE TABLE t (id INT)").unwrap();
    client.query("INSERT INTO t VALUES (1), (2), (3)").unwrap();

    // Poison: every fsync fails from here; the next durable commit fails
    // fast with the typed error and the engine latches read-only.
    faults.arm(points::WAL_FSYNC, FaultMode::Always);
    let err = client
        .query("INSERT INTO t VALUES (4)")
        .expect_err("write on poisoned WAL must fail");
    assert!(matches!(err, DbError::WalUnavailable(_)), "got {err:?}");

    // Reads are still served while degraded (possibly already through the
    // drain window, in which case reconnect and retry).
    let resp = loop {
        match client.query("SELECT COUNT(*) FROM t") {
            Ok(r) => break r,
            Err(DbError::ServerBusy(_)) | Err(DbError::Net(_)) => {
                client = Client::connect(&addr).expect("reconnect for read");
            }
            Err(e) => panic!("degraded read failed: {e:?}"),
        }
    };
    assert_eq!(resp.rows, vec![vec![Value::Int(3)]]);

    // Let recovery proceed cleanly, then wait for the swap.
    faults.disarm(points::WAL_FSYNC);
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.engine_epoch() == 0 {
        assert!(Instant::now() < deadline, "supervisor never recovered");
        std::thread::sleep(Duration::from_millis(10));
    }

    // A pinned connection is drained with a typed Busy(Draining) (unless
    // it already tore); a fresh connection lands on the recovered engine.
    match client.query("SELECT COUNT(*) FROM t") {
        Err(DbError::ServerBusy(_)) | Err(DbError::Net(_)) => {}
        other => panic!("stale connection must be drained, got {other:?}"),
    }
    let mut client = Client::connect(&addr).expect("reconnect");

    // No acknowledged commit was lost, the unacknowledged insert is not
    // resurrected, and writes work again.
    let resp = client.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(resp.rows, vec![vec![Value::Int(3)]]);
    client.query("INSERT INTO t VALUES (100)").unwrap();
    let resp = client.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(resp.rows, vec![vec![Value::Int(4)]]);

    // The swap is visible in the shared registry: recovery ran once, its
    // report was published, and the health gauge is back to Healthy (0).
    let prom = server.db().metrics_prometheus();
    let metric = |name: &str| -> f64 {
        prom.lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or_else(|| panic!("metric {name} not exported"))
    };
    assert_eq!(metric("mb2_server_recoveries_total"), 1.0);
    assert!(metric("mb2_recovery_runs_total") >= 1.0);
    assert!(metric("mb2_recovery_records_read") > 0.0);
    assert_eq!(metric("mb2_health_state"), 0.0);

    server.shutdown();
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(format!("{}.g1", path.display()));
}
