//! Runs every table/figure experiment in sequence and persists the reports
//! under `results/`. Honors `MB2_SCALE=quick|standard`.
use mb2_bench::{experiments, report, Scale};

/// One experiment: name + entry point.
type Experiment = (&'static str, fn(Scale) -> String);

fn main() {
    let scale = Scale::from_env();
    let suite: &[Experiment] = &[
        ("table02_overhead", experiments::table02_overhead::run),
        ("obs_overhead", experiments::obs_overhead::run),
        ("exec_throughput", experiments::exec_throughput::run),
        ("exec_parallel", experiments::exec_parallel::run),
        ("shard_scale", experiments::shard_scale::run),
        ("columnar_scan", experiments::columnar_scan::run),
        ("server_throughput", experiments::server_throughput::run),
        ("chaos_recovery", experiments::chaos_recovery::run),
        ("pilot_loop", experiments::pilot_loop::run),
        ("fig01_index_build", experiments::fig01_index_build::run),
        ("fig05_ou_accuracy", experiments::fig05_ou_accuracy::run),
        (
            "fig06_label_accuracy",
            experiments::fig06_label_accuracy::run,
        ),
        (
            "fig07_generalization",
            experiments::fig07_generalization::run,
        ),
        ("fig08_interference", experiments::fig08_interference::run),
        ("fig09a_update", experiments::fig09a_update::run),
        ("fig09b_noisy_card", experiments::fig09b_noisy_card::run),
        ("fig10_hardware", experiments::fig10_hardware::run),
        ("fig11_end_to_end", experiments::fig11_end_to_end::run),
    ];
    let started = std::time::Instant::now();
    for (name, run) in suite {
        eprintln!("==> {name} ({scale:?})");
        let t0 = std::time::Instant::now();
        let text = run(scale);
        report::emit(name, &text);
        eprintln!("<== {name} done in {:.1?}\n", t0.elapsed());
    }
    eprintln!("full suite finished in {:.1?}", started.elapsed());
}
