//! Fig. 7 — OU-model generalization vs the QPPNet baseline.
//!
//! 7a (OLAP): QPPNet trains on one TPC-H dataset size and is tested on
//! 0.1× and 10× sizes; MB2 uses the same workload-independent OU-models for
//! every size. 7b (OLTP): QPPNet trains on TPC-C and is tested on TPC-C,
//! TATP, and SmallBank; metric is average absolute error per query template.
//! Also includes the no-normalization MB2 ablation and (beyond the paper) a
//! monolithic bag-of-operators baseline.

use mb2_baselines::{MonolithicModel, QppNet};
use mb2_common::Prng;
use mb2_core::training::{train_all, TrainingConfig};
use mb2_core::BehaviorModels;
use mb2_engine::sql::PlanNode;
use mb2_engine::Database;
use mb2_workloads::smallbank::SmallBank;
use mb2_workloads::tatp::Tatp;
use mb2_workloads::tpcc::Tpcc;
use mb2_workloads::tpch::Tpch;
use mb2_workloads::Workload;

use crate::experiments::common::oltp_query_instances;
use crate::pipeline::{build_ou_models, measure_latency_us, PipelineConfig};
use crate::report::{fmt, Table};
use crate::Scale;

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Fig. 7 — generalization: MB2 vs QPPNet (and ablations)\n\n");

    // Workload-independent MB2 models, trained once from runner data.
    let cfg = PipelineConfig::for_scale(scale);
    let built = build_ou_models(&cfg).expect("pipeline");
    let behavior = BehaviorModels::new(built.models, None);
    // Ablation: same data without output-label normalization.
    let (no_norm_models, _) = train_all(
        &built.repo,
        &TrainingConfig {
            normalize: false,
            ..cfg.training.clone()
        },
    )
    .expect("no-norm training");
    let behavior_no_norm = BehaviorModels::new(no_norm_models, None);

    out.push_str(&olap(scale, &behavior, &behavior_no_norm));
    out.push('\n');
    out.push_str(&oltp(scale, &behavior));
    out
}

// ----------------------------------------------------------------------
// Fig. 7a: OLAP across TPC-H dataset sizes.
// ----------------------------------------------------------------------

fn olap(scale: Scale, behavior: &BehaviorModels, behavior_no_norm: &BehaviorModels) -> String {
    let mut out = String::new();
    let train_scale = scale.pick(0.1, 0.5);
    let test_scales = scale.pick(vec![0.01, 0.1, 1.0], vec![0.05, 0.5, 5.0]);
    let reps = scale.pick(3, 5);

    // Train QPPNet + monolithic on the middle (training) size.
    let train_tpch = Tpch::with_scale(train_scale);
    let train_db = Database::open();
    train_tpch.load(&train_db).expect("tpch train");
    let mut rng = Prng::new(21);
    let mut training: Vec<(PlanNode, f64)> = Vec::new();
    for template in train_tpch.template_names() {
        for _ in 0..scale.pick(2, 4) {
            let sql = train_tpch.query(template, &mut rng);
            let plan = train_db.prepare(&sql).expect("plan");
            let latency = measure_latency_us(&train_db, &plan, reps);
            training.push((plan, latency));
        }
    }
    let refs: Vec<(&PlanNode, f64)> = training.iter().map(|(p, l)| (p, *l)).collect();
    let mut qppnet = QppNet::new(8, 32, scale.pick(80, 250), 1e-3, 17);
    qppnet.fit(&refs).expect("qppnet fit");
    let mut mono = MonolithicModel::default();
    mono.fit(&refs).expect("monolithic fit");
    let train_mean = training.iter().map(|(_, l)| l).sum::<f64>() / training.len() as f64;

    let mut table = Table::new(
        format!(
            "Fig. 7a — TPC-H query runtime prediction, avg relative error \
             (QPPNet/monolithic trained at scale {train_scale})"
        ),
        &["tpch scale", "qppnet", "monolithic", "mb2 w/o norm", "mb2"],
    );
    for &ts in &test_scales {
        let tpch = Tpch::with_scale(ts);
        let db = Database::open();
        tpch.load(&db).expect("tpch test");
        let mut errs = [0.0f64; 4];
        let mut n = 0usize;
        for (_, sql) in tpch.fixed_queries() {
            let plan = db.prepare(&sql).expect("plan");
            let actual = measure_latency_us(&db, &plan, reps).max(1.0);
            let preds = [
                qppnet.predict(&plan).unwrap_or(train_mean),
                mono.predict(&plan).unwrap_or(train_mean),
                behavior_no_norm.predict_query_elapsed_us(&plan, &db.knobs()),
                behavior.predict_query_elapsed_us(&plan, &db.knobs()),
            ];
            for (e, p) in errs.iter_mut().zip(preds) {
                *e += (actual - p).abs() / actual;
            }
            n += 1;
        }
        table.row(&[
            format!("{ts}x"),
            fmt(errs[0] / n as f64),
            fmt(errs[1] / n as f64),
            fmt(errs[2] / n as f64),
            fmt(errs[3] / n as f64),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape (paper Fig. 7a): QPPNet is competitive on its \
         training size but degrades sharply on other sizes; MB2 stays \
         stable; MB2 without normalization degrades on the largest size.\n",
    );
    out
}

// ----------------------------------------------------------------------
// Fig. 7b: OLTP across workloads.
// ----------------------------------------------------------------------

fn oltp(scale: Scale, behavior: &BehaviorModels) -> String {
    let mut out = String::new();
    let reps = scale.pick(4, 8);
    let per_template = scale.pick(2, 4);

    // QPPNet trains on TPC-C (the most complex workload, per the paper) and
    // is tested on all three.
    let tpcc = scale.pick(Tpcc::small(), Tpcc::default());
    let tatp = scale.pick(Tatp::small(), Tatp::default());
    let smallbank = scale.pick(SmallBank::small(), SmallBank::default());

    let mut table = Table::new(
        "Fig. 7b — OLTP query runtime prediction, avg absolute error per template (us)",
        &["workload", "qppnet", "mb2"],
    );

    let mut qppnet: Option<QppNet> = None;
    let mut train_mean = 0.0;
    for (wi, workload) in [
        (&tpcc as &(dyn Workload + Sync)),
        (&tatp as &(dyn Workload + Sync)),
        (&smallbank as &(dyn Workload + Sync)),
    ]
    .into_iter()
    .enumerate()
    {
        let db = Database::open();
        workload.load(&db).expect("load oltp workload");
        let instances = oltp_query_instances(&db, workload, per_template, 31 + wi as u64);
        // Measure actual latencies (mutating statements run + roll back via
        // measurement inside a txn-per-execution; here latencies come from
        // autocommit execution of read statements and committed writes on a
        // scratch copy — acceptable because templates re-sample params).
        let mut measured: Vec<(String, PlanNode, f64)> = Vec::new();
        for (name, stmts) in &instances {
            let plan = db.prepare(&stmts[0]).expect("plan");
            let latency = measure_latency_us(&db, &plan, reps);
            measured.push((name.clone(), plan, latency));
        }
        if wi == 0 {
            // Train QPPNet on TPC-C.
            let refs: Vec<(&PlanNode, f64)> = measured.iter().map(|(_, p, l)| (p, *l)).collect();
            let mut net = QppNet::new(8, 32, scale.pick(80, 250), 1e-3, 23);
            net.fit(&refs).expect("qppnet oltp fit");
            train_mean = measured.iter().map(|(_, _, l)| l).sum::<f64>() / measured.len() as f64;
            qppnet = Some(net);
        }
        let net = qppnet.as_ref().expect("trained");
        // Per-template average absolute error.
        let mut per_template_errs: std::collections::BTreeMap<String, (f64, f64, usize)> =
            std::collections::BTreeMap::new();
        for (name, plan, actual) in &measured {
            let q = net.predict(plan).unwrap_or(train_mean);
            let m = behavior.predict_query_elapsed_us(plan, &db.knobs());
            let entry = per_template_errs
                .entry(name.clone())
                .or_insert((0.0, 0.0, 0));
            entry.0 += (actual - q).abs();
            entry.1 += (actual - m).abs();
            entry.2 += 1;
        }
        let n_templates = per_template_errs.len().max(1) as f64;
        let (mut qe, mut me) = (0.0, 0.0);
        for (_, (q, m, c)) in per_template_errs {
            qe += q / c as f64;
            me += m / c as f64;
        }
        table.row(&[
            workload.name().to_string(),
            fmt(qe / n_templates),
            fmt(me / n_templates),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape (paper Fig. 7b): QPPNet wins on TPC-C (its training \
         workload); MB2 wins when generalizing to TATP and SmallBank.\n",
    );
    out
}
