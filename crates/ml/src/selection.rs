//! Model selection: MB2 trains every candidate algorithm per OU on an 80/20
//! split, picks the algorithm with the lowest validation error, and refits it
//! on all available data (paper §6.4).

use mb2_common::{DbError, DbResult};

use crate::data::{train_test_split, Dataset};
use crate::eval::mean_relative_error;
use crate::forest::{ForestConfig, RandomForest};
use crate::gbm::{GbmConfig, GradientBoosting};
use crate::kernel::KernelRegression;
use crate::linear::{HuberRegression, LinearRegression};
use crate::nn::MlpRegressor;
use crate::svr::LinearSvr;
use crate::Regressor;

/// The seven candidate algorithm families (paper §6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    Linear,
    Huber,
    Svr,
    Kernel,
    RandomForest,
    GradientBoosting,
    NeuralNetwork,
}

impl Algorithm {
    /// All seven families, in a stable order.
    pub const ALL: [Algorithm; 7] = [
        Algorithm::Linear,
        Algorithm::Huber,
        Algorithm::Svr,
        Algorithm::Kernel,
        Algorithm::RandomForest,
        Algorithm::GradientBoosting,
        Algorithm::NeuralNetwork,
    ];

    /// The four families the paper's Figures 5/6 report.
    pub const FIGURE5: [Algorithm; 4] = [
        Algorithm::RandomForest,
        Algorithm::NeuralNetwork,
        Algorithm::Huber,
        Algorithm::GradientBoosting,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Linear => "linear_regression",
            Algorithm::Huber => "huber_regression",
            Algorithm::Svr => "svr",
            Algorithm::Kernel => "kernel_regression",
            Algorithm::RandomForest => "random_forest",
            Algorithm::GradientBoosting => "gradient_boosting",
            Algorithm::NeuralNetwork => "neural_network",
        }
    }

    /// Instantiate an untrained model with the paper's default
    /// hyperparameters (50-tree forest, 2×25 MLP, deep GBM).
    pub fn instantiate(&self) -> Box<dyn Regressor> {
        match self {
            Algorithm::Linear => Box::new(LinearRegression::default()),
            Algorithm::Huber => Box::new(HuberRegression::default()),
            Algorithm::Svr => Box::new(LinearSvr::default()),
            Algorithm::Kernel => Box::new(KernelRegression::default()),
            Algorithm::RandomForest => Box::new(RandomForest::new(ForestConfig {
                n_estimators: 50,
                ..ForestConfig::default()
            })),
            Algorithm::GradientBoosting => Box::new(GradientBoosting::new(GbmConfig::default())),
            Algorithm::NeuralNetwork => Box::new(MlpRegressor::default()),
        }
    }
}

/// Validation results for each candidate plus the chosen final model.
pub struct SelectionReport {
    /// `(algorithm, validation relative error)` for every candidate tried.
    pub candidate_errors: Vec<(Algorithm, f64)>,
    pub chosen: Algorithm,
    /// Final model refit on all data.
    pub model: Box<dyn Regressor>,
    /// Total wall-clock training time across candidates + final refit.
    pub training_time: std::time::Duration,
}

impl SelectionReport {
    pub fn error_of(&self, alg: Algorithm) -> Option<f64> {
        self.candidate_errors
            .iter()
            .find(|(a, _)| *a == alg)
            .map(|(_, e)| *e)
    }
}

/// Runs MB2's selection procedure over a set of candidate algorithms.
pub struct ModelSelector {
    pub candidates: Vec<Algorithm>,
    pub train_fraction: f64,
    pub seed: u64,
}

impl Default for ModelSelector {
    fn default() -> Self {
        ModelSelector {
            candidates: Algorithm::ALL.to_vec(),
            train_fraction: 0.8,
            seed: 2021,
        }
    }
}

impl ModelSelector {
    pub fn with_candidates(candidates: Vec<Algorithm>) -> ModelSelector {
        ModelSelector {
            candidates,
            ..ModelSelector::default()
        }
    }

    /// Train/validate every candidate on an internal split, choose the best
    /// by mean relative error, refit on all data.
    pub fn select(&self, data: &Dataset) -> DbResult<SelectionReport> {
        if data.is_empty() {
            return Err(DbError::Model("model selection: empty dataset".into()));
        }
        let started = std::time::Instant::now();
        let (train, validation) = train_test_split(data, self.train_fraction, self.seed);
        // Degenerate split (tiny dataset): validate on the training data.
        let (train, validation) = if validation.is_empty() {
            (data.clone(), data.clone())
        } else {
            (train, validation)
        };

        let mut candidate_errors = Vec::with_capacity(self.candidates.len());
        for &alg in &self.candidates {
            let mut model = alg.instantiate();
            let err = match model.fit(&train.x, &train.y) {
                Ok(()) => {
                    let preds = model.predict(&validation.x);
                    let e = mean_relative_error(&validation.y, &preds);
                    if e.is_finite() {
                        e
                    } else {
                        f64::INFINITY
                    }
                }
                Err(_) => f64::INFINITY,
            };
            candidate_errors.push((alg, err));
        }
        let &(chosen, best_err) = candidate_errors
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("at least one candidate");
        if best_err.is_infinite() {
            return Err(DbError::Model(
                "model selection: every candidate failed".into(),
            ));
        }
        // Refit the winner on all available data (paper §6.4).
        let mut model = chosen.instantiate();
        model.fit(&data.x, &data.y)?;
        Ok(SelectionReport {
            candidate_errors,
            chosen,
            model,
            training_time: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::Prng;

    fn linear_dataset(n: usize) -> Dataset {
        let mut rng = Prng::new(55);
        let mut d = Dataset::default();
        for _ in 0..n {
            let a = rng.next_f64() * 10.0;
            d.push(vec![a], vec![4.0 * a + 1.0]);
        }
        d
    }

    #[test]
    fn selects_low_error_model_on_linear_data() {
        let data = linear_dataset(300);
        let selector =
            ModelSelector::with_candidates(vec![Algorithm::Linear, Algorithm::RandomForest]);
        let report = selector.select(&data).unwrap();
        // Linear data: OLS should be essentially exact and win.
        assert_eq!(report.chosen, Algorithm::Linear);
        let p = report.model.predict_one(&[5.0]);
        assert!((p[0] - 21.0).abs() < 0.1, "{p:?}");
    }

    #[test]
    fn report_contains_all_candidates() {
        let data = linear_dataset(100);
        let selector = ModelSelector::with_candidates(vec![
            Algorithm::Linear,
            Algorithm::Huber,
            Algorithm::GradientBoosting,
        ]);
        let report = selector.select(&data).unwrap();
        assert_eq!(report.candidate_errors.len(), 3);
        assert!(report.error_of(Algorithm::Huber).is_some());
        assert!(report.error_of(Algorithm::Svr).is_none());
    }

    #[test]
    fn empty_dataset_is_error() {
        let selector = ModelSelector::default();
        assert!(selector.select(&Dataset::default()).is_err());
    }

    #[test]
    fn all_seven_instantiate() {
        for alg in Algorithm::ALL {
            let m = alg.instantiate();
            assert_eq!(m.name(), alg.name());
        }
    }
}
