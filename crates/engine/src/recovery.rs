//! WAL-based crash recovery: rebuild a database from its log file.
//!
//! The log is redo-only (new images). Recovery makes two passes:
//! the committed-transaction set is collected first, then records replay in
//! log order — DDL immediately (it is autocommit), DML buffered per
//! transaction and applied at its commit record. Slots are remapped through
//! the `Insert` records' logged slot ids, so `Update`/`Delete` records find
//! their tuples in the rebuilt heap. Uncommitted trailing transactions
//! (in-flight at the crash) are discarded, as is a torn final record.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mb2_catalog::TableEntry;
use mb2_common::{Column, DbError, DbResult, Schema};
use mb2_obs::MetricsRegistry;
use mb2_storage::SlotId;
use mb2_wal::{read_log_with, LogCorruption, LogRecord};

use crate::config::DatabaseConfig;
use crate::database::Database;

/// Statistics from a recovery run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    pub records_read: usize,
    pub transactions_committed: usize,
    pub transactions_discarded: usize,
    pub tables_created: usize,
    pub indexes_created: usize,
    pub tuples_applied: usize,
    /// Bytes of an incomplete trailing record dropped by the reader (the
    /// expected crash signature; always tolerated).
    pub torn_tail_bytes: usize,
    /// Set when salvage mode dropped a corrupt log suffix.
    pub salvaged_corruption: Option<LogCorruption>,
    /// Wall-clock duration of the whole recovery (log scan + replay +
    /// re-analyze) — the observed label the recovery-cost model predicts.
    pub elapsed: Duration,
}

impl RecoveryReport {
    /// The recovery-cost model's feature vector: records read, tuples
    /// applied, and schema objects (tables + indexes) rebuilt.
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.records_read as f64,
            self.tuples_applied as f64,
            (self.tables_created + self.indexes_created) as f64,
        ]
    }

    /// Mirror the report into `registry` (the satellite observability
    /// surface: recovery is inspectable without log scraping).
    pub fn publish(&self, registry: &MetricsRegistry) {
        registry
            .counter("mb2_recovery_runs_total", "Completed WAL recovery runs.")
            .inc();
        registry
            .gauge(
                "mb2_recovery_records_read",
                "Log records read by the most recent recovery.",
            )
            .set(self.records_read as i64);
        registry
            .gauge(
                "mb2_recovery_tuples_applied",
                "Tuples replayed by the most recent recovery.",
            )
            .set(self.tuples_applied as i64);
        registry
            .float_gauge(
                "mb2_recovery_duration_seconds",
                "Wall-clock duration of the most recent recovery in seconds.",
            )
            .set(self.elapsed.as_secs_f64());
    }
}

/// Recovery behavior switches.
#[derive(Debug, Default, Clone, Copy)]
pub struct RecoveryOptions {
    /// Tolerate mid-file corruption by replaying only the valid prefix
    /// (reported in [`RecoveryReport::salvaged_corruption`]). When false
    /// (the default), corruption fails recovery.
    pub salvage: bool,
}

/// Rebuild a database from `log_path` with default (strict) options.
/// `config` configures the *new* instance — point its WAL somewhere else
/// (or disable it) to avoid re-logging the replay into the log being read.
pub fn recover(log_path: &Path, config: DatabaseConfig) -> DbResult<(Database, RecoveryReport)> {
    recover_with(log_path, config, RecoveryOptions::default())
}

/// Rebuild a database from `log_path`. See [`recover`] and
/// [`RecoveryOptions`].
pub fn recover_with(
    log_path: &Path,
    config: DatabaseConfig,
    options: RecoveryOptions,
) -> DbResult<(Database, RecoveryReport)> {
    if let Some(new_path) = &config.wal_path {
        if new_path == log_path {
            return Err(DbError::Wal(
                "recovery target WAL must differ from the log being replayed".into(),
            ));
        }
    }
    let started = Instant::now();
    let scan = read_log_with(log_path, options.salvage)?;
    let records = scan.records;
    let db = Database::new(config)?;
    let mut report = RecoveryReport {
        records_read: records.len(),
        torn_tail_bytes: scan.torn_tail_bytes,
        salvaged_corruption: scan.corruption,
        ..RecoveryReport::default()
    };

    // Pass 1: the committed-transaction set. A transaction counts as
    // committed only with a Commit record and no Abort record — if both
    // exist the Abort wins, since an abort after a failed durable commit
    // means the commit was never acknowledged.
    let aborted: HashSet<u64> = records
        .iter()
        .filter_map(|r| match r {
            LogRecord::Abort { txn_id } => Some(*txn_id),
            _ => None,
        })
        .collect();
    let committed: HashSet<u64> = records
        .iter()
        .filter_map(|r| match r {
            LogRecord::Commit { txn_id } if !aborted.contains(txn_id) => Some(*txn_id),
            _ => None,
        })
        .collect();

    // Pass 2: replay.
    let mut names: HashMap<u32, String> = HashMap::new(); // old table id -> name
    let mut slot_map: HashMap<(u32, u64), SlotId> = HashMap::new();
    let mut pending: HashMap<u64, Vec<&LogRecord>> = HashMap::new();
    let mut began: HashSet<u64> = HashSet::new();

    let entry_of =
        |db: &Database, names: &HashMap<u32, String>, id: u32| -> DbResult<Arc<TableEntry>> {
            let name = names
                .get(&id)
                .ok_or_else(|| DbError::Wal(format!("log references unknown table id {id}")))?;
            db.catalog().get(name)
        };

    for rec in &records {
        match rec {
            LogRecord::CreateTable {
                table_id,
                name,
                columns,
            } => {
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|c| {
                            Ok(
                                Column::new(c.name.clone(), LogRecord::tag_type(c.type_tag)?)
                                    .with_varchar_len(c.varchar_len as usize),
                            )
                        })
                        .collect::<DbResult<Vec<_>>>()?,
                );
                // The WAL never records a shard count — slot assignment is
                // shard-independent — so a log written at one shard count
                // recovers into whatever the current knob says.
                let entry = db.catalog().create_table_with_shards(
                    name,
                    schema,
                    db.knobs().shard_count.max(1),
                )?;
                db.gc().register(entry.table.clone());
                db.compactor().register(entry.table.clone());
                entry.table.set_faults(db.faults().cloned());
                // Re-log the DDL under the *new* table id. DML replayed
                // through transactions re-logs itself, but schema changes
                // are applied through the catalog directly — without this
                // the new WAL would hold DML referencing tables it never
                // creates, and a second recovery (supervisor swap, chained
                // crashes) would fail on an unknown table id.
                db.log_ddl(&LogRecord::CreateTable {
                    table_id: entry.table.id.0,
                    name: name.clone(),
                    columns: columns.clone(),
                })?;
                names.insert(*table_id, name.clone());
                report.tables_created += 1;
            }
            LogRecord::CreateIndex {
                table_id,
                name,
                columns,
            } => {
                let entry = entry_of(&db, &names, *table_id)?;
                let positions: Vec<usize> = columns.iter().map(|&c| c as usize).collect();
                let index = mb2_index::Index::new(name.clone(), positions);
                // Populate from the currently visible heap.
                let now = db.txn_manager().now();
                let mut entries = Vec::new();
                entry
                    .table
                    .scan_visible(now, mb2_storage::Ts::txn(0), |slot, tuple| {
                        entries.push((index.key_of(tuple), slot));
                        true
                    });
                let built = mb2_index::parallel_build(entries, 1, &|| {});
                index.replace_tree(built.tree);
                entry.add_index(Arc::new(index))?;
                db.log_ddl(&LogRecord::CreateIndex {
                    table_id: entry.table.id.0,
                    name: name.clone(),
                    columns: columns.clone(),
                })?;
                report.indexes_created += 1;
            }
            LogRecord::DropTable { table_id } => {
                if let Some(name) = names.remove(table_id) {
                    if let Ok(entry) = db.catalog().get(&name) {
                        let new_id = entry.table.id.0;
                        if db.catalog().drop_table(&name).is_ok() {
                            db.log_ddl(&LogRecord::DropTable { table_id: new_id })?;
                        }
                    }
                }
            }
            LogRecord::DropIndex { table_id, name } => {
                if let Ok(entry) = entry_of(&db, &names, *table_id) {
                    if entry.drop_index(name).is_ok() {
                        db.log_ddl(&LogRecord::DropIndex {
                            table_id: entry.table.id.0,
                            name: name.clone(),
                        })?;
                    }
                }
            }
            LogRecord::Begin { txn_id } => {
                began.insert(*txn_id);
                pending.entry(*txn_id).or_default();
            }
            LogRecord::Insert { txn_id, .. }
            | LogRecord::Update { txn_id, .. }
            | LogRecord::Delete { txn_id, .. } => {
                if committed.contains(txn_id) {
                    pending.entry(*txn_id).or_default().push(rec);
                }
            }
            LogRecord::Abort { txn_id } => {
                pending.remove(txn_id);
            }
            LogRecord::Commit { txn_id } => {
                if !committed.contains(txn_id) {
                    // Commit-then-Abort: the durable commit failed and the
                    // transaction rolled back. Nothing to replay.
                    continue;
                }
                let ops = pending.remove(txn_id).unwrap_or_default();
                let mut txn = db.begin();
                for op in ops {
                    match op {
                        LogRecord::Insert {
                            table_id,
                            slot,
                            tuple,
                            ..
                        } => {
                            let entry = entry_of(&db, &names, *table_id)?;
                            let new_slot = txn.insert(&entry.table, tuple.clone())?;
                            for index in entry.indexes() {
                                index.insert(index.key_of(tuple), new_slot);
                            }
                            slot_map.insert((*table_id, *slot), new_slot);
                            report.tuples_applied += 1;
                        }
                        LogRecord::Update {
                            table_id,
                            slot,
                            tuple,
                            ..
                        } => {
                            let entry = entry_of(&db, &names, *table_id)?;
                            let new_slot = *slot_map.get(&(*table_id, *slot)).ok_or_else(|| {
                                DbError::Wal(format!("update references unlogged slot {slot}"))
                            })?;
                            let old = txn.update(&entry.table, new_slot, tuple.clone())?;
                            for index in entry.indexes() {
                                let old_key = index.key_of(&old);
                                let new_key = index.key_of(tuple);
                                if old_key != new_key {
                                    index.remove(&old_key, |v| *v == new_slot);
                                    index.insert(new_key, new_slot);
                                }
                            }
                            report.tuples_applied += 1;
                        }
                        LogRecord::Delete { table_id, slot, .. } => {
                            let entry = entry_of(&db, &names, *table_id)?;
                            let new_slot = *slot_map.get(&(*table_id, *slot)).ok_or_else(|| {
                                DbError::Wal(format!("delete references unlogged slot {slot}"))
                            })?;
                            let old = txn.delete(&entry.table, new_slot)?;
                            for index in entry.indexes() {
                                index.remove(&index.key_of(&old), |v| *v == new_slot);
                            }
                            report.tuples_applied += 1;
                        }
                        _ => unreachable!("only DML is buffered"),
                    }
                }
                txn.commit()?;
                report.transactions_committed += 1;
            }
        }
    }
    // Every transaction that began but did not commit was discarded —
    // whether it logged an Abort record, was in flight at the crash, or had
    // its Commit record overridden by a later Abort. Counting directly from
    // the two sets avoids double-counting transactions that show up both as
    // Abort records and as in-flight leftovers.
    report.transactions_discarded = began.iter().filter(|t| !committed.contains(t)).count();
    db.analyze_all();
    report.elapsed = started.elapsed();
    report.publish(db.metrics());
    Ok((db, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb2_common::Value;

    fn temp_wal(name: &str) -> std::path::PathBuf {
        let p =
            std::env::temp_dir().join(format!("mb2_recovery_{}_{name}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn logged_db(path: &std::path::Path) -> Database {
        Database::new(DatabaseConfig {
            wal_enabled: true,
            wal_path: Some(path.to_path_buf()),
            ..DatabaseConfig::default()
        })
        .unwrap()
    }

    fn flush(db: &Database) {
        db.wal().unwrap().flush_now().unwrap();
    }

    #[test]
    fn recovers_committed_data_and_schema() {
        let path = temp_wal("basic");
        {
            let db = logged_db(&path);
            db.execute("CREATE TABLE t (a INT, b VARCHAR(8))").unwrap();
            db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
                .unwrap();
            db.execute("UPDATE t SET b = 'updated' WHERE a = 2")
                .unwrap();
            db.execute("DELETE FROM t WHERE a = 3").unwrap();
            flush(&db);
        }
        let (db, report) = recover(
            &path,
            DatabaseConfig {
                wal_enabled: false,
                ..DatabaseConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.tables_created, 1);
        assert!(report.tuples_applied >= 5);
        let r = db.execute("SELECT a, b FROM t ORDER BY a").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[1][1], Value::from("updated"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn uncommitted_transactions_discarded() {
        let path = temp_wal("uncommitted");
        {
            let db = logged_db(&path);
            db.execute("CREATE TABLE t (a INT)").unwrap();
            db.execute("INSERT INTO t VALUES (1)").unwrap();
            // A transaction left open at the "crash".
            let mut s = db.session();
            s.execute("BEGIN").unwrap();
            s.execute("INSERT INTO t VALUES (99)").unwrap();
            flush(&db); // crash before COMMIT
            std::mem::forget(s); // do not run the rollback path
        }
        let (db, _) = recover(
            &path,
            DatabaseConfig {
                wal_enabled: false,
                ..DatabaseConfig::default()
            },
        )
        .unwrap();
        let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn indexes_rebuilt_and_usable() {
        let path = temp_wal("indexes");
        {
            let db = logged_db(&path);
            db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
            for i in 0..50 {
                db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i % 5))
                    .unwrap();
            }
            db.execute("CREATE INDEX t_a ON t (a)").unwrap();
            // Post-index DML must be index-maintained through recovery too.
            db.execute("INSERT INTO t VALUES (100, 0)").unwrap();
            db.execute("UPDATE t SET a = 200 WHERE a = 100").unwrap();
            flush(&db);
        }
        let (db, report) = recover(
            &path,
            DatabaseConfig {
                wal_enabled: false,
                ..DatabaseConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.indexes_created, 1);
        db.execute("ANALYZE t").unwrap();
        let plan = db.prepare("SELECT * FROM t WHERE a = 200").unwrap();
        assert!(plan.explain().contains("IndexScan"), "{}", plan.explain());
        let r = db.execute("SELECT * FROM t WHERE a = 200").unwrap();
        assert_eq!(r.rows.len(), 1);
        let r = db.execute("SELECT * FROM t WHERE a = 100").unwrap();
        assert!(r.rows.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dropped_objects_stay_dropped() {
        let path = temp_wal("drops");
        {
            let db = logged_db(&path);
            db.execute("CREATE TABLE keep (a INT)").unwrap();
            db.execute("CREATE TABLE gone (a INT)").unwrap();
            db.execute("INSERT INTO keep VALUES (1)").unwrap();
            db.execute("CREATE INDEX keep_a ON keep (a)").unwrap();
            db.execute("DROP INDEX keep_a ON keep").unwrap();
            db.execute("DROP TABLE gone").unwrap();
            flush(&db);
        }
        let (db, report) = recover(
            &path,
            DatabaseConfig {
                wal_enabled: false,
                ..DatabaseConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.tables_created, 2);
        assert!(
            db.catalog().get("gone").is_err(),
            "dropped table resurrected"
        );
        let keep = db.catalog().get("keep").unwrap();
        assert!(
            keep.index_named("keep_a").is_none(),
            "dropped index resurrected"
        );
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM keep").unwrap().rows[0][0],
            Value::Int(1)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn refuses_to_overwrite_source_log() {
        let path = temp_wal("selfclobber");
        std::fs::write(&path, b"").unwrap();
        let err = recover(
            &path,
            DatabaseConfig {
                wal_enabled: true,
                wal_path: Some(path.clone()),
                ..DatabaseConfig::default()
            },
        );
        assert!(err.is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn abort_records_and_in_flight_txns_each_discarded_once() {
        // Regression: the discarded count used to be derived with a min()
        // clamp that double-counted when a log held both explicit Abort
        // records and transactions still in flight at the crash. Each must
        // count exactly once.
        let path = temp_wal("abort_accounting");
        {
            let db = logged_db(&path);
            db.execute("CREATE TABLE t (a INT)").unwrap();
            db.execute("INSERT INTO t VALUES (1)").unwrap(); // 1 committed txn

            // Explicitly rolled back: Begin + Insert + Abort in the log.
            let mut a = db.session();
            a.execute("BEGIN").unwrap();
            a.execute("INSERT INTO t VALUES (10)").unwrap();
            a.execute("ROLLBACK").unwrap();
            drop(a);

            // In flight at the crash: Begin + Insert, no terminator.
            let mut b = db.session();
            b.execute("BEGIN").unwrap();
            b.execute("INSERT INTO t VALUES (11)").unwrap();
            flush(&db);
            std::mem::forget(b);
        }
        let (db, report) = recover(
            &path,
            DatabaseConfig {
                wal_enabled: false,
                ..DatabaseConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.transactions_committed, 1);
        assert_eq!(report.transactions_discarded, 2);
        let r = db.execute("SELECT a FROM t").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn aborted_updates_never_surface_after_recovery() {
        let path = temp_wal("abort_invisible");
        {
            let db = logged_db(&path);
            db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
            db.execute("INSERT INTO t VALUES (1, 100), (2, 200)")
                .unwrap();
            let mut s = db.session();
            s.execute("BEGIN").unwrap();
            s.execute("UPDATE t SET b = 0 WHERE a = 1").unwrap();
            s.execute("DELETE FROM t WHERE a = 2").unwrap();
            s.execute("ROLLBACK").unwrap();
            drop(s);
            flush(&db);
        }
        let (db, _) = recover(
            &path,
            DatabaseConfig {
                wal_enabled: false,
                ..DatabaseConfig::default()
            },
        )
        .unwrap();
        let r = db.execute("SELECT a, b FROM t ORDER BY a").unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1), Value::Int(100)],
                vec![Value::Int(2), Value::Int(200)]
            ]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_log_rejected_strictly_and_salvaged_on_request() {
        let path = temp_wal("corrupt");
        {
            let db = logged_db(&path);
            db.execute("CREATE TABLE t (a INT)").unwrap();
            for i in 0..8 {
                db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
            }
            flush(&db);
        }
        // Flip one CRC bit in a record past the middle of the file.
        let mut data = std::fs::read(&path).unwrap();
        let mut off = 0usize;
        while off < data.len() / 2 {
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            off += 8 + len;
        }
        data[off + 4] ^= 0x01;
        std::fs::write(&path, &data).unwrap();

        let cfg = || DatabaseConfig {
            wal_enabled: false,
            ..DatabaseConfig::default()
        };
        match recover(&path, cfg()) {
            Err(DbError::Wal(m)) => assert!(m.contains("checksum"), "{m}"),
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("strict recovery accepted a corrupt log"),
        }
        let (db, report) = recover_with(&path, cfg(), RecoveryOptions { salvage: true }).unwrap();
        let c = report
            .salvaged_corruption
            .expect("corruption must be reported");
        assert_eq!(c.offset, off);
        // The valid prefix survived: the table plus every insert before the
        // corrupted record.
        let n = db.execute("SELECT COUNT(*) FROM t").unwrap().rows[0][0]
            .as_i64()
            .unwrap();
        assert!(n > 0 && n < 8, "salvage kept {n} of 8 rows");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn workload_survives_recovery_round_trip() {
        let path = temp_wal("workload");
        let expected;
        {
            let db = logged_db(&path);
            db.execute("CREATE TABLE accts (id INT, bal FLOAT)")
                .unwrap();
            for i in 0..30 {
                db.execute(&format!("INSERT INTO accts VALUES ({i}, 100.0)"))
                    .unwrap();
            }
            for i in 0..20 {
                db.execute(&format!(
                    "UPDATE accts SET bal = bal + {} WHERE id = {}",
                    i,
                    i % 30
                ))
                .unwrap();
            }
            expected = db.execute("SELECT SUM(bal) FROM accts").unwrap().rows[0][0]
                .as_f64()
                .unwrap();
            flush(&db);
        }
        let (db, _) = recover(
            &path,
            DatabaseConfig {
                wal_enabled: false,
                ..DatabaseConfig::default()
            },
        )
        .unwrap();
        let got = db.execute("SELECT SUM(bal) FROM accts").unwrap().rows[0][0]
            .as_f64()
            .unwrap();
        assert!((got - expected).abs() < 1e-9);
        let _ = std::fs::remove_file(&path);
    }
}
