//! Execution context: catalog, transaction, knobs, and tracking hooks.

use std::sync::Arc;

use mb2_catalog::Catalog;
use mb2_common::HardwareProfile;
use mb2_index::IndexObs;
use mb2_txn::Transaction;

use crate::tracker::OuRecorder;

/// The execution-mode behavior knob (paper §4.2 feature 7): NoisePage runs
/// queries either through its bytecode interpreter or as JIT-compiled code.
/// Here `Interpret` walks expression trees per tuple and `Compiled`
/// pre-lowers expressions to native closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    Interpret,
    Compiled,
}

impl ExecutionMode {
    /// Feature encoding for OU-model inputs (0 = interpret, 1 = compiled).
    pub fn as_feature(&self) -> f64 {
        match self {
            ExecutionMode::Interpret => 0.0,
            ExecutionMode::Compiled => 1.0,
        }
    }
}

/// Everything an operator needs to run.
pub struct ExecContext<'a> {
    pub catalog: &'a Catalog,
    pub txn: &'a mut Transaction,
    pub mode: ExecutionMode,
    /// Metrics sink; `None` disables per-OU tracking entirely.
    pub recorder: Option<&'a dyn OuRecorder>,
    pub hw: HardwareProfile,
    /// Software-update emulation for the paper's Fig. 9a adaptation study:
    /// sleep 1µs after every `n` tuples inserted into a join hash table
    /// (`0` disables the injected regression).
    pub jht_sleep_every: usize,
    /// Latch/build instrumentation attached to indexes created by this
    /// context; `None` leaves new indexes uninstrumented.
    pub index_obs: Option<Arc<IndexObs>>,
    /// Rows per [`crate::batch::Batch`] flowing through the operator
    /// pipeline. `1` degenerates to tuple-at-a-time execution (the old
    /// behavior); larger batches amortize per-pull overhead.
    pub batch_size: usize,
    /// Shared worker pool for morsel-driven intra-query parallelism.
    /// `None` (the default, and what `Knobs::parallelism == 1` maps to)
    /// keeps the serial single-thread pipeline.
    pub pool: Option<Arc<crate::parallel::ExecPool>>,
    /// Slots per morsel when `pool` is set. Tests shrink this to exercise
    /// multi-morsel plans on small tables.
    pub morsel_slots: usize,
    /// The `columnar_enabled` behavior knob: sequential scans serve clean
    /// sealed units from their columnar blocks (vectorized predicates, zone
    /// maps, late materialization — the Block/Scan OU) instead of walking
    /// version chains. Row output is byte-identical either way.
    pub columnar: bool,
}

impl<'a> ExecContext<'a> {
    pub fn new(catalog: &'a Catalog, txn: &'a mut Transaction) -> ExecContext<'a> {
        ExecContext {
            catalog,
            txn,
            mode: ExecutionMode::Compiled,
            recorder: None,
            hw: HardwareProfile::default(),
            jht_sleep_every: 0,
            index_obs: None,
            batch_size: crate::batch::DEFAULT_BATCH_SIZE,
            pool: None,
            morsel_slots: crate::parallel::DEFAULT_MORSEL_SLOTS,
            columnar: false,
        }
    }

    pub fn with_columnar(mut self, columnar: bool) -> ExecContext<'a> {
        self.columnar = columnar;
        self
    }

    pub fn with_pool(mut self, pool: Arc<crate::parallel::ExecPool>) -> ExecContext<'a> {
        self.pool = Some(pool);
        self
    }

    pub fn with_morsel_slots(mut self, morsel_slots: usize) -> ExecContext<'a> {
        self.morsel_slots = morsel_slots.max(1);
        self
    }

    pub fn with_batch_size(mut self, batch_size: usize) -> ExecContext<'a> {
        self.batch_size = batch_size.max(1);
        self
    }

    pub fn with_mode(mut self, mode: ExecutionMode) -> ExecContext<'a> {
        self.mode = mode;
        self
    }

    pub fn with_recorder(mut self, recorder: &'a dyn OuRecorder) -> ExecContext<'a> {
        self.recorder = Some(recorder);
        self
    }

    pub fn with_hw(mut self, hw: HardwareProfile) -> ExecContext<'a> {
        self.hw = hw;
        self
    }

    pub fn with_index_obs(mut self, obs: Arc<IndexObs>) -> ExecContext<'a> {
        self.index_obs = Some(obs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_feature_encoding() {
        assert_eq!(ExecutionMode::Interpret.as_feature(), 0.0);
        assert_eq!(ExecutionMode::Compiled.as_feature(), 1.0);
    }
}
