//! Observability overhead — the runtime-metrics analog of the paper's
//! Table 2 claim that data collection costs <1% of throughput.
//!
//! Runs the same prepared statements under three configurations and
//! compares throughput:
//!
//! 1. **tracker off** — `Database::set_metrics_enabled(false)`: span timers
//!    never read the clock (counters still tick; that cost is part of the
//!    baseline, as in production).
//! 2. **tracker on** — the default: statement/WAL/GC latency spans live.
//! 3. **tracker on + OU recorder** — additionally streams every per-OU
//!    measurement into the `mb2_ou_*` runtime histograms.
//!
//! Configurations are interleaved round-robin so clock drift, allocator
//! state, and frequency scaling bias none of them. The acceptance budget
//! for this reproduction is 5% (looser than the paper's <1% because these
//! queries are microseconds long, not milliseconds).

use std::time::{Duration, Instant};

use mb2_engine::obs::expose::summarize;
use mb2_engine::obs::MetricHandle;
use mb2_engine::Database;

use crate::report::Table;
use crate::Scale;

/// Overhead budget (fraction of baseline throughput) the run is judged
/// against in the report.
pub const OVERHEAD_BUDGET: f64 = 0.05;

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Observability overhead — tracker-on vs tracker-off throughput\n\n");

    let db = Database::open();
    db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    let rows = scale.pick(200, 1000);
    for i in 0..rows {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 7 % 100))
            .unwrap();
    }
    db.execute("ANALYZE t").unwrap();

    let select = db.prepare("SELECT COUNT(*) FROM t WHERE b < 50").unwrap();
    let point = db.prepare("SELECT a FROM t WHERE a = 17").unwrap();
    let write = db.prepare("UPDATE t SET b = b + 1 WHERE a = 17").unwrap();
    let plans = [&select, &point, &write];

    let recorder = db.obs_recorder().clone();
    let rounds = scale.pick(5, 24);
    let per_round = scale.pick(30, 120);
    // Warm up caches and the JIT-lowered closures before timing.
    for plan in plans {
        db.execute_plan(plan, None).unwrap();
    }

    let names = ["tracker off", "tracker on", "tracker on + OU recorder"];
    let mut round_times: [Vec<Duration>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..rounds {
        for (config, times) in round_times.iter_mut().enumerate() {
            db.set_metrics_enabled(config != 0);
            let rec =
                (config == 2).then_some(recorder.as_ref() as &dyn mb2_engine::exec::OuRecorder);
            let t0 = Instant::now();
            for i in 0..per_round {
                db.execute_plan(plans[i % plans.len()], rec).unwrap();
            }
            times.push(t0.elapsed());
        }
    }
    db.set_metrics_enabled(true);

    // Median round time per configuration: a single GC/flush stall in one
    // round would otherwise dominate the comparison.
    let throughput: Vec<f64> = round_times
        .iter_mut()
        .map(|times| {
            times.sort();
            per_round as f64 / times[times.len() / 2].as_secs_f64()
        })
        .collect();
    let baseline = throughput[0];

    let mut table = Table::new(
        "throughput by configuration (interleaved rounds, median round)",
        &["configuration", "stmts/sec", "overhead vs off"],
    );
    for (i, name) in names.iter().enumerate() {
        let overhead = (baseline - throughput[i]) / baseline;
        table.row(&[
            (*name).into(),
            format!("{:.0}", throughput[i]),
            if i == 0 {
                "(baseline)".into()
            } else {
                format!("{:.2}%", overhead * 100.0)
            },
        ]);
    }
    out.push_str(&table.render());

    let full_overhead = (baseline - throughput[2]) / baseline;
    out.push_str(&format!(
        "\nfull self-monitoring overhead: {:.2}% (budget {:.0}%) — {}\n",
        full_overhead * 100.0,
        OVERHEAD_BUDGET * 100.0,
        if full_overhead <= OVERHEAD_BUDGET {
            "WITHIN BUDGET"
        } else {
            "OVER BUDGET"
        },
    ));

    // What the tracker itself saw: the registry's own readout of the run.
    out.push_str("\nself-monitoring readout (from the registry under test):\n");
    for m in db.metrics().snapshot() {
        if m.family != "mb2_stmt_latency_us" {
            continue;
        }
        if let MetricHandle::Histogram(h) = &m.handle {
            let snap = h.snapshot();
            if snap.is_empty() {
                continue;
            }
            let kind = m
                .labels
                .iter()
                .find(|(k, _)| k == "kind")
                .map(|(_, v)| v.as_str())
                .unwrap_or("?");
            out.push_str(&format!("  {kind:<8} {}\n", summarize(&snap)));
        }
    }
    out
}
