//! Multi-client closed-loop driver for `mb2-server` — the network serving
//! path measured end to end over real sockets.
//!
//! Five phases against one TATP + SmallBank dataset:
//!
//! 1. **Concurrent-reader divergence** — 32 simultaneously connected
//!    clients (barrier-synchronized, verified via the server's connection
//!    gauge) replay deterministic read-only queries; every wire result is
//!    compared to the in-process result for the same SQL. Zero divergence
//!    required.
//! 2. **Write-replay divergence** — a deterministic seeded SmallBank
//!    transaction stream runs over the wire into the served database and
//!    in-process into an identically loaded oracle database; per-statement
//!    outcomes and the final table dumps must match exactly.
//! 3. **Closed-loop throughput** — 32 connections replay the TATP mix
//!    for a fixed window; reports committed transactions/sec, conflicts,
//!    and admission rejections.
//! 4. **Overload shedding** — the same database re-served with
//!    `max_inflight_queries = 2` under 8 hammering clients: admission
//!    control must answer with typed ServerBusy frames (reject, not
//!    queue).
//! 5. **Predictive scheduling under mixed overload** — train behavior
//!    models with the real pipeline, then serve the same database twice
//!    under an identical cheap/expensive closed loop: the legacy blunt
//!    semaphore vs the interference-predicted tiered scheduler. Gates:
//!    cheap-tier time-to-success p99 improves ≥ 2× and total goodput does
//!    not regress.
//!
//! Emits `results/server_throughput.txt` and machine-readable
//! `results/BENCH_server.json`.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use mb2_common::{DbError, Prng};
use mb2_core::{BehaviorModels, QueryTemplate};
use mb2_engine::{Database, DatabaseConfig};
use mb2_server::{Client, SchedulerPolicy, Server, ServerConfig, TierPolicy};
use mb2_workloads::smallbank::SmallBank;
use mb2_workloads::tatp::Tatp;
use mb2_workloads::{execute_transaction, Workload};

use crate::pipeline::{build_interference_model, build_ou_models, PipelineConfig};
use crate::report::{fmt, results_dir, Table};
use crate::Scale;

/// Concurrent connections the driver must sustain (acceptance gate).
pub const CONNECTIONS: usize = 32;

fn serving_config() -> ServerConfig {
    ServerConfig {
        max_connections: CONNECTIONS * 2,
        max_inflight_queries: CONNECTIONS * 2,
        ..ServerConfig::default()
    }
}

pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Network serving — multi-client closed loop over real sockets\n\n");

    let tatp = scale.pick(Tatp::small(), Tatp::default());
    let smallbank = scale.pick(SmallBank::small(), SmallBank::default());

    let cfg = DatabaseConfig {
        gc_interval: Some(Duration::from_millis(10)),
        ..DatabaseConfig::default()
    };
    let db = Arc::new(Database::new(cfg).expect("database"));
    tatp.load(&db).expect("tatp load");
    smallbank.load(&db).expect("smallbank load");

    // ---- Phase 1: concurrent-reader divergence ------------------------
    let queries: Arc<Vec<String>> = Arc::new(
        (0..CONNECTIONS)
            .flat_map(|c| {
                let lo = c * 17;
                vec![
                    "SELECT COUNT(*) FROM tatp_subscriber".to_string(),
                    format!(
                        "SELECT s_id, bit_1, vlr_location FROM tatp_subscriber \
                         WHERE s_id >= {lo} AND s_id < {} ORDER BY s_id",
                        lo + 25
                    ),
                    "SELECT sf_type, COUNT(*), SUM(is_active) FROM tatp_special_facility \
                     GROUP BY sf_type ORDER BY sf_type"
                        .to_string(),
                    format!(
                        "SELECT custid, name FROM sb_accounts WHERE custid < {} ORDER BY custid",
                        (c + 1) * 3
                    ),
                ]
            })
            .collect(),
    );
    let expected: Arc<Vec<_>> = Arc::new(
        queries
            .iter()
            .map(|q| db.execute(q).expect("oracle query").rows)
            .collect(),
    );

    let server = Server::start(db.clone(), serving_config()).expect("server start");
    let addr = server.local_addr().to_string();

    let barrier = Arc::new(Barrier::new(CONNECTIONS + 1));
    let divergences = Arc::new(AtomicU64::new(0));
    let compared = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..CONNECTIONS)
        .map(|cid| {
            let addr = addr.clone();
            let queries = queries.clone();
            let expected = expected.clone();
            let barrier = barrier.clone();
            let divergences = divergences.clone();
            let compared = compared.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                barrier.wait();
                // Each client walks the whole query list, starting at its
                // own offset so the wire sees varied interleavings.
                for i in 0..queries.len() {
                    let qi = (i + cid * 4) % queries.len();
                    let got = client.query(&queries[qi]).expect("wire query");
                    compared.fetch_add(1, Ordering::Relaxed);
                    if got.rows != expected[qi] {
                        divergences.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    barrier.wait();
    let peak_connections = server.active_connections();
    for h in handles {
        h.join().unwrap();
    }
    let compared = compared.load(Ordering::Relaxed);
    let divergences = divergences.load(Ordering::Relaxed);

    // ---- Phase 2: deterministic write-replay divergence ---------------
    let oracle = Database::new(DatabaseConfig::default()).expect("oracle db");
    tatp.load(&oracle).expect("oracle tatp load");
    smallbank.load(&oracle).expect("oracle smallbank load");

    let replay_txns = scale.pick(200, 600);
    let templates = smallbank.template_names();
    let mut rng = Prng::new(0xb2b2_0001);
    let mut outcome_mismatches = 0u64;
    let mut client = Client::connect(&addr).expect("replay connect");
    for i in 0..replay_txns {
        let template = templates[i % templates.len()];
        let statements = smallbank.sample_transaction(template, &mut rng);
        let wire_ok = client.execute_transaction(&statements).is_ok();
        let oracle_ok = execute_transaction(&oracle, &statements).is_ok();
        if wire_ok != oracle_ok {
            outcome_mismatches += 1;
        }
    }
    let dumps = [
        "SELECT custid, name FROM sb_accounts ORDER BY custid",
        "SELECT custid, bal FROM sb_savings ORDER BY custid",
        "SELECT custid, bal FROM sb_checking ORDER BY custid",
    ];
    let mut dump_mismatches = 0u64;
    for q in dumps {
        let wire = client.query(q).expect("wire dump").rows;
        let inproc = oracle.execute(q).expect("oracle dump").rows;
        if wire != inproc {
            dump_mismatches += 1;
        }
    }
    oracle.shutdown();

    // ---- Phase 3: closed-loop throughput ------------------------------
    let window = scale.pick(Duration::from_millis(500), Duration::from_secs(2));
    let tatp = Arc::new(tatp);
    let committed = Arc::new(AtomicU64::new(0));
    let conflicts = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let start_gate = Arc::new(Barrier::new(CONNECTIONS + 1));
    let loop_handles: Vec<_> = (0..CONNECTIONS)
        .map(|cid| {
            let addr = addr.clone();
            let tatp = tatp.clone();
            let committed = committed.clone();
            let conflicts = conflicts.clone();
            let shed = shed.clone();
            let start_gate = start_gate.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut rng = Prng::new(0xb2b2_1000 + cid as u64);
                let names = tatp.template_names();
                start_gate.wait();
                let deadline = Instant::now() + window;
                while Instant::now() < deadline {
                    let template = *rng.choose(&names);
                    let statements = tatp.sample_transaction(template, &mut rng);
                    match client.execute_transaction(&statements) {
                        Ok(_) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(DbError::ServerBusy(_)) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(DbError::Net(e)) => panic!("connection lost mid-loop: {e}"),
                        Err(_) => {
                            conflicts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    start_gate.wait();
    let t0 = Instant::now();
    for h in loop_handles {
        h.join().unwrap();
    }
    let elapsed = t0.elapsed();
    let committed = committed.load(Ordering::Relaxed);
    let conflicts = conflicts.load(Ordering::Relaxed);
    let shed = shed.load(Ordering::Relaxed);
    let txn_per_sec = committed as f64 / elapsed.as_secs_f64();

    // Drain the serving front-end but keep the database: phase 4 re-serves
    // it under a deliberately tiny admission bound.
    drop(client);
    drop(server);

    // ---- Phase 4: overload shedding -----------------------------------
    let tight = Server::start(
        db.clone(),
        ServerConfig {
            max_inflight_queries: 2,
            ..ServerConfig::default()
        },
    )
    .expect("tight server");
    let tight_addr = tight.local_addr().to_string();
    let busy = Arc::new(AtomicU64::new(0));
    let admitted = Arc::new(AtomicU64::new(0));
    let hammer: Vec<_> = (0..8)
        .map(|_| {
            let addr = tight_addr.clone();
            let busy = busy.clone();
            let admitted = admitted.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let deadline = Instant::now() + Duration::from_millis(400);
                while Instant::now() < deadline {
                    match client.query(
                        "SELECT sf_type, COUNT(*), SUM(data_a) FROM tatp_special_facility \
                         GROUP BY sf_type",
                    ) {
                        Ok(_) => {
                            admitted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(DbError::ServerBusy(_)) => {
                            busy.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error under overload: {e:?}"),
                    }
                }
            })
        })
        .collect();
    for h in hammer {
        h.join().unwrap();
    }
    let busy = busy.load(Ordering::Relaxed);
    let admitted = admitted.load(Ordering::Relaxed);
    drop(tight); // drain only; phase 5 re-serves the same database

    // ---- Phase 5: predictive scheduling under mixed overload ----------
    // Train the behavior models with the real pipeline (runners + OU
    // training), plus an interference model over concurrent windows of
    // exactly the cheap/expensive templates this phase serves.
    let built = build_ou_models(&PipelineConfig::for_scale(scale)).expect("model pipeline");
    // ~100k nested-loop pairs at either dataset scale: tens of ms per
    // query — heavy enough to starve cheap traffic, light enough for
    // meaningful sample counts inside the measurement window.
    let outer_bound = scale.pick(100, 10);
    let expensive_sql = format!(
        "SELECT COUNT(*), SUM(a.s_id + b.s_id) FROM tatp_subscriber a, \
         tatp_subscriber b WHERE a.s_id < b.s_id AND a.s_id < {outer_bound}"
    );
    let cheap_probe = "SELECT s_id, vlr_location FROM tatp_subscriber WHERE s_id = 7";
    let templates: Vec<QueryTemplate> = [("cheap", cheap_probe), ("expensive", &expensive_sql)]
        .into_iter()
        .map(|(name, sql)| QueryTemplate {
            name: name.into(),
            sql: sql.into(),
            plan: db.prepare(sql).expect("phase-5 template plan"),
        })
        .collect();
    let (interference, _, _) = build_interference_model(
        &db,
        &templates,
        &built.models,
        &[1, 2, 4],
        Duration::from_millis(scale.pick(150, 400)),
        17,
    )
    .expect("interference training");
    let models = Arc::new(BehaviorModels::new(built.models, Some(interference)));

    let policy = SchedulerPolicy {
        tiers: vec![
            TierPolicy {
                name: "interactive".into(),
                slo_budget_us: 1e12,
                queue_deadline: Duration::from_secs(2),
            },
            TierPolicy {
                name: "batch".into(),
                slo_budget_us: 1e12,
                queue_deadline: Duration::from_millis(300),
            },
        ],
        queue_capacity: 32,
        default_tenant_quota: 0,
        tenant_quotas: HashMap::new(),
        interference_window_us: 500_000.0,
    };
    let mixed_window = scale.pick(Duration::from_millis(800), Duration::from_secs(2));

    // Legacy semaphore baseline.
    let sem_server = Server::start(
        db.clone(),
        ServerConfig {
            max_inflight_queries: 2,
            ..ServerConfig::default()
        },
    )
    .expect("semaphore server");
    let sem = mixed_overload(
        &sem_server.local_addr().to_string(),
        &expensive_sql,
        mixed_window,
    );
    drop(sem_server);

    // Predictive scheduler over the same database and load shape.
    let sched_server = Server::start(
        db.clone(),
        ServerConfig {
            max_inflight_queries: 2,
            scheduler: Some(policy),
            ..ServerConfig::default()
        },
    )
    .expect("scheduler server");
    sched_server.attach_models(models);
    let sched = mixed_overload(
        &sched_server.local_addr().to_string(),
        &expensive_sql,
        mixed_window,
    );
    sched_server.shutdown(); // full drain + engine shutdown

    let p99_improvement = sem.cheap_p99_ms / sched.cheap_p99_ms.max(1e-9);
    let goodput_ok = sched.goodput_qps >= 0.9 * sem.goodput_qps;

    // ---- Report -------------------------------------------------------
    let mut table = Table::new(
        format!("{CONNECTIONS}-connection closed loop ({:?} scale)", scale),
        &["phase", "metric", "value"],
    );
    table.row(&[
        "readers".into(),
        "peak concurrent connections".into(),
        peak_connections.to_string(),
    ]);
    table.row(&[
        "readers".into(),
        "queries compared".into(),
        compared.to_string(),
    ]);
    table.row(&[
        "readers".into(),
        "divergences".into(),
        divergences.to_string(),
    ]);
    table.row(&[
        "replay".into(),
        "transactions replayed".into(),
        replay_txns.to_string(),
    ]);
    table.row(&[
        "replay".into(),
        "outcome mismatches".into(),
        outcome_mismatches.to_string(),
    ]);
    table.row(&[
        "replay".into(),
        "table-dump mismatches".into(),
        dump_mismatches.to_string(),
    ]);
    table.row(&[
        "loop".into(),
        "committed txns".into(),
        committed.to_string(),
    ]);
    table.row(&["loop".into(), "txn/sec".into(), fmt(txn_per_sec)]);
    table.row(&[
        "loop".into(),
        "conflict aborts".into(),
        conflicts.to_string(),
    ]);
    table.row(&["loop".into(), "busy rejections".into(), shed.to_string()]);
    table.row(&["overload".into(), "admitted".into(), admitted.to_string()]);
    table.row(&[
        "overload".into(),
        "ServerBusy rejections".into(),
        busy.to_string(),
    ]);
    table.row(&[
        "mixed/semaphore".into(),
        "cheap p99 ms (time to success)".into(),
        fmt(sem.cheap_p99_ms),
    ]);
    table.row(&[
        "mixed/semaphore".into(),
        "goodput q/s".into(),
        fmt(sem.goodput_qps),
    ]);
    table.row(&[
        "mixed/semaphore".into(),
        "cheap done / expensive done / sheds".into(),
        format!(
            "{} / {} / {}",
            sem.cheap_done, sem.expensive_done, sem.sheds
        ),
    ]);
    table.row(&[
        "mixed/scheduler".into(),
        "cheap p99 ms (time to success)".into(),
        fmt(sched.cheap_p99_ms),
    ]);
    table.row(&[
        "mixed/scheduler".into(),
        "goodput q/s".into(),
        fmt(sched.goodput_qps),
    ]);
    table.row(&[
        "mixed/scheduler".into(),
        "cheap done / expensive done / sheds".into(),
        format!(
            "{} / {} / {}",
            sched.cheap_done, sched.expensive_done, sched.sheds
        ),
    ]);
    table.row(&[
        "mixed".into(),
        "cheap p99 improvement ×".into(),
        fmt(p99_improvement),
    ]);
    out.push_str(&table.render());

    let zero_divergence = divergences == 0 && outcome_mismatches == 0 && dump_mismatches == 0;
    let pass = peak_connections >= CONNECTIONS
        && zero_divergence
        && busy > 0
        && p99_improvement >= 2.0
        && goodput_ok;
    let _ = writeln!(
        out,
        "\ngates: connections >= {CONNECTIONS}: {}; zero divergence: {zero_divergence}; \
         overload sheds with ServerBusy: {}; cheap p99 ≥2× better under scheduler: {} \
         ({p99_improvement:.2}×); no goodput regression: {goodput_ok} — {}",
        peak_connections >= CONNECTIONS,
        busy > 0,
        p99_improvement >= 2.0,
        if pass { "PASS" } else { "FAIL" }
    );

    // Machine-readable companion: hand-rolled JSON, no serde dependency.
    let mut json = String::from("{\n  \"experiment\": \"server_throughput\",\n");
    let _ = writeln!(json, "  \"connections\": {CONNECTIONS},");
    let _ = writeln!(json, "  \"peak_connections\": {peak_connections},");
    let _ = writeln!(json, "  \"reader_queries_compared\": {compared},");
    let _ = writeln!(json, "  \"reader_divergences\": {divergences},");
    let _ = writeln!(json, "  \"replay_transactions\": {replay_txns},");
    let _ = writeln!(
        json,
        "  \"replay_outcome_mismatches\": {outcome_mismatches},"
    );
    let _ = writeln!(json, "  \"replay_dump_mismatches\": {dump_mismatches},");
    let _ = writeln!(json, "  \"loop_committed\": {committed},");
    let _ = writeln!(json, "  \"loop_txn_per_sec\": {txn_per_sec:.1},");
    let _ = writeln!(json, "  \"loop_conflicts\": {conflicts},");
    let _ = writeln!(json, "  \"loop_busy\": {shed},");
    let _ = writeln!(json, "  \"overload_admitted\": {admitted},");
    let _ = writeln!(json, "  \"overload_busy_rejections\": {busy},");
    let _ = writeln!(
        json,
        "  \"mixed_sem_cheap_p99_ms\": {:.3},",
        sem.cheap_p99_ms
    );
    let _ = writeln!(
        json,
        "  \"mixed_sched_cheap_p99_ms\": {:.3},",
        sched.cheap_p99_ms
    );
    let _ = writeln!(json, "  \"mixed_sem_goodput_qps\": {:.1},", sem.goodput_qps);
    let _ = writeln!(
        json,
        "  \"mixed_sched_goodput_qps\": {:.1},",
        sched.goodput_qps
    );
    let _ = writeln!(json, "  \"mixed_sem_cheap_done\": {},", sem.cheap_done);
    let _ = writeln!(json, "  \"mixed_sched_cheap_done\": {},", sched.cheap_done);
    let _ = writeln!(
        json,
        "  \"mixed_sem_expensive_done\": {},",
        sem.expensive_done
    );
    let _ = writeln!(
        json,
        "  \"mixed_sched_expensive_done\": {},",
        sched.expensive_done
    );
    let _ = writeln!(json, "  \"mixed_p99_improvement\": {p99_improvement:.2},");
    let _ = writeln!(
        json,
        "  \"gate_p99_improvement_2x\": {},",
        p99_improvement >= 2.0
    );
    let _ = writeln!(json, "  \"gate_no_goodput_regression\": {goodput_ok},");
    let _ = writeln!(json, "  \"gate_pass\": {pass}");
    json.push_str("}\n");
    let path = results_dir().join("BENCH_server.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        let _ = writeln!(out, "\nwrote {}", path.display());
    }

    assert!(pass, "server_throughput acceptance gates failed:\n{out}");
    out
}

/// Outcome of one mixed cheap/expensive closed loop.
struct MixedOutcome {
    /// p99 of cheap-tier *time to success* in ms — retries after `Busy`
    /// (paced by the server's retry hint when one is given) count toward
    /// the latency, so shedding is not free.
    cheap_p99_ms: f64,
    goodput_qps: f64,
    cheap_done: u64,
    expensive_done: u64,
    sheds: u64,
}

/// Drive 4 cheap point-query clients (tier 0) and 4 expensive join
/// clients (tier 1) against `addr` for `window`, measuring cheap-tier
/// time-to-success latency and total goodput. Identical load shape for
/// the semaphore baseline and the predictive scheduler.
fn mixed_overload(addr: &str, expensive_sql: &str, window: Duration) -> MixedOutcome {
    const CHEAP_CLIENTS: usize = 4;
    const EXPENSIVE_CLIENTS: usize = 4;
    let gate = Arc::new(Barrier::new(CHEAP_CLIENTS + EXPENSIVE_CLIENTS + 1));
    let sheds = Arc::new(AtomicU64::new(0));
    let expensive_done = Arc::new(AtomicU64::new(0));

    // A query's latency is the full time to success: every `Busy` answer
    // is retried after the server's hint (capped — the loop must keep
    // offering load) or 1ms when the server gives none.
    fn run_to_success(client: &mut Client, sql: &str, sheds: &AtomicU64, give_up: Instant) -> bool {
        loop {
            match client.query(sql) {
                Ok(_) => return true,
                Err(DbError::ServerBusy(_)) => {
                    sheds.fetch_add(1, Ordering::Relaxed);
                    if Instant::now() >= give_up {
                        return false;
                    }
                    let backoff = client
                        .last_retry_hint()
                        .unwrap_or(Duration::from_millis(1))
                        .min(Duration::from_millis(20));
                    std::thread::sleep(backoff);
                }
                Err(e) => panic!("unexpected error in mixed overload: {e:?}"),
            }
        }
    }

    let cheap_handles: Vec<_> = (0..CHEAP_CLIENTS)
        .map(|cid| {
            let addr = addr.to_string();
            let gate = gate.clone();
            let sheds = sheds.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect_with(&addr, "", 0).expect("cheap connect");
                let mut rng = Prng::new(0xb2b2_5000 + cid as u64);
                let mut latencies: Vec<Duration> = Vec::new();
                gate.wait();
                let deadline = Instant::now() + window;
                // Hard stop well past the window so a straggling retry
                // loop cannot hang the phase.
                let give_up = deadline + window;
                while Instant::now() < deadline {
                    let s_id = (rng.next_f64() * 1000.0) as u64;
                    let sql = format!(
                        "SELECT s_id, vlr_location FROM tatp_subscriber WHERE s_id = {s_id}"
                    );
                    let t0 = Instant::now();
                    if run_to_success(&mut client, &sql, &sheds, give_up) {
                        latencies.push(t0.elapsed());
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                latencies
            })
        })
        .collect();
    let expensive_handles: Vec<_> = (0..EXPENSIVE_CLIENTS)
        .map(|_| {
            let addr = addr.to_string();
            let sql = expensive_sql.to_string();
            let gate = gate.clone();
            let sheds = sheds.clone();
            let expensive_done = expensive_done.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect_with(&addr, "", 1).expect("expensive connect");
                gate.wait();
                let deadline = Instant::now() + window;
                let give_up = deadline + window;
                while Instant::now() < deadline {
                    if run_to_success(&mut client, &sql, &sheds, give_up) {
                        expensive_done.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    gate.wait();
    let t0 = Instant::now();
    let mut cheap_latencies: Vec<Duration> = Vec::new();
    for h in cheap_handles {
        cheap_latencies.extend(h.join().unwrap());
    }
    for h in expensive_handles {
        h.join().unwrap();
    }
    let elapsed = t0.elapsed();

    cheap_latencies.sort_unstable();
    let cheap_done = cheap_latencies.len() as u64;
    let p99 = if cheap_latencies.is_empty() {
        Duration::ZERO
    } else {
        let idx = ((cheap_latencies.len() - 1) as f64 * 0.99).round() as usize;
        cheap_latencies[idx]
    };
    let expensive_done = expensive_done.load(Ordering::Relaxed);
    MixedOutcome {
        cheap_p99_ms: p99.as_secs_f64() * 1000.0,
        goodput_qps: (cheap_done + expensive_done) as f64 / elapsed.as_secs_f64(),
        cheap_done,
        expensive_done,
        sheds: sheds.load(Ordering::Relaxed),
    }
}
