//! SQL tokenizer.

use mb2_common::{DbError, DbResult};

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (uppercased for keywords at parse time).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// Punctuation / operator.
    Symbol(Symbol),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    LParen,
    RParen,
    Comma,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Dot,
}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> DbResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push_sym(&mut tokens, Symbol::LParen, &mut i),
            ')' => push_sym(&mut tokens, Symbol::RParen, &mut i),
            ',' => push_sym(&mut tokens, Symbol::Comma, &mut i),
            ';' => push_sym(&mut tokens, Symbol::Semicolon, &mut i),
            '*' => push_sym(&mut tokens, Symbol::Star, &mut i),
            '+' => push_sym(&mut tokens, Symbol::Plus, &mut i),
            '-' => push_sym(&mut tokens, Symbol::Minus, &mut i),
            '/' => push_sym(&mut tokens, Symbol::Slash, &mut i),
            '%' => push_sym(&mut tokens, Symbol::Percent, &mut i),
            '.' => push_sym(&mut tokens, Symbol::Dot, &mut i),
            '=' => push_sym(&mut tokens, Symbol::Eq, &mut i),
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Symbol(Symbol::NotEq));
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token::Symbol(Symbol::LtEq));
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token::Symbol(Symbol::NotEq));
                    i += 2;
                }
                _ => push_sym(&mut tokens, Symbol::Lt, &mut i),
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Symbol::GtEq));
                    i += 2;
                } else {
                    push_sym(&mut tokens, Symbol::Gt, &mut i);
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(DbError::Parse("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        // '' escapes a quote.
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    // Multi-byte UTF-8 passthrough.
                    let ch_len = utf8_len(bytes[i]);
                    s.push_str(
                        std::str::from_utf8(&bytes[i..i + ch_len])
                            .map_err(|e| DbError::Parse(format!("invalid utf8 in string: {e}")))?,
                    );
                    i += ch_len;
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    tokens
                        .push(Token::Float(text.parse().map_err(|e| {
                            DbError::Parse(format!("bad float '{text}': {e}"))
                        })?));
                } else {
                    tokens
                        .push(Token::Int(text.parse().map_err(|e| {
                            DbError::Parse(format!("bad int '{text}': {e}"))
                        })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => return Err(DbError::Parse(format!("unexpected character '{other}'"))),
        }
    }
    Ok(tokens)
}

fn push_sym(tokens: &mut Vec<Token>, sym: Symbol, i: &mut usize) {
    tokens.push(Token::Symbol(sym));
    *i += 1;
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select_tokens() {
        let t = tokenize("SELECT a, b FROM t WHERE a >= 10;").unwrap();
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert!(t.contains(&Token::Symbol(Symbol::GtEq)));
        assert!(t.contains(&Token::Int(10)));
        assert_eq!(*t.last().unwrap(), Token::Symbol(Symbol::Semicolon));
    }

    #[test]
    fn string_escapes() {
        let t = tokenize("'it''s'").unwrap();
        assert_eq!(t, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn floats_vs_qualified_names() {
        let t = tokenize("1.5 t.c").unwrap();
        assert_eq!(t[0], Token::Float(1.5));
        assert_eq!(t[1], Token::Ident("t".into()));
        assert_eq!(t[2], Token::Symbol(Symbol::Dot));
        assert_eq!(t[3], Token::Ident("c".into()));
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT 1 -- trailing\n, 2").unwrap();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn not_equal_forms() {
        assert_eq!(tokenize("<>").unwrap(), vec![Token::Symbol(Symbol::NotEq)]);
        assert_eq!(tokenize("!=").unwrap(), vec![Token::Symbol(Symbol::NotEq)]);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let t = tokenize("'héllo'").unwrap();
        assert_eq!(t, vec![Token::Str("héllo".into())]);
    }
}
